//! Real-execution 2D seismic modeling driver.
//!
//! The forward phase of Algorithm 1, executed for real on host gangs:
//! at each step it exchanges nothing (single domain), advances the
//! wavefield with the configured kernel variant, injects the source,
//! records the seismogram, and saves a snapshot each `snap_period` — the
//! outputs being the movie-of-snapshots (Figure 3) and the shot record the
//! RTM backward phase consumes.

use crate::case::OptimizationConfig;
use openacc_sim::exec::par_slabs;
use seismic_grid::{Extent2, Field2, SyncSlice};
use seismic_model::{AcousticModel2, ElasticModel2, IsoModel2, VtiModel2};
use seismic_pml::{CpmlAxis, DampProfile};
use seismic_prop::{acoustic2d, elastic2d, iso2d, vti2d};
use seismic_source::{Acquisition2, Seismogram, Wavelet};

/// A 2D medium: model + matching absorbing boundary.
pub enum Medium2 {
    /// Isotropic constant-density.
    Iso {
        /// Earth model.
        model: IsoModel2,
        /// Damping profile along x.
        damp_x: DampProfile,
        /// Damping profile along z.
        damp_z: DampProfile,
    },
    /// Acoustic variable-density.
    Acoustic {
        /// Earth model.
        model: AcousticModel2,
        /// C-PML coefficients for x and z.
        cpml: [CpmlAxis; 2],
    },
    /// Elastic isotropic.
    Elastic {
        /// Earth model.
        model: ElasticModel2,
        /// C-PML coefficients for x and z.
        cpml: [CpmlAxis; 2],
    },
    /// Acoustic VTI (anisotropic) — the paper's future-work formulation.
    Vti {
        /// Earth model with Thomsen parameters.
        model: VtiModel2,
        /// Damping profile along x.
        damp_x: DampProfile,
        /// Damping profile along z.
        damp_z: DampProfile,
    },
}

impl Medium2 {
    /// Grid extent.
    pub fn extent(&self) -> Extent2 {
        match self {
            Medium2::Iso { model, .. } => model.vp.extent(),
            Medium2::Acoustic { model, .. } => model.vp.extent(),
            Medium2::Elastic { model, .. } => model.rho.extent(),
            Medium2::Vti { model, .. } => model.vp.extent(),
        }
    }

    /// Time step of the medium's geometry.
    pub fn dt(&self) -> f32 {
        match self {
            Medium2::Iso { model, .. } => model.geom.dt,
            Medium2::Acoustic { model, .. } => model.geom.dt,
            Medium2::Elastic { model, .. } => model.geom.dt,
            Medium2::Vti { model, .. } => model.geom.dt,
        }
    }
}

/// Wavefield state matching a [`Medium2`].
///
/// Variant sizes differ by their field-handle counts (the data itself is
/// heap-allocated); boxing would only add indirection to the hot path.
#[allow(clippy::large_enum_variant)]
pub enum State2 {
    /// Isotropic two-level state.
    Iso(iso2d::Iso2State),
    /// Acoustic staggered state.
    Acoustic(acoustic2d::Ac2State),
    /// Elastic velocity–stress state.
    Elastic(elastic2d::El2State),
    /// VTI coupled pseudo-acoustic state.
    Vti(vti2d::Vti2State),
}

impl State2 {
    /// Quiescent state for a medium.
    pub fn new(medium: &Medium2) -> Self {
        let e = medium.extent();
        match medium {
            Medium2::Iso { .. } => State2::Iso(iso2d::Iso2State::new(e)),
            Medium2::Acoustic { .. } => State2::Acoustic(acoustic2d::Ac2State::new(e)),
            Medium2::Elastic { .. } => State2::Elastic(elastic2d::El2State::new(e)),
            Medium2::Vti { .. } => State2::Vti(vti2d::Vti2State::new(e)),
        }
    }

    /// The pressure-like field sampled by receivers and snapshots:
    /// `u` (iso), `p` (acoustic), `(σxx+σzz)/2` (elastic).
    pub fn sample(&self, ix: usize, iz: usize) -> f32 {
        match self {
            State2::Iso(s) => s.u_cur.get(ix, iz),
            State2::Acoustic(s) => s.p.get(ix, iz),
            State2::Elastic(s) => 0.5 * (s.sxx.get(ix, iz) + s.szz.get(ix, iz)),
            State2::Vti(s) => s.p_cur.get(ix, iz),
        }
    }

    /// Snapshot of the pressure-like field.
    pub fn wavefield(&self) -> Field2 {
        match self {
            State2::Iso(s) => s.u_cur.clone(),
            State2::Acoustic(s) => s.p.clone(),
            State2::Elastic(s) => {
                let e = s.sxx.extent();
                Field2::from_fn(e, |ix, iz| 0.5 * (s.sxx.get(ix, iz) + s.szz.get(ix, iz)))
            }
            State2::Vti(s) => s.p_cur.clone(),
        }
    }

    /// [`wavefield`](Self::wavefield) into a caller-owned field without
    /// allocating — the steady-state snapshot path (extents must match).
    pub fn write_wavefield_into(&self, out: &mut Field2) {
        match self {
            State2::Iso(s) => out.copy_from(&s.u_cur),
            State2::Acoustic(s) => out.copy_from(&s.p),
            State2::Elastic(s) => {
                assert_eq!(out.extent(), s.sxx.extent(), "wavefield extent mismatch");
                for (d, (a, b)) in out
                    .as_mut_slice()
                    .iter_mut()
                    .zip(s.sxx.as_slice().iter().zip(s.szz.as_slice()))
                {
                    *d = 0.5 * (a + b);
                }
            }
            State2::Vti(s) => out.copy_from(&s.p_cur),
        }
    }

    /// Overwrite this state from `other` without allocating. Both must be
    /// the same formulation on the same extent — the checkpoint-slot and
    /// arena-reuse path (a clone allocates every field; this recycles them).
    pub fn copy_from(&mut self, other: &Self) {
        match (self, other) {
            (State2::Iso(d), State2::Iso(s)) => d.copy_from(s),
            (State2::Acoustic(d), State2::Acoustic(s)) => d.copy_from(s),
            (State2::Elastic(d), State2::Elastic(s)) => d.copy_from(s),
            (State2::Vti(d), State2::Vti(s)) => d.copy_from(s),
            _ => panic!("state/state formulation mismatch"),
        }
    }

    /// Pressure-like source injection at an interior point.
    pub fn inject(&mut self, medium: &Medium2, ix: usize, iz: usize, amp: f32) {
        match (self, medium) {
            (State2::Iso(s), Medium2::Iso { model, .. }) => s.inject(model, ix, iz, amp),
            (State2::Acoustic(s), Medium2::Acoustic { model, .. }) => s.inject(model, ix, iz, amp),
            (State2::Elastic(s), Medium2::Elastic { model, .. }) => {
                s.inject(model, ix, iz, amp * 1e6)
            }
            (State2::Vti(s), Medium2::Vti { model, .. }) => s.inject(model, ix, iz, amp),
            _ => panic!("state/medium formulation mismatch"),
        }
    }

    /// Advance one time step on `gangs` host threads.
    pub fn step(&mut self, medium: &Medium2, config: &OptimizationConfig, gangs: usize) {
        let e = medium.extent();
        let nz = e.nz;
        match (self, medium) {
            (
                State2::Iso(s),
                Medium2::Iso {
                    model,
                    damp_x,
                    damp_z,
                },
            ) => {
                {
                    let u = SyncSlice::new(s.u_prev.as_mut_slice());
                    let cur = s.u_cur.as_slice();
                    par_slabs(nz, gangs, |z0, z1| {
                        iso2d::step_slab(
                            u,
                            cur,
                            model.vp.as_slice(),
                            e,
                            model.geom.dx,
                            model.geom.dz,
                            model.geom.dt,
                            damp_x,
                            damp_z,
                            config.iso_pml,
                            z0,
                            z1,
                        );
                    });
                }
                s.u_prev.swap(&mut s.u_cur);
            }
            (State2::Acoustic(s), Medium2::Acoustic { model, cpml }) => {
                acoustic_velocity_phase(s, model, cpml, e, gangs, model.geom.dt);
                acoustic_pressure_phase(s, model, cpml, e, gangs, model.geom.dt);
            }
            (State2::Elastic(s), Medium2::Elastic { model, cpml }) => {
                // Sequential per-kernel (4 kernels), each slab-parallel.
                elastic_velocity_phase(s, model, cpml, e, gangs, model.geom.dt);
                elastic_stress_phase(s, model, cpml, e, gangs, model.geom.dt);
            }
            (
                State2::Vti(s),
                Medium2::Vti {
                    model,
                    damp_x,
                    damp_z,
                },
            ) => {
                {
                    let p = SyncSlice::new(s.p_prev.as_mut_slice());
                    let q = SyncSlice::new(s.q_prev.as_mut_slice());
                    let (pc, qc) = (s.p_cur.as_slice(), s.q_cur.as_slice());
                    par_slabs(nz, gangs, |z0, z1| {
                        vti2d::step_slab(
                            p,
                            q,
                            pc,
                            qc,
                            model.vp.as_slice(),
                            model.epsilon.as_slice(),
                            model.delta.as_slice(),
                            e,
                            model.geom.dx,
                            model.geom.dz,
                            model.geom.dt,
                            damp_x,
                            damp_z,
                            z0,
                            z1,
                        );
                    });
                }
                s.p_prev.swap(&mut s.p_cur);
                s.q_prev.swap(&mut s.q_cur);
            }
            _ => panic!("state/medium formulation mismatch"),
        }
    }

    /// Swap the two time levels of a leapfrog state (no-op field renaming;
    /// staggered states have a single time level and panic).
    fn swap_levels(&mut self) {
        match self {
            State2::Iso(s) => s.u_prev.swap(&mut s.u_cur),
            State2::Vti(s) => {
                s.p_prev.swap(&mut s.p_cur);
                s.q_prev.swap(&mut s.q_cur);
            }
            _ => panic!("swap_levels is only defined for two-level states"),
        }
    }

    /// Undo one [`State2::step`]: advance the wavefield *backward* one step
    /// through a **lossless** medium (σ ≡ 0 damping / transparent C-PML, as
    /// built by [`crate::rand_boundary::randomize_medium2`]).
    ///
    /// * Leapfrog states (iso, VTI): the update `u⁺ = 2u − u⁻ + A(u)` is
    ///   symmetric in time when σ = 0 (the `(1 ∓ σdt)` factors are exactly
    ///   1.0), so stepping *forward* from swapped levels recovers the
    ///   previous level: swap, [`State2::step`], swap.
    /// * Staggered states (acoustic, elastic): each phase is an in-place
    ///   `field += dt·F(other fields)` update, so running the phases in
    ///   reverse order with `−dt` undoes them one by one. The ψ memory
    ///   variables stay identically zero under transparent C-PML (their
    ///   recursion is `ψ ← 1·ψ + 0·∂u`), so no dissipative history is lost.
    ///
    /// The inverse is exact in real arithmetic and deterministic (but not
    /// bit-exact — floating-point addition does not cancel perfectly) in
    /// `f32`; callers must have removed the step's source injection first.
    /// Calling this on a dissipative medium silently diverges instead of
    /// reconstructing — the random-boundary driver owns that contract.
    pub fn step_reverse(&mut self, medium: &Medium2, config: &OptimizationConfig, gangs: usize) {
        let e = medium.extent();
        match (&mut *self, medium) {
            (State2::Iso(_), Medium2::Iso { .. }) | (State2::Vti(_), Medium2::Vti { .. }) => {
                self.swap_levels();
                self.step(medium, config, gangs);
                self.swap_levels();
            }
            (State2::Acoustic(s), Medium2::Acoustic { model, cpml }) => {
                acoustic_pressure_phase(s, model, cpml, e, gangs, -model.geom.dt);
                acoustic_velocity_phase(s, model, cpml, e, gangs, -model.geom.dt);
            }
            (State2::Elastic(s), Medium2::Elastic { model, cpml }) => {
                elastic_stress_phase(s, model, cpml, e, gangs, -model.geom.dt);
                elastic_velocity_phase(s, model, cpml, e, gangs, -model.geom.dt);
            }
            _ => panic!("state/medium formulation mismatch"),
        }
    }
}

/// Acoustic staggered phase 1: particle velocities from the pressure
/// gradient, `q += dt·D(p)`. `dt` is signed so the reverse sweep can undo it.
fn acoustic_velocity_phase(
    s: &mut acoustic2d::Ac2State,
    model: &AcousticModel2,
    cpml: &[CpmlAxis; 2],
    e: Extent2,
    gangs: usize,
    dt: f32,
) {
    let qx = SyncSlice::new(s.qx.as_mut_slice());
    let qz = SyncSlice::new(s.qz.as_mut_slice());
    let px = SyncSlice::new(s.psi_px.as_mut_slice());
    let pz = SyncSlice::new(s.psi_pz.as_mut_slice());
    let p = s.p.as_slice();
    par_slabs(e.nz, gangs, |z0, z1| {
        acoustic2d::velocity_slab(
            qx,
            qz,
            px,
            pz,
            p,
            model.rho.as_slice(),
            e,
            model.geom.dx,
            model.geom.dz,
            dt,
            cpml,
            z0,
            z1,
        );
    });
}

/// Acoustic staggered phase 2: pressure from the velocity divergence,
/// `p += dt·E(q)`.
fn acoustic_pressure_phase(
    s: &mut acoustic2d::Ac2State,
    model: &AcousticModel2,
    cpml: &[CpmlAxis; 2],
    e: Extent2,
    gangs: usize,
    dt: f32,
) {
    let p = SyncSlice::new(s.p.as_mut_slice());
    let sx = SyncSlice::new(s.psi_qx.as_mut_slice());
    let sz = SyncSlice::new(s.psi_qz.as_mut_slice());
    let qx = s.qx.as_slice();
    let qz = s.qz.as_slice();
    par_slabs(e.nz, gangs, |z0, z1| {
        acoustic2d::pressure_slab(
            p,
            sx,
            sz,
            qx,
            qz,
            model.vp.as_slice(),
            model.rho.as_slice(),
            e,
            model.geom.dx,
            model.geom.dz,
            dt,
            cpml,
            z0,
            z1,
        );
    });
}

/// Elastic phase 1: particle velocities from stress divergence (vx then vz;
/// both read only stresses, so their order is immaterial).
fn elastic_velocity_phase(
    s: &mut elastic2d::El2State,
    model: &ElasticModel2,
    cpml: &[CpmlAxis; 2],
    e: Extent2,
    gangs: usize,
    dt: f32,
) {
    {
        let vx = SyncSlice::new(s.vx.as_mut_slice());
        let p1 = SyncSlice::new(s.psi_sxx_x.as_mut_slice());
        let p2 = SyncSlice::new(s.psi_sxz_z.as_mut_slice());
        let (sxx, sxz) = (s.sxx.as_slice(), s.sxz.as_slice());
        par_slabs(e.nz, gangs, |z0, z1| {
            elastic2d::vx_slab(
                vx,
                p1,
                p2,
                sxx,
                sxz,
                model.rho.as_slice(),
                e,
                model.geom.dx,
                model.geom.dz,
                dt,
                cpml,
                z0,
                z1,
            );
        });
    }
    {
        let vz = SyncSlice::new(s.vz.as_mut_slice());
        let p1 = SyncSlice::new(s.psi_sxz_x.as_mut_slice());
        let p2 = SyncSlice::new(s.psi_szz_z.as_mut_slice());
        let (sxz, szz) = (s.sxz.as_slice(), s.szz.as_slice());
        par_slabs(e.nz, gangs, |z0, z1| {
            elastic2d::vz_slab(
                vz,
                p1,
                p2,
                sxz,
                szz,
                model.rho.as_slice(),
                e,
                model.geom.dx,
                model.geom.dz,
                dt,
                cpml,
                z0,
                z1,
            );
        });
    }
}

/// Elastic phase 2: stresses from velocity gradients (diagonal then shear;
/// both read only velocities).
fn elastic_stress_phase(
    s: &mut elastic2d::El2State,
    model: &ElasticModel2,
    cpml: &[CpmlAxis; 2],
    e: Extent2,
    gangs: usize,
    dt: f32,
) {
    {
        let sxx = SyncSlice::new(s.sxx.as_mut_slice());
        let szz = SyncSlice::new(s.szz.as_mut_slice());
        let p1 = SyncSlice::new(s.psi_vx_x.as_mut_slice());
        let p2 = SyncSlice::new(s.psi_vz_z.as_mut_slice());
        let (vx, vz) = (s.vx.as_slice(), s.vz.as_slice());
        par_slabs(e.nz, gangs, |z0, z1| {
            elastic2d::stress_diag_slab(
                sxx,
                szz,
                p1,
                p2,
                vx,
                vz,
                model.lam.as_slice(),
                model.mu.as_slice(),
                e,
                model.geom.dx,
                model.geom.dz,
                dt,
                cpml,
                z0,
                z1,
            );
        });
    }
    {
        let sxz = SyncSlice::new(s.sxz.as_mut_slice());
        let p1 = SyncSlice::new(s.psi_vx_z.as_mut_slice());
        let p2 = SyncSlice::new(s.psi_vz_x.as_mut_slice());
        let (vx, vz) = (s.vx.as_slice(), s.vz.as_slice());
        par_slabs(e.nz, gangs, |z0, z1| {
            elastic2d::stress_shear_slab(
                sxz,
                p1,
                p2,
                vx,
                vz,
                model.mu.as_slice(),
                e,
                model.geom.dx,
                model.geom.dz,
                dt,
                cpml,
                z0,
                z1,
            );
        });
    }
}

/// Output of a modeling run.
pub struct ModelingResult {
    /// Snapshots saved every `snap_period` steps.
    pub snapshots: Vec<Field2>,
    /// The recorded shot record.
    pub seismogram: Seismogram,
}

/// Run forward modeling: `steps` time steps with source injection, receiver
/// recording, and snapshot saves.
pub fn run_modeling(
    medium: &Medium2,
    acq: &Acquisition2,
    wavelet: &Wavelet,
    config: &OptimizationConfig,
    steps: usize,
    snap_period: usize,
    gangs: usize,
) -> ModelingResult {
    let mut state = State2::new(medium);
    let mut seismogram = Seismogram::zeros(acq.n_receivers(), steps);
    // Snapshot storage is sized up front so the time loop itself performs
    // no allocation — every step only writes into preexisting buffers.
    let n_snaps = steps.div_ceil(snap_period);
    let mut snapshots: Vec<Field2> = (0..n_snaps)
        .map(|_| Field2::zeros(medium.extent()))
        .collect();
    let dt = medium.dt();
    // Wall-clock forward phase (no-op unless the host profiler is on).
    let t_phase = exec_host::prof::begin();
    for t in 0..steps {
        state.step(medium, config, gangs);
        state.inject(
            medium,
            acq.src_ix,
            acq.src_iz,
            wavelet.sample(t as f32 * dt),
        );
        for (r, rcv) in acq.receivers.iter().enumerate() {
            seismogram.record(r, t, state.sample(rcv.ix, rcv.iz));
        }
        if t % snap_period == 0 {
            state.write_wavefield_into(&mut snapshots[t / snap_period]);
        }
    }
    exec_host::prof::end(
        t_phase,
        exec_host::prof::EventKind::Phase,
        exec_host::prof::PHASE_FORWARD,
        0,
    );
    ModelingResult {
        snapshots,
        seismogram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seismic_grid::cfl::stable_dt;
    use seismic_model::builder::{acoustic2_layered, iso2_constant, standard_layers};
    use seismic_model::{extent2, Geometry};

    fn acoustic_medium(n: usize) -> Medium2 {
        let e = extent2(n, n);
        let h = 10.0;
        let dt = stable_dt(8, 2, 3200.0, h, 0.6);
        let model = acoustic2_layered(e, &standard_layers(n), Geometry::uniform(h, dt));
        let c = CpmlAxis::new(n, e.halo, 12, dt, 3200.0, h, 1e-4);
        Medium2::Acoustic {
            model,
            cpml: [c.clone(), c],
        }
    }

    fn iso_medium(n: usize) -> Medium2 {
        let e = extent2(n, n);
        let h = 10.0;
        let dt = stable_dt(8, 2, 2000.0, h, 0.8);
        let model = iso2_constant(e, 2000.0, Geometry::uniform(h, dt));
        let d = DampProfile::new(n, e.halo, 12, 2000.0, h, 1e-4);
        Medium2::Iso {
            model,
            damp_x: d.clone(),
            damp_z: d,
        }
    }

    #[test]
    fn acoustic_modeling_produces_snapshots_and_records() {
        let n = 72;
        let medium = acoustic_medium(n);
        let acq = Acquisition2::surface_line(n, n / 2, 4, 2, 4);
        let r = run_modeling(
            &medium,
            &acq,
            &Wavelet::ricker(20.0),
            &OptimizationConfig::default(),
            120,
            10,
            3,
        );
        assert_eq!(r.snapshots.len(), 12);
        assert_eq!(r.seismogram.nt(), 120);
        assert!(r.seismogram.rms() > 0.0, "receivers recorded energy");
        // Later snapshots carry the expanding wavefront.
        assert!(r.snapshots.last().unwrap().max_abs() > 0.0);
    }

    /// Gang count must not change results (the OpenACC gang ↔ host thread
    /// mapping is bitwise-deterministic).
    #[test]
    fn gang_count_invariance() {
        let n = 48;
        for mk in [iso_medium as fn(usize) -> Medium2, acoustic_medium] {
            let medium = mk(n);
            let acq = Acquisition2::surface_line(n, n / 2, n / 2, 2, 8);
            let cfg = OptimizationConfig::default();
            let w = Wavelet::ricker(22.0);
            let a = run_modeling(&medium, &acq, &w, &cfg, 40, 8, 1);
            let b = run_modeling(&medium, &acq, &w, &cfg, 40, 8, 5);
            assert_eq!(a.seismogram, b.seismogram);
            assert_eq!(a.snapshots.last(), b.snapshots.last());
        }
    }

    /// Nearest receivers record the direct arrival earliest.
    #[test]
    fn direct_arrival_order() {
        let n = 96;
        let medium = iso_medium(n);
        // Receivers along the surface, source at center-depth below.
        let acq = Acquisition2::surface_line(n, n / 2, n / 2, 4, 8);
        let r = run_modeling(
            &medium,
            &acq,
            &Wavelet::ricker(25.0),
            &OptimizationConfig::default(),
            200,
            50,
            4,
        );
        // Receiver closest to source x records the biggest peak earliest.
        let n_rcv = acq.n_receivers();
        let center = (0..n_rcv)
            .min_by_key(|&r_| (acq.receivers[r_].ix as isize - (n / 2) as isize).unsigned_abs())
            .unwrap();
        let edge = 0usize;
        assert!(
            r.seismogram.peak_time(center) < r.seismogram.peak_time(edge),
            "center {} vs edge {}",
            r.seismogram.peak_time(center),
            r.seismogram.peak_time(edge)
        );
    }

    #[test]
    #[should_panic(expected = "formulation mismatch")]
    fn mismatched_state_and_medium_panics() {
        let iso = iso_medium(32);
        let ac = acoustic_medium(32);
        let mut s = State2::new(&iso);
        s.step(&ac, &OptimizationConfig::default(), 1);
    }

    /// All four lossless (transparent-boundary) media of size n — the
    /// configuration under which `step_reverse` must undo `step`.
    fn transparent_media(n: usize) -> Vec<Medium2> {
        let e = extent2(n, n);
        let h = 10.0;
        let tr_damp = || DampProfile::transparent(n, e.halo);
        let tr_cpml = || {
            [
                CpmlAxis::transparent(n, e.halo),
                CpmlAxis::transparent(n, e.halo),
            ]
        };
        let iso = Medium2::Iso {
            model: iso2_constant(
                e,
                2000.0,
                Geometry::uniform(h, stable_dt(8, 2, 2000.0, h, 0.8)),
            ),
            damp_x: tr_damp(),
            damp_z: tr_damp(),
        };
        let ac = Medium2::Acoustic {
            model: acoustic2_layered(
                e,
                &standard_layers(n),
                Geometry::uniform(h, stable_dt(8, 2, 3200.0, h, 0.6)),
            ),
            cpml: tr_cpml(),
        };
        let el = Medium2::Elastic {
            model: seismic_model::ElasticModel2::from_velocities(
                &Field2::filled(e, 3000.0),
                &Field2::filled(e, 1700.0),
                &Field2::filled(e, 2200.0),
                Geometry::uniform(h, stable_dt(8, 2, 3000.0, h, 0.5)),
            ),
            cpml: tr_cpml(),
        };
        let v_max = 2500.0 * (1.0f32 + 2.0 * 0.2).sqrt();
        let vti = Medium2::Vti {
            model: seismic_model::VtiModel2::constant(
                e,
                2500.0,
                0.2,
                0.1,
                Geometry::uniform(h, stable_dt(8, 2, v_max, h, 0.5)),
            ),
            damp_x: tr_damp(),
            damp_z: tr_damp(),
        };
        vec![iso, ac, el, vti]
    }

    /// The random-boundary contract: through a lossless medium,
    /// `inject(−s_t); step_reverse()` walks the forward trajectory
    /// backwards, reconstructing every intermediate wavefield to
    /// f32-roundoff accuracy (exact in real arithmetic, deterministic but
    /// not bit-exact in floating point).
    #[test]
    fn step_reverse_reconstructs_forward_states() {
        let n = 48;
        let e = extent2(n, n);
        let cfg = OptimizationConfig::default();
        let w = Wavelet::ricker(20.0);
        let steps = 60;
        for medium in transparent_media(n) {
            let dt = medium.dt();
            let mut s = State2::new(&medium);
            let mut stored = Vec::new();
            let mut peak = 0.0f32;
            for t in 0..steps {
                s.step(&medium, &cfg, 3);
                s.inject(&medium, n / 2, n / 2, w.sample(t as f32 * dt));
                let mut f = Field2::zeros(e);
                s.write_wavefield_into(&mut f);
                peak = peak.max(f.max_abs());
                stored.push(f);
            }
            let mut recon = Field2::zeros(e);
            for t in (1..steps).rev() {
                s.inject(&medium, n / 2, n / 2, -w.sample(t as f32 * dt));
                s.step_reverse(&medium, &cfg, 3);
                recon.fill_zero();
                s.write_wavefield_into(&mut recon);
                let max_d = recon
                    .as_slice()
                    .iter()
                    .zip(stored[t - 1].as_slice())
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f32, f32::max);
                assert!(
                    max_d / peak < 1e-3,
                    "step {t}: reconstruction error {max_d} vs peak {peak}"
                );
            }
        }
    }

    /// Reversing through a *dissipative* medium must not silently work —
    /// this pins the lossless-medium contract of `step_reverse` (energy the
    /// absorber removed cannot come back).
    #[test]
    fn step_reverse_diverges_through_absorbing_boundaries() {
        let n = 48;
        let e = extent2(n, n);
        let cfg = OptimizationConfig::default();
        let w = Wavelet::ricker(20.0);
        let medium = iso_medium(n); // real damping layer
        let steps = 200; // long enough for the wavefront to hit the absorber
        let dt = medium.dt();
        let mut s = State2::new(&medium);
        let mut first = Field2::zeros(e);
        for t in 0..steps {
            s.step(&medium, &cfg, 2);
            s.inject(&medium, n / 2, n / 2, w.sample(t as f32 * dt));
            if t == 0 {
                s.write_wavefield_into(&mut first);
            }
        }
        for t in (1..steps).rev() {
            s.inject(&medium, n / 2, n / 2, -w.sample(t as f32 * dt));
            s.step_reverse(&medium, &cfg, 2);
        }
        let mut recon = Field2::zeros(e);
        s.write_wavefield_into(&mut recon);
        let max_d = recon
            .as_slice()
            .iter()
            .zip(first.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_d / first.max_abs().max(1e-20) > 1e-2,
            "a damped medium reconstructed cleanly (max_d {max_d}) — the \
             transparent-boundary requirement would be vacuous"
        );
    }
}
