//! Real-execution 3D seismic modeling driver.
//!
//! 3D counterpart of [`crate::modeling`]: the same Algorithm-1 forward
//! phase over the volumetric propagators, with gang-parallel slab execution
//! along z. 3D runs are what the paper's headline table rows measure; here
//! they execute for real at laptop scale (the production-scale timing goes
//! through [`crate::gpu_time`]).

use crate::case::OptimizationConfig;
use openacc_sim::exec::par_slabs;
use seismic_grid::{Extent3, Field3, SyncSlice};
use seismic_model::{AcousticModel3, ElasticModel3, IsoModel3};
use seismic_pml::{CpmlAxis, DampProfile};
use seismic_prop::{acoustic3d, elastic3d, iso3d};
use seismic_source::{Acquisition3, Seismogram, Wavelet};

/// A 3D medium: model + matching absorbing boundary.
pub enum Medium3 {
    /// Isotropic constant-density.
    Iso {
        /// Earth model.
        model: IsoModel3,
        /// Damping profiles along x, y, z.
        damp: [DampProfile; 3],
    },
    /// Acoustic variable-density.
    Acoustic {
        /// Earth model.
        model: AcousticModel3,
        /// C-PML coefficients for x, y, z.
        cpml: [CpmlAxis; 3],
    },
    /// Elastic isotropic.
    Elastic {
        /// Earth model.
        model: ElasticModel3,
        /// C-PML coefficients for x, y, z.
        cpml: [CpmlAxis; 3],
    },
}

impl Medium3 {
    /// Grid extent.
    pub fn extent(&self) -> Extent3 {
        match self {
            Medium3::Iso { model, .. } => model.vp.extent(),
            Medium3::Acoustic { model, .. } => model.vp.extent(),
            Medium3::Elastic { model, .. } => model.rho.extent(),
        }
    }

    /// Time step.
    pub fn dt(&self) -> f32 {
        match self {
            Medium3::Iso { model, .. } => model.geom.dt,
            Medium3::Acoustic { model, .. } => model.geom.dt,
            Medium3::Elastic { model, .. } => model.geom.dt,
        }
    }
}

/// Wavefield state matching a [`Medium3`].
pub enum State3 {
    /// Isotropic two-level state.
    Iso(iso3d::Iso3State),
    /// Acoustic staggered state.
    Acoustic(acoustic3d::Ac3State),
    /// Elastic velocity–stress state.
    Elastic(elastic3d::El3State),
}

impl State3 {
    /// Quiescent state for a medium.
    pub fn new(medium: &Medium3) -> Self {
        let e = medium.extent();
        match medium {
            Medium3::Iso { .. } => State3::Iso(iso3d::Iso3State::new(e)),
            Medium3::Acoustic { .. } => State3::Acoustic(acoustic3d::Ac3State::new(e)),
            Medium3::Elastic { .. } => State3::Elastic(elastic3d::El3State::new(e)),
        }
    }

    /// The pressure-like field sampled by receivers and snapshots.
    pub fn sample(&self, ix: usize, iy: usize, iz: usize) -> f32 {
        match self {
            State3::Iso(s) => s.u_cur.get(ix, iy, iz),
            State3::Acoustic(s) => s.p.get(ix, iy, iz),
            State3::Elastic(s) => {
                (s.sxx.get(ix, iy, iz) + s.syy.get(ix, iy, iz) + s.szz.get(ix, iy, iz)) / 3.0
            }
        }
    }

    /// A full snapshot of the pressure-like field (3D volumes are large —
    /// callers usually prefer [`State3::slice_y`]).
    pub fn wavefield(&self) -> Field3 {
        match self {
            State3::Iso(s) => s.u_cur.clone(),
            State3::Acoustic(s) => s.p.clone(),
            State3::Elastic(s) => {
                let e = s.sxx.extent();
                Field3::from_fn(e, |ix, iy, iz| self.sample(ix, iy, iz))
            }
        }
    }

    /// The x–z plane of the pressure-like field at interior `iy`.
    pub fn slice_y(&self, iy: usize) -> seismic_grid::Field2 {
        match self {
            State3::Iso(s) => s.u_cur.slice_y(iy),
            State3::Acoustic(s) => s.p.slice_y(iy),
            State3::Elastic(s) => {
                let e = s.sxx.extent();
                let e2 = seismic_grid::Extent2::new(e.nx, e.nz, e.halo);
                seismic_grid::Field2::from_fn(e2, |ix, iz| self.sample(ix, iy, iz))
            }
        }
    }

    /// [`wavefield`](Self::wavefield) into a caller-owned volume without
    /// allocating — the steady-state snapshot path (for the elastic
    /// formulation only the interior is written, so `out` should start
    /// zeroed to match `wavefield` bitwise).
    pub fn write_wavefield_into(&self, out: &mut Field3) {
        match self {
            State3::Iso(s) => out.copy_from(&s.u_cur),
            State3::Acoustic(s) => out.copy_from(&s.p),
            State3::Elastic(s) => {
                let e = s.sxx.extent();
                assert_eq!(out.extent(), e, "wavefield extent mismatch");
                for iz in 0..e.nz {
                    for iy in 0..e.ny {
                        for ix in 0..e.nx {
                            out.set(ix, iy, iz, self.sample(ix, iy, iz));
                        }
                    }
                }
            }
        }
    }

    /// [`slice_y`](Self::slice_y) into a caller-owned plane without
    /// allocating — the steady-state snapshot path (interior writes only,
    /// so `out` should start zeroed to match `slice_y` bitwise).
    pub fn write_slice_y_into(&self, iy: usize, out: &mut seismic_grid::Field2) {
        match self {
            State3::Iso(s) => s.u_cur.write_slice_y_into(iy, out),
            State3::Acoustic(s) => s.p.write_slice_y_into(iy, out),
            State3::Elastic(s) => {
                let e = s.sxx.extent();
                let e2 = out.extent();
                assert_eq!(
                    (e2.nx, e2.nz, e2.halo),
                    (e.nx, e.nz, e.halo),
                    "plane extent mismatch"
                );
                for iz in 0..e.nz {
                    for ix in 0..e.nx {
                        out.set(ix, iz, self.sample(ix, iy, iz));
                    }
                }
            }
        }
    }

    /// Overwrite this state from `other` without allocating. Both must be
    /// the same formulation on the same extent — the checkpoint-slot and
    /// arena-reuse path.
    pub fn copy_from(&mut self, other: &Self) {
        match (self, other) {
            (State3::Iso(d), State3::Iso(s)) => d.copy_from(s),
            (State3::Acoustic(d), State3::Acoustic(s)) => d.copy_from(s),
            (State3::Elastic(d), State3::Elastic(s)) => d.copy_from(s),
            _ => panic!("state/state formulation mismatch"),
        }
    }

    /// Pressure-like source injection at an interior point.
    pub fn inject(&mut self, medium: &Medium3, ix: usize, iy: usize, iz: usize, amp: f32) {
        match (self, medium) {
            (State3::Iso(s), Medium3::Iso { model, .. }) => s.inject(model, ix, iy, iz, amp),
            (State3::Acoustic(s), Medium3::Acoustic { model, .. }) => {
                s.inject(model, ix, iy, iz, amp)
            }
            (State3::Elastic(s), Medium3::Elastic { model, .. }) => {
                s.inject(model, ix, iy, iz, amp * 1e6)
            }
            _ => panic!("state/medium formulation mismatch"),
        }
    }

    /// Advance one time step on `gangs` host threads.
    pub fn step(&mut self, medium: &Medium3, config: &OptimizationConfig, gangs: usize) {
        let e = medium.extent();
        let nz = e.nz;
        match (self, medium) {
            (State3::Iso(s), Medium3::Iso { model, damp }) => {
                {
                    let u = SyncSlice::new(s.u_prev.as_mut_slice());
                    let cur = s.u_cur.as_slice();
                    par_slabs(nz, gangs, |z0, z1| {
                        iso3d::step_slab(
                            u,
                            cur,
                            model.vp.as_slice(),
                            e,
                            [model.geom.dx, model.geom.dy, model.geom.dz],
                            model.geom.dt,
                            damp,
                            config.iso_pml,
                            z0,
                            z1,
                        );
                    });
                }
                s.u_prev.swap(&mut s.u_cur);
            }
            (State3::Acoustic(s), Medium3::Acoustic { model, cpml }) => {
                acoustic3_velocity_phase(s, model, cpml, e, gangs, model.geom.dt);
                acoustic3_pressure_phase(s, model, cpml, e, gangs, model.geom.dt, config, false);
            }
            (State3::Elastic(s), Medium3::Elastic { model, cpml }) => {
                // The elastic step has six kernels with ψ-array ownership
                // spread across the psi vector; reuse the sequential step
                // for z-slabs by partitioning inside each kernel call.
                // (El3State::step already runs the kernels over the full
                // range; parallelise by calling its kernels per slab.)
                elastic_step_gangs(s, model, cpml, gangs);
            }
            _ => panic!("state/medium formulation mismatch"),
        }
    }

    /// Undo one [`State3::step`] through a **lossless** medium (transparent
    /// absorbers) — the 3-D counterpart of [`crate::modeling::State2::step_reverse`],
    /// with the same contract: leapfrog states reverse by stepping forward
    /// from swapped levels; staggered states run their phases in reverse
    /// order with `−dt` (the fissioned acoustic pressure phase additionally
    /// reverses its per-axis loop, since the three axis updates accumulate
    /// into `p` sequentially). Callers remove the source injection first.
    pub fn step_reverse(&mut self, medium: &Medium3, config: &OptimizationConfig, gangs: usize) {
        let e = medium.extent();
        match (&mut *self, medium) {
            (State3::Iso(_), Medium3::Iso { .. }) => {
                if let State3::Iso(s) = self {
                    s.u_prev.swap(&mut s.u_cur);
                }
                self.step(medium, config, gangs);
                if let State3::Iso(s) = self {
                    s.u_prev.swap(&mut s.u_cur);
                }
            }
            (State3::Acoustic(s), Medium3::Acoustic { model, cpml }) => {
                acoustic3_pressure_phase(s, model, cpml, e, gangs, -model.geom.dt, config, true);
                acoustic3_velocity_phase(s, model, cpml, e, gangs, -model.geom.dt);
            }
            (State3::Elastic(s), Medium3::Elastic { model, cpml }) => {
                elastic3_stress_gangs(s, model, cpml, gangs, -model.geom.dt);
                elastic3_velocity_gangs(s, model, cpml, gangs, -model.geom.dt);
            }
            _ => panic!("state/medium formulation mismatch"),
        }
    }
}

/// Acoustic 3-D phase 1: particle velocities from the pressure gradient
/// (`q += dt·D(p)` per axis, one fused kernel). `dt` is signed.
fn acoustic3_velocity_phase(
    s: &mut acoustic3d::Ac3State,
    model: &AcousticModel3,
    cpml: &[CpmlAxis; 3],
    e: Extent3,
    gangs: usize,
    dt: f32,
) {
    let h = [model.geom.dx, model.geom.dy, model.geom.dz];
    let qx = SyncSlice::new(s.qx.as_mut_slice());
    let qy = SyncSlice::new(s.qy.as_mut_slice());
    let qz = SyncSlice::new(s.qz.as_mut_slice());
    let px = SyncSlice::new(s.psi_px.as_mut_slice());
    let py = SyncSlice::new(s.psi_py.as_mut_slice());
    let pz = SyncSlice::new(s.psi_pz.as_mut_slice());
    let p = s.p.as_slice();
    par_slabs(e.nz, gangs, |z0, z1| {
        acoustic3d::velocity_slab(
            qx,
            qy,
            qz,
            px,
            py,
            pz,
            p,
            model.rho.as_slice(),
            e,
            h,
            dt,
            cpml,
            z0,
            z1,
        );
    });
}

/// Acoustic 3-D phase 2: pressure from the velocity divergence, in the
/// configured fused/fissioned form. The fissioned form updates `p` three
/// times in sequence (once per axis), so the reverse sweep must visit the
/// axes in the opposite order (`axes_reversed`); the fused form is a single
/// update and ignores the flag.
#[allow(clippy::too_many_arguments)]
fn acoustic3_pressure_phase(
    s: &mut acoustic3d::Ac3State,
    model: &AcousticModel3,
    cpml: &[CpmlAxis; 3],
    e: Extent3,
    gangs: usize,
    dt: f32,
    config: &OptimizationConfig,
    axes_reversed: bool,
) {
    let h = [model.geom.dx, model.geom.dy, model.geom.dz];
    match config.fission {
        seismic_prop::FissionVariant::Fused => {
            let p = SyncSlice::new(s.p.as_mut_slice());
            let sx = SyncSlice::new(s.psi_qx.as_mut_slice());
            let sy = SyncSlice::new(s.psi_qy.as_mut_slice());
            let sz = SyncSlice::new(s.psi_qz.as_mut_slice());
            let (qx, qy, qz) = (s.qx.as_slice(), s.qy.as_slice(), s.qz.as_slice());
            par_slabs(e.nz, gangs, |z0, z1| {
                acoustic3d::pressure_fused_slab(
                    p,
                    sx,
                    sy,
                    sz,
                    qx,
                    qy,
                    qz,
                    model.vp.as_slice(),
                    model.rho.as_slice(),
                    e,
                    h,
                    dt,
                    cpml,
                    z0,
                    z1,
                );
            });
        }
        seismic_prop::FissionVariant::Fissioned => {
            let order: [usize; 3] = if axes_reversed { [2, 1, 0] } else { [0, 1, 2] };
            for axis in order {
                let p = SyncSlice::new(s.p.as_mut_slice());
                let (psi, q) = match axis {
                    0 => (SyncSlice::new(s.psi_qx.as_mut_slice()), s.qx.as_slice()),
                    1 => (SyncSlice::new(s.psi_qy.as_mut_slice()), s.qy.as_slice()),
                    _ => (SyncSlice::new(s.psi_qz.as_mut_slice()), s.qz.as_slice()),
                };
                par_slabs(e.nz, gangs, |z0, z1| {
                    acoustic3d::pressure_axis_slab(
                        p,
                        psi,
                        q,
                        model.vp.as_slice(),
                        model.rho.as_slice(),
                        e,
                        axis,
                        h[axis],
                        dt,
                        &cpml[axis],
                        z0,
                        z1,
                    );
                });
            }
        }
    }
}

/// Gang-parallel elastic 3D step: each of the six kernels is run
/// slab-parallel in turn (same phase structure as the sequential
/// [`elastic3d::El3State::step`]).
fn elastic_step_gangs(
    s: &mut elastic3d::El3State,
    model: &ElasticModel3,
    cpml: &[CpmlAxis; 3],
    gangs: usize,
) {
    let dt = model.geom.dt;
    elastic3_velocity_gangs(s, model, cpml, gangs, dt);
    elastic3_stress_gangs(s, model, cpml, gangs, dt);
}

/// Elastic 3-D velocity phase (vx, vy, vz kernels — all read only
/// stresses). `dt` is signed so the reverse sweep can undo the phase.
fn elastic3_velocity_gangs(
    s: &mut elastic3d::El3State,
    model: &ElasticModel3,
    cpml: &[CpmlAxis; 3],
    gangs: usize,
    dt: f32,
) {
    let e = s.vx.extent();
    let nz = e.nz;
    let g = &model.geom;
    let h = [g.dx, g.dy, g.dz];
    {
        let (a, rest) = s.psi.split_at_mut(1);
        let (b, rest2) = rest.split_at_mut(1);
        let vx = SyncSlice::new(s.vx.as_mut_slice());
        let p0 = SyncSlice::new(a[0].as_mut_slice());
        let p1 = SyncSlice::new(b[0].as_mut_slice());
        let p2 = SyncSlice::new(rest2[0].as_mut_slice());
        let (sxx, sxy, sxz) = (s.sxx.as_slice(), s.sxy.as_slice(), s.sxz.as_slice());
        par_slabs(nz, gangs, |z0, z1| {
            elastic3d::vx_slab(
                vx,
                p0,
                p1,
                p2,
                sxx,
                sxy,
                sxz,
                model.rho.as_slice(),
                e,
                h,
                dt,
                cpml,
                z0,
                z1,
            );
        });
    }
    {
        let (_, rest) = s.psi.split_at_mut(3);
        let (a, rest2) = rest.split_at_mut(1);
        let (b, rest3) = rest2.split_at_mut(1);
        let vy = SyncSlice::new(s.vy.as_mut_slice());
        let p0 = SyncSlice::new(a[0].as_mut_slice());
        let p1 = SyncSlice::new(b[0].as_mut_slice());
        let p2 = SyncSlice::new(rest3[0].as_mut_slice());
        let (sxy, syy, syz) = (s.sxy.as_slice(), s.syy.as_slice(), s.syz.as_slice());
        par_slabs(nz, gangs, |z0, z1| {
            elastic3d::vy_slab(
                vy,
                p0,
                p1,
                p2,
                sxy,
                syy,
                syz,
                model.rho.as_slice(),
                e,
                h,
                dt,
                cpml,
                z0,
                z1,
            );
        });
    }
    {
        let (_, rest) = s.psi.split_at_mut(6);
        let (a, rest2) = rest.split_at_mut(1);
        let (b, rest3) = rest2.split_at_mut(1);
        let vz = SyncSlice::new(s.vz.as_mut_slice());
        let p0 = SyncSlice::new(a[0].as_mut_slice());
        let p1 = SyncSlice::new(b[0].as_mut_slice());
        let p2 = SyncSlice::new(rest3[0].as_mut_slice());
        let (sxz, syz, szz) = (s.sxz.as_slice(), s.syz.as_slice(), s.szz.as_slice());
        par_slabs(nz, gangs, |z0, z1| {
            elastic3d::vz_slab(
                vz,
                p0,
                p1,
                p2,
                sxz,
                syz,
                szz,
                model.rho.as_slice(),
                e,
                h,
                dt,
                cpml,
                z0,
                z1,
            );
        });
    }
}

/// Elastic 3-D stress phase (diagonal, sxy/sxz, syz kernels — all read
/// only velocities). `dt` is signed.
fn elastic3_stress_gangs(
    s: &mut elastic3d::El3State,
    model: &ElasticModel3,
    cpml: &[CpmlAxis; 3],
    gangs: usize,
    dt: f32,
) {
    let e = s.vx.extent();
    let nz = e.nz;
    let g = &model.geom;
    let h = [g.dx, g.dy, g.dz];
    {
        let (_, rest) = s.psi.split_at_mut(9);
        let (a, rest2) = rest.split_at_mut(1);
        let (b, rest3) = rest2.split_at_mut(1);
        let sxx = SyncSlice::new(s.sxx.as_mut_slice());
        let syy = SyncSlice::new(s.syy.as_mut_slice());
        let szz = SyncSlice::new(s.szz.as_mut_slice());
        let p0 = SyncSlice::new(a[0].as_mut_slice());
        let p1 = SyncSlice::new(b[0].as_mut_slice());
        let p2 = SyncSlice::new(rest3[0].as_mut_slice());
        let (vx, vy, vz) = (s.vx.as_slice(), s.vy.as_slice(), s.vz.as_slice());
        par_slabs(nz, gangs, |z0, z1| {
            elastic3d::stress_diag_slab(
                sxx,
                syy,
                szz,
                p0,
                p1,
                p2,
                vx,
                vy,
                vz,
                model.lam.as_slice(),
                model.mu.as_slice(),
                e,
                h,
                dt,
                cpml,
                z0,
                z1,
            );
        });
    }
    {
        let (_, rest) = s.psi.split_at_mut(12);
        let (a, rest2) = rest.split_at_mut(1);
        let (b, rest3) = rest2.split_at_mut(1);
        let (c, rest4) = rest3.split_at_mut(1);
        let sxy = SyncSlice::new(s.sxy.as_mut_slice());
        let sxz = SyncSlice::new(s.sxz.as_mut_slice());
        let p0 = SyncSlice::new(a[0].as_mut_slice());
        let p1 = SyncSlice::new(b[0].as_mut_slice());
        let p2 = SyncSlice::new(c[0].as_mut_slice());
        let p3 = SyncSlice::new(rest4[0].as_mut_slice());
        let (vx, vy, vz) = (s.vx.as_slice(), s.vy.as_slice(), s.vz.as_slice());
        par_slabs(nz, gangs, |z0, z1| {
            elastic3d::stress_sxy_sxz_slab(
                sxy,
                sxz,
                p0,
                p1,
                p2,
                p3,
                vx,
                vy,
                vz,
                model.mu.as_slice(),
                e,
                h,
                dt,
                cpml,
                z0,
                z1,
            );
        });
    }
    {
        let (_, rest) = s.psi.split_at_mut(16);
        let (a, rest2) = rest.split_at_mut(1);
        let syz = SyncSlice::new(s.syz.as_mut_slice());
        let p0 = SyncSlice::new(a[0].as_mut_slice());
        let p1 = SyncSlice::new(rest2[0].as_mut_slice());
        let (vy, vz) = (s.vy.as_slice(), s.vz.as_slice());
        par_slabs(nz, gangs, |z0, z1| {
            elastic3d::stress_syz_slab(
                syz,
                p0,
                p1,
                vy,
                vz,
                model.mu.as_slice(),
                e,
                h,
                dt,
                cpml,
                z0,
                z1,
            );
        });
    }
}

/// Output of a 3D modeling run: y-plane snapshots plus the shot record.
pub struct Modeling3Result {
    /// x–z plane snapshots at the source's y index, every `snap_period`.
    pub snapshots: Vec<seismic_grid::Field2>,
    /// The recorded shot record.
    pub seismogram: Seismogram,
}

/// Run 3D forward modeling with plane-snapshot saves.
pub fn run_modeling3(
    medium: &Medium3,
    acq: &Acquisition3,
    wavelet: &Wavelet,
    config: &OptimizationConfig,
    steps: usize,
    snap_period: usize,
    gangs: usize,
) -> Modeling3Result {
    let mut state = State3::new(medium);
    let mut seismogram = Seismogram::zeros(acq.n_receivers(), steps);
    // Plane-snapshot storage is sized up front so the time loop itself
    // performs no allocation.
    let e = medium.extent();
    let e2 = seismic_grid::Extent2::new(e.nx, e.nz, e.halo);
    let n_snaps = steps.div_ceil(snap_period);
    let mut snapshots: Vec<seismic_grid::Field2> = (0..n_snaps)
        .map(|_| seismic_grid::Field2::zeros(e2))
        .collect();
    let dt = medium.dt();
    // Wall-clock forward phase (no-op unless the host profiler is on).
    let t_phase = exec_host::prof::begin();
    for t in 0..steps {
        state.step(medium, config, gangs);
        state.inject(
            medium,
            acq.src_ix,
            acq.src_iy,
            acq.src_iz,
            wavelet.sample(t as f32 * dt),
        );
        for (r, rcv) in acq.receivers.iter().enumerate() {
            seismogram.record(r, t, state.sample(rcv.ix, rcv.iy, rcv.iz));
        }
        if t % snap_period == 0 {
            state.write_slice_y_into(acq.src_iy, &mut snapshots[t / snap_period]);
        }
    }
    exec_host::prof::end(
        t_phase,
        exec_host::prof::EventKind::Phase,
        exec_host::prof::PHASE_FORWARD,
        0,
    );
    Modeling3Result {
        snapshots,
        seismogram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seismic_grid::cfl::stable_dt;
    use seismic_model::builder::{
        acoustic3_layered, elastic3_layered, iso3_layered, standard_layers,
    };
    use seismic_model::{extent3, Geometry};

    fn media(n: usize) -> Vec<(&'static str, Medium3)> {
        let e = extent3(n, n, n);
        let h = 10.0;
        let vmax = 3200.0;
        let geom = |safety| Geometry::uniform(h, stable_dt(8, 3, vmax, h, safety));
        let layers = standard_layers(n);
        let d = DampProfile::new(n, e.halo, 6, vmax, h, 1e-4);
        let cp = CpmlAxis::new(n, e.halo, 6, stable_dt(8, 3, vmax, h, 0.5), vmax, h, 1e-4);
        vec![
            (
                "iso",
                Medium3::Iso {
                    model: iso3_layered(e, &layers, geom(0.7)),
                    damp: [d.clone(), d.clone(), d],
                },
            ),
            (
                "acoustic",
                Medium3::Acoustic {
                    model: acoustic3_layered(e, &layers, geom(0.55)),
                    cpml: [cp.clone(), cp.clone(), cp.clone()],
                },
            ),
            (
                "elastic",
                Medium3::Elastic {
                    model: elastic3_layered(e, &layers, geom(0.5)),
                    cpml: [cp.clone(), cp.clone(), cp],
                },
            ),
        ]
    }

    #[test]
    fn all_formulations_model_stably_3d() {
        let n = 28;
        for (name, medium) in media(n) {
            let acq = Acquisition3::surface_patch(n, n, (n / 2, n / 2, 6), 3, 8);
            let r = run_modeling3(
                &medium,
                &acq,
                &Wavelet::ricker(25.0),
                &OptimizationConfig::default(),
                50,
                10,
                4,
            );
            assert_eq!(r.snapshots.len(), 5, "{name}");
            assert!(r.seismogram.rms() > 0.0, "{name}");
            let peak = r.snapshots.last().unwrap().max_abs();
            assert!(peak.is_finite(), "{name}: {peak}");
        }
    }

    /// Gang-count invariance in 3D, including the six-kernel elastic path.
    #[test]
    fn gang_invariance_3d() {
        let n = 24;
        for (name, medium) in media(n) {
            let acq = Acquisition3::surface_patch(n, n, (n / 2, n / 2, n / 2), 3, 12);
            let cfg = OptimizationConfig::default();
            let w = Wavelet::ricker(25.0);
            let a = run_modeling3(&medium, &acq, &w, &cfg, 25, 5, 1);
            let b = run_modeling3(&medium, &acq, &w, &cfg, 25, 5, 6);
            assert_eq!(a.seismogram, b.seismogram, "{name}");
            assert_eq!(a.snapshots, b.snapshots, "{name}");
        }
    }

    /// The 3D fission knob is physics-preserving through the driver too.
    #[test]
    fn fission_variants_agree_through_driver() {
        let n = 24;
        let medium = &media(n)[1].1;
        let acq = Acquisition3::surface_patch(n, n, (n / 2, n / 2, 6), 3, 12);
        let w = Wavelet::ricker(25.0);
        let fused = run_modeling3(
            medium,
            &acq,
            &w,
            &OptimizationConfig {
                fission: seismic_prop::FissionVariant::Fused,
                ..OptimizationConfig::default()
            },
            30,
            6,
            4,
        );
        let fiss = run_modeling3(medium, &acq, &w, &OptimizationConfig::default(), 30, 6, 4);
        // Reassociated accumulation: tight tolerance, not bitwise.
        let scale = fused.seismogram.rms().max(1e-30);
        for r in 0..acq.n_receivers() {
            for t in 0..30 {
                let d = (fused.seismogram.get(r, t) - fiss.seismogram.get(r, t)).abs() as f64;
                assert!(d < 1e-3 * scale, "r={r} t={t}");
            }
        }
    }

    /// 3-D counterpart of the 2-D reversibility test: through transparent
    /// boundaries, `inject(−s_t); step_reverse()` reconstructs every forward
    /// wavefield to f32 roundoff — for all three formulations, and for the
    /// acoustic path under *both* fission variants (the fissioned reverse
    /// must re-visit the per-axis updates in the opposite order).
    #[test]
    fn step_reverse_reconstructs_forward_states_3d() {
        let n = 20;
        let e = extent3(n, n, n);
        let h = 10.0;
        let vmax = 3200.0;
        let geom = |safety| Geometry::uniform(h, stable_dt(8, 3, vmax, h, safety));
        let layers = standard_layers(n);
        let tr_d = || DampProfile::transparent(n, e.halo);
        let tr_c = || CpmlAxis::transparent(n, e.halo);
        let media: Vec<(&str, Medium3)> = vec![
            (
                "iso",
                Medium3::Iso {
                    model: iso3_layered(e, &layers, geom(0.7)),
                    damp: [tr_d(), tr_d(), tr_d()],
                },
            ),
            (
                "acoustic",
                Medium3::Acoustic {
                    model: acoustic3_layered(e, &layers, geom(0.55)),
                    cpml: [tr_c(), tr_c(), tr_c()],
                },
            ),
            (
                "elastic",
                Medium3::Elastic {
                    model: elastic3_layered(e, &layers, geom(0.5)),
                    cpml: [tr_c(), tr_c(), tr_c()],
                },
            ),
        ];
        let w = Wavelet::ricker(25.0);
        let steps = 30;
        for (name, medium) in &media {
            let variants: &[seismic_prop::FissionVariant] = if *name == "acoustic" {
                &[
                    seismic_prop::FissionVariant::Fused,
                    seismic_prop::FissionVariant::Fissioned,
                ]
            } else {
                &[seismic_prop::FissionVariant::Fissioned]
            };
            for &fission in variants {
                let cfg = OptimizationConfig {
                    fission,
                    ..OptimizationConfig::default()
                };
                let dt = medium.dt();
                let mut s = State3::new(medium);
                let mut stored = Vec::new();
                let mut peak = 0.0f32;
                for t in 0..steps {
                    s.step(medium, &cfg, 3);
                    s.inject(medium, n / 2, n / 2, n / 2, w.sample(t as f32 * dt));
                    let mut f = Field3::zeros(e);
                    s.write_wavefield_into(&mut f);
                    peak = peak.max(f.max_abs());
                    stored.push(f);
                }
                let mut recon = Field3::zeros(e);
                for t in (1..steps).rev() {
                    s.inject(medium, n / 2, n / 2, n / 2, -w.sample(t as f32 * dt));
                    s.step_reverse(medium, &cfg, 3);
                    recon.fill_zero();
                    s.write_wavefield_into(&mut recon);
                    let max_d = recon
                        .as_slice()
                        .iter()
                        .zip(stored[t - 1].as_slice())
                        .map(|(a, b)| (a - b).abs())
                        .fold(0.0f32, f32::max);
                    assert!(
                        max_d / peak < 1e-3,
                        "{name}/{fission:?} step {t}: error {max_d} vs peak {peak}"
                    );
                }
            }
        }
    }
}
