//! Real decomposed CPU execution over `mpi-sim` ranks.
//!
//! The reference implementation of Algorithm 1: the domain is slab-split
//! along z across ranks, each step exchanges ghost rows with nonblocking
//! sends/receives, and the rank owning the source row injects. This is the
//! executable counterpart of the Table 3/4 CPU baseline timing model, and
//! its output is verified bit-for-bit against the sequential propagator.

use bytes::Bytes;
use mpi_sim::comm::Communicator;
use mpi_sim::decomp::SlabDecomp;
use mpi_sim::halo::exchange_halo2;
use seismic_grid::{Extent2, Field2, SyncSlice, STENCIL_HALF};
use seismic_model::IsoModel2;
use seismic_pml::DampProfile;
use seismic_prop::{iso2d, IsoPmlVariant};
use seismic_source::Wavelet;

/// Run isotropic 2D modeling decomposed over `ranks` ranks; returns the
/// final wavefield assembled on rank 0 (global extent).
#[allow(clippy::too_many_arguments)]
pub fn modeling_iso2_mpi(
    model: &IsoModel2,
    damp_x: &DampProfile,
    damp_z: &DampProfile,
    src: (usize, usize),
    wavelet: &Wavelet,
    steps: usize,
    ranks: usize,
) -> Field2 {
    let ge = model.vp.extent();
    let decomp = SlabDecomp::new(ge.nz, ranks, STENCIL_HALF);
    let dt = model.geom.dt;

    let mut results = Communicator::run(ranks, |ctx| {
        let slab = decomp.slab(ctx.rank());
        let le = Extent2::new(ge.nx, slab.nz(), STENCIL_HALF);
        // Rank-local views of the model and damping.
        let vp_local = Field2::from_fn(le, |ix, iz| model.vp.get(ix, iz + slab.z0));
        let damp_z_local = damp_z.window(slab.z0, slab.nz());
        let mut u_prev = Field2::zeros(le);
        let mut u_cur = Field2::zeros(le);
        let src_local = (src.1 >= slab.z0 && src.1 < slab.z1).then(|| (src.0, src.1 - slab.z0));

        for t in 0..steps {
            // exchange_boundaries: both time levels feed the update (u_cur
            // through the stencil, u_prev pointwise — only u_cur's halo is
            // read, so one exchange per step suffices).
            exchange_halo2(ctx, &mut u_cur, &slab, 100);
            {
                let u = SyncSlice::new(u_prev.as_mut_slice());
                iso2d::step_slab(
                    u,
                    u_cur.as_slice(),
                    vp_local.as_slice(),
                    le,
                    model.geom.dx,
                    model.geom.dz,
                    dt,
                    damp_x,
                    &damp_z_local,
                    IsoPmlVariant::OriginalIfs,
                    0,
                    slab.nz(),
                );
            }
            u_prev.swap(&mut u_cur);
            // source_injection by the owning rank.
            if let Some((ix, iz)) = src_local {
                let vp = vp_local.get(ix, iz);
                let amp = wavelet.sample(t as f32 * dt);
                let v = u_cur.get(ix, iz) + dt * dt * vp * vp * amp;
                u_cur.set(ix, iz, v);
            }
        }

        // Gather interior rows to rank 0.
        if ctx.rank() == 0 {
            let mut global = Field2::zeros(ge);
            // Own rows.
            for iz in 0..slab.nz() {
                for ix in 0..ge.nx {
                    global.set(ix, iz, u_cur.get(ix, iz));
                }
            }
            for r in 1..ctx.size() {
                let b = ctx.recv(r, 999);
                let rs = decomp.slab(r);
                let vals: Vec<f32> = b
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
                    .collect();
                assert_eq!(vals.len(), rs.nz() * ge.nx, "gather payload");
                for (i, v) in vals.into_iter().enumerate() {
                    let iz = rs.z0 + i / ge.nx;
                    let ix = i % ge.nx;
                    global.set(ix, iz, v);
                }
            }
            Some(global)
        } else {
            let mut payload = Vec::with_capacity(slab.nz() * ge.nx * 4);
            for iz in 0..slab.nz() {
                for ix in 0..ge.nx {
                    payload.extend_from_slice(&u_cur.get(ix, iz).to_le_bytes());
                }
            }
            ctx.isend(0, 999, Bytes::from(payload));
            None
        }
    });
    results
        .remove(0)
        .expect("rank 0 returns the assembled field")
}

/// Run isotropic 3D modeling decomposed over `ranks` ranks; returns the
/// final wavefield assembled on rank 0.
#[allow(clippy::too_many_arguments)]
pub fn modeling_iso3_mpi(
    model: &seismic_model::IsoModel3,
    damp: &[DampProfile; 3],
    src: (usize, usize, usize),
    wavelet: &Wavelet,
    steps: usize,
    ranks: usize,
) -> seismic_grid::Field3 {
    use mpi_sim::halo::exchange_halo3;
    use seismic_grid::{Extent3, Field3};
    use seismic_prop::iso3d;

    let ge = model.vp.extent();
    let decomp = SlabDecomp::new(ge.nz, ranks, STENCIL_HALF);
    let dt = model.geom.dt;

    let mut results = Communicator::run(ranks, |ctx| {
        let slab = decomp.slab(ctx.rank());
        let le = Extent3::new(ge.nx, ge.ny, slab.nz(), STENCIL_HALF);
        let vp_local = Field3::from_fn(le, |ix, iy, iz| model.vp.get(ix, iy, iz + slab.z0));
        let damp_local = [
            damp[0].clone(),
            damp[1].clone(),
            damp[2].window(slab.z0, slab.nz()),
        ];
        let mut u_prev = Field3::zeros(le);
        let mut u_cur = Field3::zeros(le);
        let src_local =
            (src.2 >= slab.z0 && src.2 < slab.z1).then(|| (src.0, src.1, src.2 - slab.z0));

        for t in 0..steps {
            exchange_halo3(ctx, &mut u_cur, &slab, 300);
            {
                let u = SyncSlice::new(u_prev.as_mut_slice());
                iso3d::step_slab(
                    u,
                    u_cur.as_slice(),
                    vp_local.as_slice(),
                    le,
                    [model.geom.dx, model.geom.dy, model.geom.dz],
                    dt,
                    &damp_local,
                    seismic_prop::IsoPmlVariant::OriginalIfs,
                    0,
                    slab.nz(),
                );
            }
            u_prev.swap(&mut u_cur);
            if let Some((ix, iy, iz)) = src_local {
                let vp = vp_local.get(ix, iy, iz);
                let amp = wavelet.sample(t as f32 * dt);
                let v = u_cur.get(ix, iy, iz) + dt * dt * vp * vp * amp;
                u_cur.set(ix, iy, iz, v);
            }
        }

        if ctx.rank() == 0 {
            let mut global = Field3::zeros(ge);
            for iz in 0..slab.nz() {
                for iy in 0..ge.ny {
                    for ix in 0..ge.nx {
                        global.set(ix, iy, iz, u_cur.get(ix, iy, iz));
                    }
                }
            }
            for r in 1..ctx.size() {
                let b = ctx.recv(r, 998);
                let rs = decomp.slab(r);
                let vals: Vec<f32> = b
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
                    .collect();
                assert_eq!(vals.len(), rs.nz() * ge.ny * ge.nx, "gather payload");
                for (i, v) in vals.into_iter().enumerate() {
                    let iz = rs.z0 + i / (ge.nx * ge.ny);
                    let iy = (i / ge.nx) % ge.ny;
                    let ix = i % ge.nx;
                    global.set(ix, iy, iz, v);
                }
            }
            Some(global)
        } else {
            let mut payload = Vec::with_capacity(slab.nz() * ge.ny * ge.nx * 4);
            for iz in 0..slab.nz() {
                for iy in 0..ge.ny {
                    for ix in 0..ge.nx {
                        payload.extend_from_slice(&u_cur.get(ix, iy, iz).to_le_bytes());
                    }
                }
            }
            ctx.isend(0, 998, Bytes::from(payload));
            None
        }
    });
    results
        .remove(0)
        .expect("rank 0 returns the assembled field")
}

/// Run acoustic (staggered, variable-density) 2D modeling decomposed over
/// `ranks` ranks; returns the final pressure field assembled on rank 0.
///
/// The staggered system needs *two* exchanges per step — the pressure halo
/// before the velocity kernel and the velocity halos before the pressure
/// kernel — exactly the multi-field `exchange_boundaries` of Algorithm 1.
#[allow(clippy::too_many_arguments)]
pub fn modeling_ac2_mpi(
    model: &seismic_model::AcousticModel2,
    cpml: &[seismic_pml::CpmlAxis; 2],
    src: (usize, usize),
    wavelet: &Wavelet,
    steps: usize,
    ranks: usize,
) -> Field2 {
    use seismic_prop::acoustic2d;

    let ge = model.vp.extent();
    let decomp = SlabDecomp::new(ge.nz, ranks, STENCIL_HALF);
    let dt = model.geom.dt;

    let mut results = Communicator::run(ranks, |ctx| {
        let slab = decomp.slab(ctx.rank());
        let le = Extent2::new(ge.nx, slab.nz(), STENCIL_HALF);
        let vp_local = Field2::from_fn(le, |ix, iz| model.vp.get(ix, iz + slab.z0));
        let rho_local = Field2::from_fn(le, |ix, iz| model.rho.get(ix, iz + slab.z0));
        // C-PML coefficients are 1-D per axis; the z axis needs the
        // rank-local window (x is replicated).
        let cpml_local = [cpml[0].clone(), cpml[1].window(slab.z0, slab.nz())];
        let mut st = acoustic2d::Ac2State::new(le);
        let src_local = (src.1 >= slab.z0 && src.1 < slab.z1).then(|| (src.0, src.1 - slab.z0));

        for t in 0..steps {
            // Velocity kernel reads p's halo.
            exchange_halo2(ctx, &mut st.p, &slab, 200);
            {
                let qx = SyncSlice::new(st.qx.as_mut_slice());
                let qz = SyncSlice::new(st.qz.as_mut_slice());
                let px = SyncSlice::new(st.psi_px.as_mut_slice());
                let pz = SyncSlice::new(st.psi_pz.as_mut_slice());
                acoustic2d::velocity_slab(
                    qx,
                    qz,
                    px,
                    pz,
                    st.p.as_slice(),
                    rho_local.as_slice(),
                    le,
                    model.geom.dx,
                    model.geom.dz,
                    dt,
                    &cpml_local,
                    0,
                    slab.nz(),
                );
            }
            // Pressure kernel reads qx/qz halos.
            exchange_halo2(ctx, &mut st.qx, &slab, 210);
            exchange_halo2(ctx, &mut st.qz, &slab, 220);
            {
                let p = SyncSlice::new(st.p.as_mut_slice());
                let sx = SyncSlice::new(st.psi_qx.as_mut_slice());
                let sz = SyncSlice::new(st.psi_qz.as_mut_slice());
                acoustic2d::pressure_slab(
                    p,
                    sx,
                    sz,
                    st.qx.as_slice(),
                    st.qz.as_slice(),
                    vp_local.as_slice(),
                    rho_local.as_slice(),
                    le,
                    model.geom.dx,
                    model.geom.dz,
                    dt,
                    &cpml_local,
                    0,
                    slab.nz(),
                );
            }
            if let Some((ix, iz)) = src_local {
                let vp = vp_local.get(ix, iz);
                let rho = rho_local.get(ix, iz);
                let amp = wavelet.sample(t as f32 * dt);
                let v = st.p.get(ix, iz) + dt * rho * vp * vp * amp;
                st.p.set(ix, iz, v);
            }
        }

        if ctx.rank() == 0 {
            let mut global = Field2::zeros(ge);
            for iz in 0..slab.nz() {
                for ix in 0..ge.nx {
                    global.set(ix, iz, st.p.get(ix, iz));
                }
            }
            for r in 1..ctx.size() {
                let b = ctx.recv(r, 997);
                let rs = decomp.slab(r);
                for (i, chunk) in b.chunks_exact(4).enumerate() {
                    let v = f32::from_le_bytes(chunk.try_into().expect("4 bytes"));
                    global.set(i % ge.nx, rs.z0 + i / ge.nx, v);
                }
            }
            Some(global)
        } else {
            let mut payload = Vec::with_capacity(slab.nz() * ge.nx * 4);
            for iz in 0..slab.nz() {
                for ix in 0..ge.nx {
                    payload.extend_from_slice(&st.p.get(ix, iz).to_le_bytes());
                }
            }
            ctx.isend(0, 997, Bytes::from(payload));
            None
        }
    });
    results
        .remove(0)
        .expect("rank 0 returns the assembled field")
}

#[cfg(test)]
mod tests {
    use super::*;
    use seismic_grid::cfl::stable_dt;
    use seismic_model::builder::iso2_layered;
    use seismic_model::builder::standard_layers;
    use seismic_model::{extent2, Geometry};
    use seismic_prop::iso2d::Iso2State;

    fn setup(n: usize) -> (IsoModel2, DampProfile, DampProfile) {
        let e = extent2(n, n);
        let h = 10.0;
        let dt = stable_dt(8, 2, 3200.0, h, 0.7);
        let m = iso2_layered(e, &standard_layers(n), Geometry::uniform(h, dt));
        let d = DampProfile::new(n, e.halo, 12, 3200.0, h, 1e-4);
        (m, d.clone(), d)
    }

    /// The decomposed run must reproduce the sequential propagator exactly
    /// — Algorithm 1's ghost exchange is lossless.
    #[test]
    fn mpi_matches_sequential_bitwise() {
        let n = 60;
        let (m, dx, dz) = setup(n);
        let w = Wavelet::ricker(20.0);
        let steps = 60;
        // Sequential reference.
        let mut seq = Iso2State::new(m.vp.extent());
        for t in 0..steps {
            seq.step(&m, &dx, &dz, IsoPmlVariant::OriginalIfs);
            seq.inject(&m, n / 2, 10, w.sample(t as f32 * m.geom.dt));
        }
        for ranks in [1usize, 2, 3, 4] {
            let got = modeling_iso2_mpi(&m, &dx, &dz, (n / 2, 10), &w, steps, ranks);
            for iz in 0..n {
                for ix in 0..n {
                    assert_eq!(
                        got.get(ix, iz),
                        seq.u_cur.get(ix, iz),
                        "ranks={ranks} at ({ix},{iz})"
                    );
                }
            }
        }
    }

    /// The 3D decomposition is lossless too.
    #[test]
    fn mpi3_matches_sequential_bitwise() {
        use seismic_model::builder::iso3_layered;
        use seismic_prop::iso3d::Iso3State;
        let n = 26;
        let e = seismic_model::extent3(n, n, n);
        let h = 10.0;
        let dt = stable_dt(8, 3, 3200.0, h, 0.7);
        let m = iso3_layered(e, &standard_layers(n), Geometry::uniform(h, dt));
        let d = DampProfile::new(n, e.halo, 6, 3200.0, h, 1e-4);
        let damp = [d.clone(), d.clone(), d];
        let w = Wavelet::ricker(25.0);
        let steps = 25;
        let mut seq = Iso3State::new(e);
        for t in 0..steps {
            seq.step(&m, &damp, seismic_prop::IsoPmlVariant::OriginalIfs);
            seq.inject(&m, n / 2, n / 2, 6, w.sample(t as f32 * dt));
        }
        for ranks in [1usize, 3] {
            let got = modeling_iso3_mpi(&m, &damp, (n / 2, n / 2, 6), &w, steps, ranks);
            assert_eq!(got, seq.u_cur, "ranks={ranks}");
        }
    }

    /// The staggered multi-field exchange is lossless too.
    #[test]
    fn acoustic_mpi_matches_sequential_bitwise() {
        use seismic_model::builder::acoustic2_layered;
        use seismic_prop::acoustic2d::Ac2State;
        let n = 54;
        let e = seismic_model::extent2(n, n);
        let h = 10.0;
        let dt = stable_dt(8, 2, 3200.0, h, 0.55);
        let m = acoustic2_layered(e, &standard_layers(n), Geometry::uniform(h, dt));
        let c = seismic_pml::CpmlAxis::new(n, e.halo, 10, dt, 3200.0, h, 1e-4);
        let cpml = [c.clone(), c];
        let w = Wavelet::ricker(20.0);
        let steps = 50;
        let mut seq = Ac2State::new(e);
        for t in 0..steps {
            seq.step(&m, &cpml);
            let vp = m.vp.get(n / 2, 8);
            let rho = m.rho.get(n / 2, 8);
            let v = seq.p.get(n / 2, 8) + dt * rho * vp * vp * w.sample(t as f32 * dt);
            seq.p.set(n / 2, 8, v);
        }
        for ranks in [1usize, 3] {
            let got = modeling_ac2_mpi(&m, &cpml, (n / 2, 8), &w, steps, ranks);
            assert_eq!(got, seq.p, "ranks = {ranks}");
        }
    }

    /// Source ownership: works when the source row sits in the last slab.
    #[test]
    fn source_in_last_slab() {
        let n = 48;
        let (m, dx, dz) = setup(n);
        let w = Wavelet::ricker(25.0);
        let got = modeling_iso2_mpi(&m, &dx, &dz, (n / 2, n - 5), &w, 30, 3);
        assert!(got.max_abs() > 0.0);
        let mut seq = Iso2State::new(m.vp.extent());
        for t in 0..30 {
            seq.step(&m, &dx, &dz, IsoPmlVariant::OriginalIfs);
            seq.inject(&m, n / 2, n - 5, w.sample(t as f32 * m.geom.dt));
        }
        assert_eq!(got, seq.u_cur.clone());
    }
}
