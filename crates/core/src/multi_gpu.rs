//! Multi-GPU execution model — the paper's "path forward".
//!
//! "We believe that exploiting multiple GPUs will provide powerful
//! insights. Consequently, overlapping MPI communications with GPU
//! computations could improve performance, especially when larger grid
//! dimensions are used." (Section 7.)
//!
//! The paper already implements "a hybrid OpenACC-MPI approach" (one GPU
//! per node, slab decomposition, ghost exchange = device→host transfer +
//! MPI message + host→device transfer, Section 5.1 step 2) but only
//! evaluates one GPU. This module prices the multi-GPU runs they describe:
//!
//! * **ghost packing**: the exchanged planes are contiguous along the
//!   slowest (z) axis, but "exchanging non-contiguous data remains a
//!   non-optimal solution. One workaround is rearranging data of these
//!   ghost nodes by performing a transposition on GPU" — both strategies
//!   are modeled,
//! * **communication mode**: blocking (compute → exchange) vs the
//!   future-work overlap (boundary slabs computed first, their exchange
//!   overlapped with the interior kernel).

use crate::case::{Cluster, OptimizationConfig, SeismicCase, Workload};
use crate::error::{ConfigError, RtmError};
use crate::plan;
use accel_sim::pcie::{transfer_time, HostAlloc, TransferKind};
use accel_sim::SimTime;
use openacc_sim::{AccRuntime, Compiler};
use seismic_grid::STENCIL_HALF;
use seismic_model::footprint::{self, Dims};
use serde::{Deserialize, Serialize};

/// How ghost shells cross between device, host, and network.
///
/// A z-slab cut exchanges contiguous planes; cutting along x or y (needed
/// once the GPU count outgrows nz) leaves the shell scattered as one short
/// run per row. `Strided` models that worst-axis exchange directly;
/// `DevicePacked` first gathers the shell into a contiguous staging buffer
/// with a small device kernel — "rearranging data of these ghost nodes by
/// performing a transposition on GPU".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GhostPacking {
    /// One DMA chunk per contiguous x-run of the shell.
    Strided,
    /// Gather on device, then one contiguous transfer.
    DevicePacked,
}

/// Communication/computation scheduling across the step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommMode {
    /// Compute the whole slab, then exchange ghosts.
    Blocking,
    /// Compute the boundary shells first, exchange them while the interior
    /// kernel runs (the paper's proposed overlap).
    Overlapped,
}

/// Per-step and end-to-end timing of a decomposed multi-GPU run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiGpuTiming {
    /// GPUs used.
    pub n_gpus: usize,
    /// End-to-end simulated time.
    pub total_s: SimTime,
    /// Per-step compute time on the busiest GPU.
    pub step_compute_s: SimTime,
    /// Per-step exposed (non-overlapped) communication time.
    pub step_comm_exposed_s: SimTime,
    /// Per-step raw communication time (PCIe both ways + network).
    pub step_comm_raw_s: SimTime,
}

impl MultiGpuTiming {
    /// Parallel efficiency versus a one-GPU run of the same workload.
    pub fn efficiency_vs(&self, single: &MultiGpuTiming) -> f64 {
        single.total_s / (self.total_s * self.n_gpus as f64)
    }
}

/// Bytes one neighbour exchange moves: the stencil-halo shell of every
/// crossing wavefield. Public so the observability layer can annotate halo
/// spans with the same traffic the timing model priced.
pub fn ghost_bytes(case: &SeismicCase, w: &Workload) -> u64 {
    let plane_points = match case.dims {
        Dims::Two => w.nx as u64 + 2 * STENCIL_HALF as u64,
        Dims::Three => {
            (w.nx as u64 + 2 * STENCIL_HALF as u64) * (w.ny as u64 + 2 * STENCIL_HALF as u64)
        }
    };
    let fields = footprint::modeling_array_count(case.formulation, case.dims) as u64;
    // Only wavefields cross (model arrays are static); approximate as half
    // the resident arrays.
    let fields = (fields / 2).max(1);
    STENCIL_HALF as u64 * plane_points * 4 * fields
}

/// Raw one-directional ghost traffic time for one neighbour exchange:
/// device→host, network, host→device. Public for the same reason as
/// [`ghost_bytes`] — `accprof` builds its MPI-rank halo timeline from it.
pub fn ghost_leg_time(
    cluster: Cluster,
    w: &Workload,
    case: &SeismicCase,
    packing: GhostPacking,
) -> SimTime {
    let dev = cluster.device();
    let fields = footprint::modeling_array_count(case.formulation, case.dims) as u64;
    let fields = (fields / 2).max(1);
    let bytes = ghost_bytes(case, w);
    // Rows (contiguous x-runs) per shell for the worst-axis cut.
    let rows = match case.dims {
        Dims::Two => w.nz as u64 + 2 * STENCIL_HALF as u64,
        Dims::Three => {
            (w.ny as u64 + 2 * STENCIL_HALF as u64) * (w.nz as u64 + 2 * STENCIL_HALF as u64)
                / w.nz.max(1) as u64 // per exchanged plane-pair, amortised
        }
    };
    let kind = match packing {
        GhostPacking::Strided => TransferKind::Strided {
            chunks: STENCIL_HALF as u64 * fields * rows,
            chunk_bytes: (bytes / (STENCIL_HALF as u64 * fields * rows)).max(4),
        },
        GhostPacking::DevicePacked => TransferKind::Contiguous,
    };
    let pcie = transfer_time(&dev, bytes, HostAlloc::Pinned, kind);
    // Device-side packing kernel: a cheap streaming copy of the shell.
    let pack = match packing {
        GhostPacking::Strided => 0.0,
        GhostPacking::DevicePacked => 2.0 * bytes as f64 / dev.bandwidth() + dev.launch_overhead_s,
    };
    let net = cluster.interconnect().msg_time(bytes);
    // D2H + network + H2D on the receiving side.
    2.0 * pcie + net + pack
}

/// Replay a priced decomposed run onto `obs`'s MPI-rank tracks: one
/// [`SpanCat::Halo`](acc_obs::SpanCat) span per step per rank, spanning the
/// step's raw exchange window. Under [`CommMode::Overlapped`] the hidden
/// head of the span sits inside the interior-compute window and only the
/// exposed tail extends the step — the span's `hidden_s`/`exposed_s` args
/// record that split, and its bytes are the same [`ghost_bytes`] traffic
/// the timing model priced. The registry accumulates `halo_bytes` and
/// `halo_exchanges`.
pub fn emit_halo_timeline(
    obs: &acc_obs::ObsSession,
    case: &SeismicCase,
    w: &Workload,
    timing: &MultiGpuTiming,
) {
    use acc_obs::{Span, SpanCat, Track};
    if timing.n_gpus < 2 || timing.step_comm_raw_s <= 0.0 {
        return; // single card: nothing crosses the network
    }
    let bytes = ghost_bytes(case, w);
    let raw = timing.step_comm_raw_s;
    let exposed = timing.step_comm_exposed_s;
    let hidden = (raw - exposed).max(0.0);
    let step_s = timing.step_compute_s + exposed;
    for rank in 0..timing.n_gpus as u32 {
        let lo = rank.checked_sub(1);
        let hi = (rank + 1 < timing.n_gpus as u32).then_some(rank + 1);
        for step in 0..w.steps {
            // The exchange starts once the boundary shell is computed: its
            // hidden head overlaps the interior kernel, the exposed tail
            // sticks out past the compute window.
            let start = step as f64 * step_s + timing.step_compute_s - hidden;
            let mut span = Span::new(
                Track::MpiRank(rank),
                SpanCat::Halo,
                "halo_exchange",
                start,
                raw,
            )
            .with_bytes(bytes)
            .with_arg("hidden_s", format!("{hidden:.3e}"))
            .with_arg("exposed_s", format!("{exposed:.3e}"));
            if let Some(l) = lo {
                span = span.with_arg("neighbor_lo", l.to_string());
            }
            if let Some(h) = hi {
                span = span.with_arg("neighbor_hi", h.to_string());
            }
            obs.span(span);
            obs.registry.inc("halo_exchanges", 1);
            obs.registry.inc("halo_bytes", bytes);
        }
    }
}

/// Price a decomposed forward-modeling run on `n_gpus` identical cards.
#[allow(clippy::too_many_arguments)]
pub fn modeling_time_multi(
    case: &SeismicCase,
    config: &OptimizationConfig,
    compiler: Compiler,
    cluster: Cluster,
    w: &Workload,
    n_gpus: usize,
    packing: GhostPacking,
    mode: CommMode,
) -> Result<MultiGpuTiming, RtmError> {
    if n_gpus == 0 {
        return Err(ConfigError::ZeroGpus.into());
    }
    // Each card holds its slab plus ghost shells.
    let local = Workload {
        nz: w.nz.div_ceil(n_gpus).max(2 * STENCIL_HALF),
        ..*w
    };
    let alloc = local.alloc_points(STENCIL_HALF) as usize;
    let bytes = footprint::modeling_bytes(case.formulation, case.dims, alloc);
    // Capacity check on one card (they are identical).
    let mut rt = AccRuntime::new(cluster.device(), compiler);
    rt.default_maxregcount = config.maxregcount;
    rt.enter_data_copyin("fields", bytes)?;

    // Price one step's kernels over the local slab.
    let phases = plan::step_phases(case, config, &local, compiler);
    let t0 = rt.elapsed();
    for phase in &phases {
        let mut any_async = false;
        for s in phase {
            rt.launch(&s.desc, &s.nest, s.kind, &s.clauses);
            any_async |= s
                .clauses
                .iter()
                .any(|c| matches!(c, openacc_sim::Clause::Async(_)));
        }
        if any_async {
            rt.wait_async();
        }
    }
    let step_compute = rt.elapsed() - t0;

    // Communication: interior ranks exchange with two neighbours; both
    // directions proceed concurrently on the bidirectional links, so one
    // leg bounds the step.
    let comm_raw = if n_gpus == 1 {
        0.0
    } else {
        ghost_leg_time(cluster, w, case, packing)
    };
    // Overlap: the boundary shell (2·halo rows of the slab) must still be
    // computed before its exchange; the remaining interior hides the comm.
    let exposed = match mode {
        CommMode::Blocking => comm_raw,
        CommMode::Overlapped => {
            let boundary_frac = (2.0 * STENCIL_HALF as f64 / local.nz as f64).min(1.0);
            let interior = step_compute * (1.0 - boundary_frac);
            (comm_raw - interior).max(0.0)
        }
    };
    let step = step_compute + exposed;
    let total = step * w.steps as f64
        // snapshot gathers to host stay on each card's own PCIe link.
        + (w.steps / w.snap_period.max(1)) as f64
            * transfer_time(
                &cluster.device(),
                local.alloc_points(STENCIL_HALF) * 4,
                HostAlloc::Pinned,
                TransferKind::Contiguous,
            );
    Ok(MultiGpuTiming {
        n_gpus,
        total_s: total,
        step_compute_s: step_compute,
        step_comm_exposed_s: exposed,
        step_comm_raw_s: comm_raw,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use openacc_sim::data::DataError;
    use openacc_sim::PgiVersion;
    use seismic_model::footprint::Formulation;

    const PGI: Compiler = Compiler::Pgi(PgiVersion::V14_6);

    fn case3() -> SeismicCase {
        SeismicCase {
            formulation: Formulation::Acoustic,
            dims: Dims::Three,
        }
    }

    fn w3(n: usize) -> Workload {
        Workload {
            nx: n,
            ny: n,
            nz: n,
            steps: 100,
            snap_period: 10,
            n_receivers: 100,
        }
    }

    fn run(n_gpus: usize, n: usize, mode: CommMode) -> MultiGpuTiming {
        modeling_time_multi(
            &case3(),
            &OptimizationConfig::default(),
            PGI,
            Cluster::CrayXc30,
            &w3(n),
            n_gpus,
            GhostPacking::DevicePacked,
            mode,
        )
        .expect("fits")
    }

    /// More GPUs → faster, but sub-linearly (comm overhead).
    #[test]
    fn scales_sublinearly() {
        let t1 = run(1, 256, CommMode::Blocking);
        let t2 = run(2, 256, CommMode::Blocking);
        let t4 = run(4, 256, CommMode::Blocking);
        assert!(t2.total_s < t1.total_s);
        assert!(t4.total_s < t2.total_s);
        let s4 = t1.total_s / t4.total_s;
        assert!(s4 > 2.0 && s4 < 4.0, "4-GPU speedup {s4}");
        assert!(t4.efficiency_vs(&t1) < 1.0);
        assert_eq!(t1.step_comm_raw_s, 0.0, "single GPU has no exchange");
    }

    /// Overlap never loses, and fully hides communication once the
    /// interior is big enough.
    #[test]
    fn overlap_hides_comm_on_large_grids() {
        for n in [128usize, 256, 384] {
            let b = run(4, n, CommMode::Blocking);
            let o = run(4, n, CommMode::Overlapped);
            assert!(o.total_s <= b.total_s, "n={n}");
            assert!(o.step_comm_exposed_s <= b.step_comm_exposed_s);
        }
        // "especially when larger grid dimensions are used": the hidden
        // fraction grows with n (compute n³/N vs comm n²).
        let frac = |n: usize| {
            let o = run(4, n, CommMode::Overlapped);
            if o.step_comm_raw_s == 0.0 {
                return 1.0;
            }
            1.0 - o.step_comm_exposed_s / o.step_comm_raw_s
        };
        assert!(frac(384) >= frac(128), "{} vs {}", frac(384), frac(128));
        let big = run(4, 384, CommMode::Overlapped);
        assert_eq!(big.step_comm_exposed_s, 0.0, "fully hidden at 384^3");
    }

    /// Device-side ghost packing beats strided transfers — the paper's
    /// transposition workaround.
    #[test]
    fn packed_ghosts_beat_strided() {
        let cfg = OptimizationConfig::default();
        let s = modeling_time_multi(
            &case3(),
            &cfg,
            PGI,
            Cluster::CrayXc30,
            &w3(256),
            4,
            GhostPacking::Strided,
            CommMode::Blocking,
        )
        .unwrap();
        let p = modeling_time_multi(
            &case3(),
            &cfg,
            PGI,
            Cluster::CrayXc30,
            &w3(256),
            4,
            GhostPacking::DevicePacked,
            CommMode::Blocking,
        )
        .unwrap();
        assert!(p.step_comm_raw_s < s.step_comm_raw_s);
        assert!(p.total_s <= s.total_s);
    }

    /// Decomposition unlocks cases that OOM a single card: elastic 3D at
    /// the table workload fits no single M2090 but fits four.
    #[test]
    fn decomposition_relieves_memory_pressure() {
        let case = SeismicCase {
            formulation: Formulation::Elastic,
            dims: Dims::Three,
        };
        let w = Workload {
            nx: 400,
            ny: 400,
            nz: 400,
            steps: 10,
            snap_period: 5,
            n_receivers: 50,
        };
        let cfg = OptimizationConfig::default();
        let one = modeling_time_multi(
            &case,
            &cfg,
            PGI,
            Cluster::Ibm,
            &w,
            1,
            GhostPacking::DevicePacked,
            CommMode::Blocking,
        );
        assert!(matches!(one, Err(RtmError::Data(DataError::Oom(_)))));
        let four = modeling_time_multi(
            &case,
            &cfg,
            PGI,
            Cluster::Ibm,
            &w,
            4,
            GhostPacking::DevicePacked,
            CommMode::Blocking,
        );
        assert!(four.is_ok(), "4 Fermis hold the decomposed slabs");
    }

    /// The halo timeline replays exactly what the pricing model charged:
    /// one serial span per step per rank, raw-duration long, carrying the
    /// [`ghost_bytes`] payload, and the registry totals line up.
    #[test]
    fn halo_timeline_matches_pricing() {
        let case = case3();
        let w = w3(128);
        let t = run(4, 128, CommMode::Blocking);
        let obs = acc_obs::ObsSession::new();
        emit_halo_timeline(&obs, &case, &w, &t);
        obs.tracer.validate_tracks().expect("serial rank tracks");
        assert_eq!(obs.tracer.tracks().len(), 4, "one track per rank");
        let spans = obs.tracer.spans();
        assert_eq!(spans.len(), 4 * w.steps);
        let b = ghost_bytes(&case, &w);
        for s in &spans {
            assert_eq!(s.bytes, b);
            assert!((s.dur_s - t.step_comm_raw_s).abs() < 1e-12);
        }
        // Edge ranks name one neighbour, interior ranks two.
        let args_of = |rank: u32| {
            spans
                .iter()
                .find(|s| s.track == acc_obs::Track::MpiRank(rank))
                .unwrap()
                .args
                .clone()
        };
        assert!(args_of(0).iter().any(|(k, _)| k == "neighbor_hi"));
        assert!(!args_of(0).iter().any(|(k, _)| k == "neighbor_lo"));
        assert!(args_of(1).iter().any(|(k, _)| k == "neighbor_lo"));
        assert!(args_of(1).iter().any(|(k, _)| k == "neighbor_hi"));
        assert_eq!(
            obs.registry.counter("halo_bytes"),
            b * 4 * w.steps as u64,
            "registry totals the priced traffic"
        );
        assert_eq!(obs.registry.counter("halo_exchanges"), 4 * w.steps as u64);
        // One GPU → no exchange spans at all.
        let single = acc_obs::ObsSession::new();
        emit_halo_timeline(&single, &case, &w, &run(1, 128, CommMode::Blocking));
        assert!(single.tracer.is_empty());
    }

    #[test]
    fn zero_gpus_is_a_typed_error() {
        let r = modeling_time_multi(
            &case3(),
            &OptimizationConfig::default(),
            PGI,
            Cluster::CrayXc30,
            &w3(64),
            0,
            GhostPacking::DevicePacked,
            CommMode::Blocking,
        );
        assert_eq!(
            r,
            Err(RtmError::Config(crate::error::ConfigError::ZeroGpus))
        );
    }
}
