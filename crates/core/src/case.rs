//! The twelve seismic cases, evaluation clusters, and optimization knobs.

use accel_sim::DeviceSpec;
use mpi_sim::{CpuSpec, Interconnect};
use seismic_model::footprint::{Dims, Formulation};
use serde::{Deserialize, Serialize};

/// One of the paper's 12 seismic cases: {iso, acoustic, elastic} × {2D, 3D}
/// × {modeling, RTM} (the modeling/RTM split lives in the drivers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SeismicCase {
    /// Earth-model formulation.
    pub formulation: Formulation,
    /// Dimensionality.
    pub dims: Dims,
}

impl SeismicCase {
    /// All six propagator cases in the paper's table order.
    pub fn all() -> [SeismicCase; 6] {
        use Dims::*;
        use Formulation::*;
        [
            SeismicCase {
                formulation: Isotropic,
                dims: Two,
            },
            SeismicCase {
                formulation: Acoustic,
                dims: Two,
            },
            SeismicCase {
                formulation: Elastic,
                dims: Two,
            },
            SeismicCase {
                formulation: Isotropic,
                dims: Three,
            },
            SeismicCase {
                formulation: Acoustic,
                dims: Three,
            },
            SeismicCase {
                formulation: Elastic,
                dims: Three,
            },
        ]
    }

    /// Table-row label, matching the paper's (sic) spellings normalised.
    pub fn label(&self) -> String {
        format!(
            "{} {}",
            self.formulation.label(),
            match self.dims {
                Dims::Two => "2D",
                Dims::Three => "3D",
            }
        )
    }
}

/// The two evaluation platforms of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cluster {
    /// CRAY XC30: K40 GPUs, 10-core Ivy Bridge sockets, Aries fabric.
    CrayXc30,
    /// IBM cluster: M2090 GPUs, dual quad-core Westmere nodes, older fabric.
    Ibm,
}

impl Cluster {
    /// The GPU card installed in this cluster.
    pub fn device(&self) -> DeviceSpec {
        match self {
            Cluster::CrayXc30 => DeviceSpec::k40(),
            Cluster::Ibm => DeviceSpec::m2090(),
        }
    }

    /// The full-socket CPU baseline of this cluster.
    pub fn cpu(&self) -> CpuSpec {
        match self {
            Cluster::CrayXc30 => CpuSpec::ivy_bridge_e5_2680v2(),
            Cluster::Ibm => CpuSpec::westmere_e5640_pair(),
        }
    }

    /// The interconnect used by the MPI baseline.
    pub fn interconnect(&self) -> Interconnect {
        match self {
            Cluster::CrayXc30 => Interconnect::aries(),
            Cluster::Ibm => Interconnect::ibm_cluster(),
        }
    }

    /// Ranks in the full-socket baseline (10 on CRAY, 8 on IBM — Table 1).
    pub fn baseline_ranks(&self) -> usize {
        match self {
            Cluster::CrayXc30 => 10,
            Cluster::Ibm => 8,
        }
    }

    /// Display name.
    pub fn label(&self) -> &'static str {
        match self {
            Cluster::CrayXc30 => "CRAY XC30",
            Cluster::Ibm => "IBM",
        }
    }
}

/// Where the imaging condition runs (Section 5.1, step 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ImagePlacement {
    /// Cross-correlation computed on the GPU; only the final image returns.
    Gpu,
    /// Wavefields updated to the host every snapshot; image built on CPU.
    Cpu,
}

/// The optimization knobs the paper's Section 5 studies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptimizationConfig {
    /// Isotropic PML kernel restructuring (Figures 6/7).
    pub iso_pml: seismic_prop::IsoPmlVariant,
    /// Acoustic 3D pressure kernel form (Figure 12).
    pub fission: seismic_prop::FissionVariant,
    /// Acoustic 2D backward-kernel memory strategy (Figure 13).
    pub transpose: seismic_prop::TransposeVariant,
    /// Inline the receiver-injection routine into one kernel instead of one
    /// launch per receiver (Section 6.2; CRAY could inline, PGI could not).
    pub inline_receiver_injection: bool,
    /// Imaging-condition placement (Figures 14/15).
    pub image_placement: ImagePlacement,
    /// Issue the per-step kernels on async streams (Figure 11).
    pub async_streams: bool,
    /// `maxregcount` compile flag (Figure 10; the paper's best is 64).
    pub maxregcount: Option<u32>,
}

impl Default for OptimizationConfig {
    /// The paper's best-found configuration.
    fn default() -> Self {
        Self {
            iso_pml: seismic_prop::IsoPmlVariant::RestructuredIndices,
            fission: seismic_prop::FissionVariant::Fissioned,
            transpose: seismic_prop::TransposeVariant::Transposed,
            inline_receiver_injection: true,
            image_placement: ImagePlacement::Gpu,
            async_streams: true,
            maxregcount: Some(64),
        }
    }
}

impl OptimizationConfig {
    /// The naive, un-optimized port (the "original code" baselines of the
    /// figures).
    pub fn naive() -> Self {
        Self {
            iso_pml: seismic_prop::IsoPmlVariant::OriginalIfs,
            fission: seismic_prop::FissionVariant::Fused,
            transpose: seismic_prop::TransposeVariant::Direct,
            inline_receiver_injection: false,
            image_placement: ImagePlacement::Cpu,
            async_streams: false,
            maxregcount: None,
        }
    }
}

/// Workload geometry for one run: interior grid sizes and step counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    /// Interior x size.
    pub nx: usize,
    /// Interior y size (1 in 2D).
    pub ny: usize,
    /// Interior z size.
    pub nz: usize,
    /// Forward time steps.
    pub steps: usize,
    /// Snapshot save period in steps.
    pub snap_period: usize,
    /// Number of receivers.
    pub n_receivers: usize,
}

impl Workload {
    /// Interior grid points.
    pub fn points(&self) -> u64 {
        self.nx as u64 * self.ny as u64 * self.nz as u64
    }

    /// Allocated grid points, halo included.
    pub fn alloc_points(&self, halo: usize) -> u64 {
        let h = 2 * halo as u64;
        let ny = if self.ny == 1 { 1 } else { self.ny as u64 + h };
        (self.nx as u64 + h) * ny * (self.nz as u64 + h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_cases_with_unique_labels() {
        let cases = SeismicCase::all();
        let labels: std::collections::HashSet<_> = cases.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 6);
        assert_eq!(cases[0].label(), "ISOTROPIC 2D");
        assert_eq!(cases[5].label(), "ELASTIC 3D");
    }

    #[test]
    fn clusters_pair_cards_and_sockets_as_in_table1() {
        assert_eq!(Cluster::CrayXc30.device().name, "Tesla K40");
        assert_eq!(Cluster::Ibm.device().name, "Tesla M2090");
        assert_eq!(Cluster::CrayXc30.baseline_ranks(), 10);
        assert_eq!(Cluster::Ibm.baseline_ranks(), 8);
        assert!(Cluster::CrayXc30.interconnect().latency_s < Cluster::Ibm.interconnect().latency_s);
    }

    #[test]
    fn default_config_is_the_papers_best() {
        let c = OptimizationConfig::default();
        assert_eq!(c.maxregcount, Some(64));
        assert!(c.inline_receiver_injection);
        assert_eq!(c.image_placement, ImagePlacement::Gpu);
        let n = OptimizationConfig::naive();
        assert_eq!(n.maxregcount, None);
        assert_ne!(c, n);
    }

    #[test]
    fn workload_point_counts() {
        let w = Workload {
            nx: 100,
            ny: 1,
            nz: 50,
            steps: 10,
            snap_period: 2,
            n_receivers: 25,
        };
        assert_eq!(w.points(), 5000);
        assert_eq!(w.alloc_points(4), 108 * 58);
        let w3 = Workload { ny: 100, ..w };
        assert_eq!(w3.alloc_points(4), 108 * 108 * 58);
    }
}
