//! The steady-state time loops allocate nothing after warm-up.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after the
//! drivers' buffers exist (state, seismogram, preallocated snapshot
//! slots), a full per-step iteration — kernel step, source injection,
//! receiver recording, snapshot write — must perform zero heap
//! allocations. This is the arena/`copy_from` acceptance criterion of the
//! host execution engine made mechanical: any `clone()` or `Vec` growth
//! sneaking back into the hot loop fails this test immediately.
//!
//! The whole check lives in ONE test fn: the counter is process-global, so
//! a sibling test allocating concurrently would pollute the window.
//!
//! Counting is opt-in per thread (the test thread flips `COUNT_ME`): the
//! libtest harness's main thread lazily allocates its mpsc receiver
//! context (48 B + 96 B) the first time its `recv` blocks, and on a
//! loaded single-core machine that one-time init lands mid-window often
//! enough to make an all-threads counter flaky. The driver code under
//! test — kernel launches included — runs on the calling thread, so the
//! per-thread scope loses nothing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);
// Window-relative diagnostic breadcrumbs: sizes of the first few
// allocations after `WINDOW_BASE`, so a failure names its culprit instead
// of just a count.
static WINDOW_BASE: AtomicUsize = AtomicUsize::new(usize::MAX);
static SIZES: [AtomicUsize; 8] = [const { AtomicUsize::new(0) }; 8];

thread_local! {
    // Const-init + no Drop: reading this inside the allocator allocates
    // nothing and registers no TLS destructor.
    static COUNT_ME: Cell<bool> = const { Cell::new(false) };
}

fn count(size: usize) {
    if !COUNT_ME.try_with(Cell::get).unwrap_or(false) {
        return;
    }
    let i = ALLOCS.fetch_add(1, Ordering::Relaxed);
    let base = WINDOW_BASE.load(Ordering::Relaxed);
    if i >= base {
        if let Some(s) = SIZES.get(i - base) {
            s.store(size, Ordering::Relaxed);
        }
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        count(l.size());
        unsafe { System.alloc(l) }
    }

    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        unsafe { System.dealloc(p, l) }
    }

    unsafe fn realloc(&self, p: *mut u8, l: Layout, new_size: usize) -> *mut u8 {
        count(new_size);
        unsafe { System.realloc(p, l, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use rtm_core::modeling::{Medium2, State2};
use rtm_core::OptimizationConfig;
use seismic_grid::cfl::stable_dt;
use seismic_grid::Field2;
use seismic_model::builder::{acoustic2_layered, iso2_constant, standard_layers};
use seismic_model::{extent2, Geometry};
use seismic_pml::{CpmlAxis, DampProfile};
use seismic_source::{Acquisition2, Seismogram, Wavelet};

fn media(n: usize) -> Vec<(&'static str, Medium2)> {
    let e = extent2(n, n);
    let h = 10.0;
    let d = DampProfile::new(n, e.halo, 10, 2000.0, h, 1e-4);
    let cp = CpmlAxis::new(
        n,
        e.halo,
        10,
        stable_dt(8, 2, 3200.0, h, 0.6),
        3200.0,
        h,
        1e-4,
    );
    vec![
        (
            "iso",
            Medium2::Iso {
                model: iso2_constant(
                    e,
                    2000.0,
                    Geometry::uniform(h, stable_dt(8, 2, 2000.0, h, 0.8)),
                ),
                damp_x: d.clone(),
                damp_z: d,
            },
        ),
        (
            "acoustic",
            Medium2::Acoustic {
                model: acoustic2_layered(
                    e,
                    &standard_layers(n),
                    Geometry::uniform(h, stable_dt(8, 2, 3200.0, h, 0.6)),
                ),
                cpml: [cp.clone(), cp],
            },
        ),
    ]
}

#[test]
fn modeling_step_loop_is_allocation_free_after_warmup() {
    COUNT_ME.with(|c| c.set(true));
    let n = 48;
    let gangs = 3;
    let cfg = OptimizationConfig::default();
    let w = Wavelet::ricker(22.0);
    for (name, medium) in media(n) {
        let acq = Acquisition2::surface_line(n, n / 2, n / 2, 2, 6);
        let dt = medium.dt();
        let mut state = State2::new(&medium);
        let mut seismogram = Seismogram::zeros(acq.n_receivers(), 64);
        let mut snap = Field2::zeros(medium.extent());

        // Warm-up: the pool's workers spawn lazily on the first launch, and
        // lazy one-time init anywhere below must happen outside the window.
        for t in 0..4usize {
            state.step(&medium, &cfg, gangs);
            state.inject(&medium, acq.src_ix, acq.src_iz, w.sample(t as f32 * dt));
            for (r, rcv) in acq.receivers.iter().enumerate() {
                seismogram.record(r, t, state.sample(rcv.ix, rcv.iz));
            }
            state.write_wavefield_into(&mut snap);
        }

        // Measured window: the exact per-step body of `run_modeling`.
        let before = ALLOCS.load(Ordering::SeqCst);
        WINDOW_BASE.store(before, Ordering::SeqCst);
        for t in 4..24usize {
            state.step(&medium, &cfg, gangs);
            state.inject(&medium, acq.src_ix, acq.src_iz, w.sample(t as f32 * dt));
            for (r, rcv) in acq.receivers.iter().enumerate() {
                seismogram.record(r, t, state.sample(rcv.ix, rcv.iz));
            }
            state.write_wavefield_into(&mut snap);
        }
        let after = ALLOCS.load(Ordering::SeqCst);
        WINDOW_BASE.store(usize::MAX, Ordering::SeqCst);
        let recent: Vec<usize> = SIZES.iter().map(|s| s.load(Ordering::Relaxed)).collect();
        assert_eq!(
            after - before,
            0,
            "{name}: steady-state step loop allocated {} times (recent sizes ring: {recent:?})",
            after - before
        );

        // Checkpoint-slot reuse: storing/restoring through `copy_from`
        // allocates nothing once the slot exists.
        let mut slot = State2::new(&medium);
        slot.copy_from(&state);
        let before = ALLOCS.load(Ordering::SeqCst);
        for _ in 0..16 {
            slot.copy_from(&state);
        }
        let after = ALLOCS.load(Ordering::SeqCst);
        assert_eq!(after - before, 0, "{name}: copy_from allocated");
    }
}
