//! Driver-level parity of the persistent gang pool.
//!
//! The tentpole invariant of the host execution engine: running the real
//! 2D drivers through the pooled engine produces *bit-for-bit* the output
//! of sequential execution (gangs = 1) and of the legacy per-launch
//! `thread::scope` engine, for every formulation and a spread of gang
//! counts including more gangs than rows would warrant.

use openacc_sim::exec::{engine, set_engine, Engine};
use rtm_core::modeling::{run_modeling, Medium2};
use rtm_core::OptimizationConfig;
use seismic_grid::cfl::stable_dt;
use seismic_model::builder::{acoustic2_layered, elastic2_layered, iso2_constant, standard_layers};
use seismic_model::{extent2, Geometry};
use seismic_pml::{CpmlAxis, DampProfile};
use seismic_source::{Acquisition2, Wavelet};

fn media(n: usize) -> Vec<(&'static str, Medium2)> {
    let e = extent2(n, n);
    let h = 10.0;
    let vmax = 3200.0;
    let layers = standard_layers(n);
    let d = DampProfile::new(n, e.halo, 10, vmax, h, 1e-4);
    let cp = |safety: f32| {
        CpmlAxis::new(
            n,
            e.halo,
            10,
            stable_dt(8, 2, vmax, h, safety),
            vmax,
            h,
            1e-4,
        )
    };
    vec![
        (
            "iso",
            Medium2::Iso {
                model: iso2_constant(
                    e,
                    2000.0,
                    Geometry::uniform(h, stable_dt(8, 2, 2000.0, h, 0.8)),
                ),
                damp_x: d.clone(),
                damp_z: d,
            },
        ),
        (
            "acoustic",
            Medium2::Acoustic {
                model: acoustic2_layered(
                    e,
                    &layers,
                    Geometry::uniform(h, stable_dt(8, 2, vmax, h, 0.6)),
                ),
                cpml: [cp(0.6), cp(0.6)],
            },
        ),
        (
            "elastic",
            Medium2::Elastic {
                model: elastic2_layered(
                    e,
                    &layers,
                    Geometry::uniform(h, stable_dt(8, 2, vmax, h, 0.5)),
                ),
                cpml: [cp(0.5), cp(0.5)],
            },
        ),
    ]
}

/// One test fn (not several) because the engine switch is process-global:
/// flipping it concurrently with another parity case would race.
#[test]
fn pooled_engine_is_bitwise_identical_across_formulations_and_gangs() {
    let n = 48;
    let steps = 30;
    let cfg = OptimizationConfig::default();
    let w = Wavelet::ricker(22.0);
    let prev = engine();
    for (name, medium) in media(n) {
        let acq = Acquisition2::surface_line(n, n / 2, n / 2, 2, 6);

        // Sequential reference: one gang, engine irrelevant by construction.
        set_engine(Engine::Pooled);
        let seq = run_modeling(&medium, &acq, &w, &cfg, steps, 6, 1);

        for gangs in [1usize, 2, 3, 7, 16] {
            set_engine(Engine::Pooled);
            let pooled = run_modeling(&medium, &acq, &w, &cfg, steps, 6, gangs);
            assert_eq!(
                seq.seismogram, pooled.seismogram,
                "{name}: pooled seismogram, gangs = {gangs}"
            );
            assert_eq!(
                seq.snapshots, pooled.snapshots,
                "{name}: pooled snapshots, gangs = {gangs}"
            );

            set_engine(Engine::Scoped);
            let scoped = run_modeling(&medium, &acq, &w, &cfg, steps, 6, gangs);
            assert_eq!(
                pooled.seismogram, scoped.seismogram,
                "{name}: scoped vs pooled seismogram, gangs = {gangs}"
            );
            assert_eq!(
                pooled.snapshots, scoped.snapshots,
                "{name}: scoped vs pooled snapshots, gangs = {gangs}"
            );
        }
    }
    set_engine(prev);
}
