//! Apply a seeded random-boundary perturbation to concrete earth models.
//!
//! The perturbation *law* lives in [`seismic_pml::random`]; this module maps
//! it onto each model type's material fields. Invariants, shared by every
//! applier:
//!
//! * only **interior** cells are touched (halo cells never enter a material
//!   read of the kernels — properties are sampled at the update point, which
//!   is always interior),
//! * velocities only **decrease** (factors in `[1 − amp, 1]`), so the
//!   unperturbed model's CFL-stable `dt` remains stable,
//! * density is left alone — scattering comes from the velocity contrast,
//!   and keeping ρ fixed keeps the staggered-grid buoyancy terms identical
//!   in the interior,
//! * elastic models scale the Lamé parameters by `f²` (both P and S
//!   velocities scale by `f` at fixed ρ, since `v² = modulus/ρ`), and keep
//!   `vp_max` — it is only used for CFL/absorber design and the true
//!   maximum is unchanged by a slowdown,
//! * VTI keeps ε and δ: the anisotropy *ratios* are untouched, only the
//!   reference velocity scatters.

use crate::{AcousticModel2, AcousticModel3, ElasticModel2, ElasticModel3};
use crate::{IsoModel2, IsoModel3, VtiModel2};
use seismic_pml::RandomBoundarySpec;

/// Scale every interior cell of a 2-D field by the spec's factor.
fn scale2(f: &mut seismic_grid::Field2, spec: &RandomBoundarySpec, pow2: bool) {
    let e = f.extent();
    for iz in 0..e.nz {
        for ix in 0..e.nx {
            let s = spec.factor2(e.nx, e.nz, ix, iz);
            if s != 1.0 {
                let s = if pow2 { s * s } else { s };
                f.set(ix, iz, f.get(ix, iz) * s);
            }
        }
    }
}

/// Scale every interior cell of a 3-D field by the spec's factor.
fn scale3(f: &mut seismic_grid::Field3, spec: &RandomBoundarySpec, pow2: bool) {
    let e = f.extent();
    for iz in 0..e.nz {
        for iy in 0..e.ny {
            for ix in 0..e.nx {
                let s = spec.factor3([e.nx, e.ny, e.nz], ix, iy, iz);
                if s != 1.0 {
                    let s = if pow2 { s * s } else { s };
                    f.set(ix, iy, iz, f.get(ix, iy, iz) * s);
                }
            }
        }
    }
}

/// Isotropic 2-D model with a randomized velocity halo.
pub fn randomize_iso2(m: &IsoModel2, spec: &RandomBoundarySpec) -> IsoModel2 {
    let mut vp = m.vp.clone();
    scale2(&mut vp, spec, false);
    IsoModel2 { vp, geom: m.geom }
}

/// Acoustic 2-D model with a randomized velocity halo (ρ untouched).
pub fn randomize_acoustic2(m: &AcousticModel2, spec: &RandomBoundarySpec) -> AcousticModel2 {
    let mut vp = m.vp.clone();
    scale2(&mut vp, spec, false);
    AcousticModel2 {
        vp,
        rho: m.rho.clone(),
        geom: m.geom,
    }
}

/// Elastic 2-D model with randomized P and S velocities: λ and μ scale by
/// `f²` at fixed ρ.
pub fn randomize_elastic2(m: &ElasticModel2, spec: &RandomBoundarySpec) -> ElasticModel2 {
    let mut lam = m.lam.clone();
    let mut mu = m.mu.clone();
    scale2(&mut lam, spec, true);
    scale2(&mut mu, spec, true);
    ElasticModel2 {
        lam,
        mu,
        rho: m.rho.clone(),
        geom: m.geom,
        vp_max: m.vp_max,
    }
}

/// VTI 2-D model with a randomized reference velocity (ε, δ untouched).
pub fn randomize_vti2(m: &VtiModel2, spec: &RandomBoundarySpec) -> VtiModel2 {
    let mut vp = m.vp.clone();
    scale2(&mut vp, spec, false);
    VtiModel2 {
        vp,
        epsilon: m.epsilon.clone(),
        delta: m.delta.clone(),
        geom: m.geom,
    }
}

/// Isotropic 3-D model with a randomized velocity halo.
pub fn randomize_iso3(m: &IsoModel3, spec: &RandomBoundarySpec) -> IsoModel3 {
    let mut vp = m.vp.clone();
    scale3(&mut vp, spec, false);
    IsoModel3 { vp, geom: m.geom }
}

/// Acoustic 3-D model with a randomized velocity halo (ρ untouched).
pub fn randomize_acoustic3(m: &AcousticModel3, spec: &RandomBoundarySpec) -> AcousticModel3 {
    let mut vp = m.vp.clone();
    scale3(&mut vp, spec, false);
    AcousticModel3 {
        vp,
        rho: m.rho.clone(),
        geom: m.geom,
    }
}

/// Elastic 3-D model with randomized P and S velocities (λ, μ × f²).
pub fn randomize_elastic3(m: &ElasticModel3, spec: &RandomBoundarySpec) -> ElasticModel3 {
    let mut lam = m.lam.clone();
    let mut mu = m.mu.clone();
    scale3(&mut lam, spec, true);
    scale3(&mut mu, spec, true);
    ElasticModel3 {
        lam,
        mu,
        rho: m.rho.clone(),
        geom: m.geom,
        vp_max: m.vp_max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{extent2, extent3, Geometry};
    use seismic_grid::{Extent2, Extent3, Field2, Field3};

    fn fill2(e: Extent2, v: f32) -> Field2 {
        Field2::filled(e, v)
    }

    fn fill3(e: Extent3, v: f32) -> Field3 {
        Field3::filled(e, v)
    }

    fn spec() -> RandomBoundarySpec {
        RandomBoundarySpec::new(6, 77)
    }

    #[test]
    fn iso2_interior_untouched_boundary_slowed() {
        let e = extent2(40, 40);
        let m = IsoModel2 {
            vp: fill2(e, 3000.0),
            geom: Geometry::uniform(10.0, 1e-3),
        };
        let r = randomize_iso2(&m, &spec());
        assert_eq!(r.vp.get(20, 20), 3000.0);
        let mut changed = 0;
        for ix in 0..40 {
            let v = r.vp.get(ix, 0);
            assert!(v <= 3000.0 && v >= 3000.0 * (1.0 - spec().amp));
            changed += (v != 3000.0) as usize;
        }
        assert!(changed > 20, "edge row barely perturbed: {changed}/40");
    }

    #[test]
    fn same_seed_rebuilds_bitwise_identical_models() {
        let e = extent2(32, 32);
        let m = AcousticModel2 {
            vp: fill2(e, 2500.0),
            rho: fill2(e, 1000.0),
            geom: Geometry::uniform(10.0, 1e-3),
        };
        let a = randomize_acoustic2(&m, &spec());
        let b = randomize_acoustic2(&m, &spec());
        assert_eq!(a.vp.as_slice(), b.vp.as_slice());
        let c = randomize_acoustic2(&m, &RandomBoundarySpec::new(6, 78));
        assert_ne!(a.vp.as_slice(), c.vp.as_slice());
        // Density is never perturbed.
        assert_eq!(a.rho.as_slice(), m.rho.as_slice());
    }

    #[test]
    fn elastic_moduli_scale_as_velocity_squared() {
        let e = extent2(32, 32);
        let m = ElasticModel2::from_velocities(
            &fill2(e, 3000.0),
            &fill2(e, 1700.0),
            &fill2(e, 2200.0),
            Geometry::uniform(10.0, 1e-3),
        );
        let s = spec();
        let r = randomize_elastic2(&m, &s);
        // At a corner cell, the same factor applies to lam and mu as f².
        let f = s.factor2(32, 32, 0, 0);
        assert!(f < 1.0);
        let rel = |a: f32, b: f32| (a - b).abs() / b.abs();
        assert!(rel(r.lam.get(0, 0), m.lam.get(0, 0) * f * f) < 1e-6);
        assert!(rel(r.mu.get(0, 0), m.mu.get(0, 0) * f * f) < 1e-6);
        assert_eq!(r.rho.as_slice(), m.rho.as_slice());
        assert_eq!(r.vp_max, m.vp_max);
        // Interior untouched.
        assert_eq!(r.lam.get(16, 16), m.lam.get(16, 16));
    }

    #[test]
    fn three_d_models_randomize_all_six_faces() {
        let e = extent3(24, 24, 24);
        let m = IsoModel3 {
            vp: fill3(e, 3000.0),
            geom: Geometry::uniform(10.0, 1e-3),
        };
        let r = randomize_iso3(&m, &RandomBoundarySpec::new(4, 5));
        assert_eq!(r.vp.get(12, 12, 12), 3000.0);
        // Each face center must see some perturbation.
        for (ix, iy, iz) in [
            (0, 12, 12),
            (23, 12, 12),
            (12, 0, 12),
            (12, 23, 12),
            (12, 12, 0),
            (12, 12, 23),
        ] {
            // The exact cell may hash near u≈0; scan the face row instead.
            let mut any = false;
            for d in 0..24 {
                let v = match () {
                    _ if ix == 0 || ix == 23 => r.vp.get(ix, d, iz),
                    _ if iy == 0 || iy == 23 => r.vp.get(d, iy, iz),
                    _ => r.vp.get(d, iy, iz),
                };
                any |= v != 3000.0;
            }
            assert!(any, "face through ({ix},{iy},{iz}) unperturbed");
        }
    }

    #[test]
    fn vti_keeps_anisotropy_ratios() {
        let m = VtiModel2::constant(
            extent2(32, 32),
            3000.0,
            0.2,
            0.1,
            Geometry::uniform(10.0, 1e-3),
        );
        let r = randomize_vti2(&m, &spec());
        assert_eq!(r.epsilon.as_slice(), m.epsilon.as_slice());
        assert_eq!(r.delta.as_slice(), m.delta.as_slice());
        assert!(r.vp.get(0, 0) <= m.vp.get(0, 0));
    }
}
