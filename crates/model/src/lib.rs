//! # seismic-model
//!
//! Earth-model containers and synthetic model builders.
//!
//! The paper evaluates three formulations of the earth model (Section 3.3):
//!
//! * **Isotropic (constant density)** — wave propagation defined by the
//!   pressure velocity `vp` alone ([`IsoModel2`]/[`IsoModel3`]),
//! * **Acoustic (variable density)** — `vp` and density `ρ`
//!   ([`AcousticModel2`]/[`AcousticModel3`]),
//! * **Elastic (isotropic solid)** — `vp`, shear velocity `vs`, and `ρ`,
//!   converted to Lamé parameters `λ`, `μ`
//!   ([`ElasticModel2`]/[`ElasticModel3`]).
//!
//! The original work ran on proprietary TOTAL velocity models; here the
//! [`builder`] module provides synthetic equivalents (constant, layered,
//! Gaussian lens, wedge, random media) that exercise the same code paths and
//! produce recognisable reflectors for the RTM imaging tests.
//!
//! [`footprint`] estimates GPU global-memory requirements for each seismic
//! case — the mechanism behind the paper's "elastic variables could not fit
//! in GPU memory when the Fermi card was used" (the `X` cells of Tables 3/4).

pub mod builder;
pub mod footprint;
pub mod random_boundary;

use seismic_grid::{Extent2, Extent3, Field2, Field3};
use serde::{Deserialize, Serialize};

/// Physical grid geometry shared by all models: spacings in meters and the
/// time step in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Geometry {
    /// Grid spacing along x (m).
    pub dx: f32,
    /// Grid spacing along y (m); unused in 2D.
    pub dy: f32,
    /// Grid spacing along z (m).
    pub dz: f32,
    /// Time step (s).
    pub dt: f32,
}

impl Geometry {
    /// Uniform spacing `h` and time step `dt`.
    pub fn uniform(h: f32, dt: f32) -> Self {
        Self {
            dx: h,
            dy: h,
            dz: h,
            dt,
        }
    }

    /// Smallest spatial spacing (CFL denominator).
    pub fn h_min(&self) -> f32 {
        self.dx.min(self.dy).min(self.dz)
    }
}

/// Isotropic constant-density model in 2D: `vp` only.
#[derive(Debug, Clone)]
pub struct IsoModel2 {
    /// Pressure velocity (m/s).
    pub vp: Field2,
    /// Grid geometry.
    pub geom: Geometry,
}

/// Isotropic constant-density model in 3D.
#[derive(Debug, Clone)]
pub struct IsoModel3 {
    /// Pressure velocity (m/s).
    pub vp: Field3,
    /// Grid geometry.
    pub geom: Geometry,
}

/// Acoustic variable-density model in 2D: `vp` and `ρ`.
#[derive(Debug, Clone)]
pub struct AcousticModel2 {
    /// Pressure velocity (m/s).
    pub vp: Field2,
    /// Density (kg/m³).
    pub rho: Field2,
    /// Grid geometry.
    pub geom: Geometry,
}

/// Acoustic variable-density model in 3D.
#[derive(Debug, Clone)]
pub struct AcousticModel3 {
    /// Pressure velocity (m/s).
    pub vp: Field3,
    /// Density (kg/m³).
    pub rho: Field3,
    /// Grid geometry.
    pub geom: Geometry,
}

/// Elastic isotropic model in 2D: Lamé parameters and density.
///
/// Constructed from (`vp`, `vs`, `ρ`) via `μ = ρ·vs²`, `λ = ρ·vp² − 2μ`.
#[derive(Debug, Clone)]
pub struct ElasticModel2 {
    /// First Lamé parameter λ (Pa).
    pub lam: Field2,
    /// Shear modulus μ (Pa).
    pub mu: Field2,
    /// Density (kg/m³).
    pub rho: Field2,
    /// Grid geometry.
    pub geom: Geometry,
    /// Maximum compressional velocity, retained for CFL checks (m/s).
    pub vp_max: f32,
}

/// Elastic isotropic model in 3D.
#[derive(Debug, Clone)]
pub struct ElasticModel3 {
    /// First Lamé parameter λ (Pa).
    pub lam: Field3,
    /// Shear modulus μ (Pa).
    pub mu: Field3,
    /// Density (kg/m³).
    pub rho: Field3,
    /// Grid geometry.
    pub geom: Geometry,
    /// Maximum compressional velocity (m/s).
    pub vp_max: f32,
}

impl ElasticModel2 {
    /// Build from velocities and density; all three fields share an extent.
    pub fn from_velocities(vp: &Field2, vs: &Field2, rho: &Field2, geom: Geometry) -> Self {
        assert_eq!(vp.extent(), vs.extent());
        assert_eq!(vp.extent(), rho.extent());
        let e = vp.extent();
        let mut lam = Field2::zeros(e);
        let mut mu = Field2::zeros(e);
        let mut vp_max = 0.0f32;
        for iz in 0..e.full_nz() {
            for ix in 0..e.full_nx() {
                let i = e.raw_idx(ix, iz);
                let (vpv, vsv, r) = (vp.as_slice()[i], vs.as_slice()[i], rho.as_slice()[i]);
                assert!(
                    vsv <= vpv,
                    "shear velocity must not exceed compressional velocity"
                );
                let m = r * vsv * vsv;
                mu.as_mut_slice()[i] = m;
                lam.as_mut_slice()[i] = r * vpv * vpv - 2.0 * m;
                vp_max = vp_max.max(vpv);
            }
        }
        Self {
            lam,
            mu,
            rho: rho.clone(),
            geom,
            vp_max,
        }
    }
}

impl ElasticModel3 {
    /// Build from velocities and density; all three fields share an extent.
    pub fn from_velocities(vp: &Field3, vs: &Field3, rho: &Field3, geom: Geometry) -> Self {
        assert_eq!(vp.extent(), vs.extent());
        assert_eq!(vp.extent(), rho.extent());
        let e = vp.extent();
        let mut lam = Field3::zeros(e);
        let mut mu = Field3::zeros(e);
        let mut vp_max = 0.0f32;
        let n = e.len();
        for i in 0..n {
            let (vpv, vsv, r) = (vp.as_slice()[i], vs.as_slice()[i], rho.as_slice()[i]);
            assert!(
                vsv <= vpv,
                "shear velocity must not exceed compressional velocity"
            );
            let m = r * vsv * vsv;
            mu.as_mut_slice()[i] = m;
            lam.as_mut_slice()[i] = r * vpv * vpv - 2.0 * m;
            vp_max = vp_max.max(vpv);
        }
        Self {
            lam,
            mu,
            rho: rho.clone(),
            geom,
            vp_max,
        }
    }
}

/// Min/max of the interior of a 2D field (velocity bounds for CFL and
/// dispersion checks).
pub fn min_max2(f: &Field2) -> (f32, f32) {
    let e = f.extent();
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for iz in 0..e.nz {
        for ix in 0..e.nx {
            let v = f.get(ix, iz);
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    (lo, hi)
}

/// Min/max of the interior of a 3D field.
pub fn min_max3(f: &Field3) -> (f32, f32) {
    let e = f.extent();
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for iz in 0..e.nz {
        for iy in 0..e.ny {
            for ix in 0..e.nx {
                let v = f.get(ix, iy, iz);
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
    }
    (lo, hi)
}

/// Extent helpers for building matched model sets.
pub fn extent2(nx: usize, nz: usize) -> Extent2 {
    Extent2::new(nx, nz, seismic_grid::STENCIL_HALF)
}

/// 3D analogue of [`extent2`].
pub fn extent3(nx: usize, ny: usize, nz: usize) -> Extent3 {
    Extent3::new(nx, ny, nz, seismic_grid::STENCIL_HALF)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elastic_conversion_roundtrip_2d() {
        let e = extent2(8, 8);
        let vp = Field2::filled(e, 3000.0);
        let vs = Field2::filled(e, 1500.0);
        let rho = Field2::filled(e, 2200.0);
        let m = ElasticModel2::from_velocities(&vp, &vs, &rho, Geometry::uniform(10.0, 1e-3));
        let mu = 2200.0f32 * 1500.0 * 1500.0;
        let lam = 2200.0f32 * 3000.0 * 3000.0 - 2.0 * mu;
        assert_eq!(m.mu.get(3, 3), mu);
        assert_eq!(m.lam.get(3, 3), lam);
        assert_eq!(m.vp_max, 3000.0);
        // Recover vp: sqrt((λ+2μ)/ρ).
        let vp_back = ((m.lam.get(0, 0) + 2.0 * m.mu.get(0, 0)) / m.rho.get(0, 0)).sqrt();
        assert!((vp_back - 3000.0).abs() < 0.5);
    }

    #[test]
    #[should_panic(expected = "shear velocity")]
    fn elastic_rejects_vs_above_vp() {
        let e = extent2(4, 4);
        let vp = Field2::filled(e, 1000.0);
        let vs = Field2::filled(e, 2000.0);
        let rho = Field2::filled(e, 2000.0);
        ElasticModel2::from_velocities(&vp, &vs, &rho, Geometry::uniform(10.0, 1e-3));
    }

    #[test]
    fn elastic_conversion_3d() {
        let e = extent3(4, 4, 4);
        let vp = Field3::filled(e, 2500.0);
        let vs = Field3::filled(e, 0.0); // fluid limit: μ = 0
        let rho = Field3::filled(e, 1000.0);
        let m = ElasticModel3::from_velocities(&vp, &vs, &rho, Geometry::uniform(10.0, 1e-3));
        assert_eq!(m.mu.get(1, 1, 1), 0.0);
        assert_eq!(m.lam.get(1, 1, 1), 1000.0 * 2500.0f32 * 2500.0);
    }

    #[test]
    fn min_max_scan() {
        let e = extent2(8, 4);
        let f = Field2::from_fn(e, |ix, iz| 1000.0 + (ix + iz) as f32);
        let (lo, hi) = min_max2(&f);
        assert_eq!(lo, 1000.0);
        assert_eq!(hi, 1000.0 + 7.0 + 3.0);
    }

    #[test]
    fn geometry_uniform() {
        let g = Geometry::uniform(12.5, 1e-3);
        assert_eq!(g.dx, 12.5);
        assert_eq!(g.dy, 12.5);
        assert_eq!(g.dz, 12.5);
        assert_eq!(g.h_min(), 12.5);
    }
}

/// Acoustic VTI (vertically transverse isotropic) model in 2D — the
/// anisotropic formulation the paper lists as future work ("we will
/// consider the anisotropic case in the future").
///
/// Thomsen parameters: `epsilon` controls the horizontal/vertical velocity
/// ratio (`vx = vp·√(1+2ε)`), `delta` the near-vertical moveout.
#[derive(Debug, Clone)]
pub struct VtiModel2 {
    /// Vertical P velocity (m/s).
    pub vp: Field2,
    /// Thomsen ε.
    pub epsilon: Field2,
    /// Thomsen δ.
    pub delta: Field2,
    /// Grid geometry.
    pub geom: Geometry,
}

impl VtiModel2 {
    /// Constant-parameter model.
    pub fn constant(e: Extent2, vp: f32, epsilon: f32, delta: f32, geom: Geometry) -> Self {
        assert!(
            epsilon >= delta,
            "ε >= δ avoids the known pseudo-acoustic instability"
        );
        assert!((0.0..1.0).contains(&epsilon));
        Self {
            vp: Field2::filled(e, vp),
            epsilon: Field2::filled(e, epsilon),
            delta: Field2::filled(e, delta),
            geom,
        }
    }

    /// Largest phase velocity (CFL bound): `vp·√(1+2ε)`.
    pub fn v_max(&self) -> f32 {
        let (_, vp_hi) = min_max2(&self.vp);
        let (_, eps_hi) = min_max2(&self.epsilon);
        vp_hi * (1.0 + 2.0 * eps_hi).sqrt()
    }
}
