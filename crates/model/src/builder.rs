//! Synthetic earth-model builders.
//!
//! Substitutes for the proprietary velocity models used in the paper's
//! industrial setting. Each builder fills the full allocated grid (halo
//! included) so the absorbing boundary sees physically sensible parameters.

use crate::{AcousticModel2, AcousticModel3, Geometry, IsoModel2, IsoModel3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seismic_grid::{Extent2, Extent3, Field2, Field3};

/// A horizontal layer: constant properties from `z_top` (interior index) down
/// to the next layer's top (or the grid bottom).
#[derive(Debug, Clone, Copy)]
pub struct Layer {
    /// Interior z index where the layer starts.
    pub z_top: usize,
    /// Compressional velocity (m/s).
    pub vp: f32,
    /// Shear velocity (m/s); ignored by acoustic/iso builders.
    pub vs: f32,
    /// Density (kg/m³).
    pub rho: f32,
}

/// Classic water-over-sediment-over-basement stack used by the examples and
/// the RTM imaging tests: three strong, flat reflectors.
pub fn standard_layers(nz: usize) -> Vec<Layer> {
    vec![
        Layer {
            z_top: 0,
            vp: 1500.0,
            vs: 0.0,
            rho: 1000.0,
        },
        Layer {
            z_top: nz / 3,
            vp: 2200.0,
            vs: 1100.0,
            rho: 2100.0,
        },
        Layer {
            z_top: 2 * nz / 3,
            vp: 3200.0,
            vs: 1800.0,
            rho: 2400.0,
        },
    ]
}

fn layer_at(layers: &[Layer], iz: usize) -> &Layer {
    debug_assert!(!layers.is_empty());
    let mut cur = &layers[0];
    for l in layers {
        if iz >= l.z_top {
            cur = l;
        }
    }
    cur
}

/// Fill a 2D field from a per-(raw z) value function, covering the halo by
/// clamping to the nearest interior row.
fn fill2(e: Extent2, f: impl Fn(usize) -> f32) -> Field2 {
    let mut out = Field2::zeros(e);
    for rz in 0..e.full_nz() {
        let iz = rz.saturating_sub(e.halo).min(e.nz - 1);
        let v = f(iz);
        for rx in 0..e.full_nx() {
            out.as_mut_slice()[e.raw_idx(rx, rz)] = v;
        }
    }
    out
}

fn fill3(e: Extent3, f: impl Fn(usize) -> f32) -> Field3 {
    let mut out = Field3::zeros(e);
    for rz in 0..e.full_nz() {
        let iz = rz.saturating_sub(e.halo).min(e.nz - 1);
        let v = f(iz);
        for ry in 0..e.full_ny() {
            for rx in 0..e.full_nx() {
                out.as_mut_slice()[e.raw_idx(rx, ry, rz)] = v;
            }
        }
    }
    out
}

/// Constant-velocity 2D isotropic model (analytic-comparison tests).
pub fn iso2_constant(e: Extent2, vp: f32, geom: Geometry) -> IsoModel2 {
    IsoModel2 {
        vp: Field2::filled(e, vp),
        geom,
    }
}

/// Constant-velocity 3D isotropic model.
pub fn iso3_constant(e: Extent3, vp: f32, geom: Geometry) -> IsoModel3 {
    IsoModel3 {
        vp: Field3::filled(e, vp),
        geom,
    }
}

/// Layered 2D isotropic model.
pub fn iso2_layered(e: Extent2, layers: &[Layer], geom: Geometry) -> IsoModel2 {
    IsoModel2 {
        vp: fill2(e, |iz| layer_at(layers, iz).vp),
        geom,
    }
}

/// Layered 3D isotropic model.
pub fn iso3_layered(e: Extent3, layers: &[Layer], geom: Geometry) -> IsoModel3 {
    IsoModel3 {
        vp: fill3(e, |iz| layer_at(layers, iz).vp),
        geom,
    }
}

/// Layered 2D acoustic (variable-density) model.
pub fn acoustic2_layered(e: Extent2, layers: &[Layer], geom: Geometry) -> AcousticModel2 {
    AcousticModel2 {
        vp: fill2(e, |iz| layer_at(layers, iz).vp),
        rho: fill2(e, |iz| layer_at(layers, iz).rho),
        geom,
    }
}

/// Layered 3D acoustic model.
pub fn acoustic3_layered(e: Extent3, layers: &[Layer], geom: Geometry) -> AcousticModel3 {
    AcousticModel3 {
        vp: fill3(e, |iz| layer_at(layers, iz).vp),
        rho: fill3(e, |iz| layer_at(layers, iz).rho),
        geom,
    }
}

/// Layered 2D elastic model (velocities converted to Lamé parameters).
pub fn elastic2_layered(e: Extent2, layers: &[Layer], geom: Geometry) -> crate::ElasticModel2 {
    let vp = fill2(e, |iz| layer_at(layers, iz).vp);
    let vs = fill2(e, |iz| layer_at(layers, iz).vs);
    let rho = fill2(e, |iz| layer_at(layers, iz).rho);
    crate::ElasticModel2::from_velocities(&vp, &vs, &rho, geom)
}

/// Layered 3D elastic model.
pub fn elastic3_layered(e: Extent3, layers: &[Layer], geom: Geometry) -> crate::ElasticModel3 {
    let vp = fill3(e, |iz| layer_at(layers, iz).vp);
    let vs = fill3(e, |iz| layer_at(layers, iz).vs);
    let rho = fill3(e, |iz| layer_at(layers, iz).rho);
    crate::ElasticModel3::from_velocities(&vp, &vs, &rho, geom)
}

/// 2D model with a slow Gaussian lens embedded in a constant background —
/// produces focusing/defocusing wave behaviour for the modeling examples.
pub fn iso2_lens(
    e: Extent2,
    vp_background: f32,
    vp_lens: f32,
    center: (usize, usize),
    radius: f32,
    geom: Geometry,
) -> IsoModel2 {
    let mut vp = Field2::filled(e, vp_background);
    for iz in 0..e.nz {
        for ix in 0..e.nx {
            let dx = ix as f32 - center.0 as f32;
            let dz = iz as f32 - center.1 as f32;
            let r2 = (dx * dx + dz * dz) / (radius * radius);
            let v = vp_background + (vp_lens - vp_background) * (-r2).exp();
            vp.set(ix, iz, v);
        }
    }
    IsoModel2 { vp, geom }
}

/// 2D wedge model: a dipping interface (Marmousi-flavoured structure) over a
/// basement, producing a non-flat reflector for imaging tests.
pub fn acoustic2_wedge(
    e: Extent2,
    vp_top: f32,
    vp_bottom: f32,
    z_left: usize,
    z_right: usize,
    geom: Geometry,
) -> AcousticModel2 {
    let mut vp = Field2::filled(e, vp_top);
    let mut rho = Field2::filled(e, 1000.0);
    let nx = e.nx.max(2);
    for ix in 0..e.nx {
        let t = ix as f32 / (nx - 1) as f32;
        let z_if = (z_left as f32 + t * (z_right as f32 - z_left as f32)) as usize;
        for iz in 0..e.nz {
            if iz >= z_if {
                vp.set(ix, iz, vp_bottom);
                rho.set(ix, iz, 2300.0);
            }
        }
    }
    AcousticModel2 { vp, rho, geom }
}

/// Random-media perturbation: multiplies an existing velocity grid by
/// `1 + amp·ξ` with ξ uniform in [−1, 1], seeded deterministically.
/// Von Kármán-style small-scale heterogeneity exercises the propagators with
/// worst-case (uncorrelated) memory access patterns in the model arrays.
pub fn perturb2(vp: &mut Field2, amp: f32, seed: u64) {
    assert!((0.0..1.0).contains(&amp), "amplitude must be in [0,1)");
    let mut rng = StdRng::seed_from_u64(seed);
    let e = vp.extent();
    for iz in 0..e.nz {
        for ix in 0..e.nx {
            let xi: f32 = rng.gen_range(-1.0..=1.0);
            let v = vp.get(ix, iz) * (1.0 + amp * xi);
            vp.set(ix, iz, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{extent2, extent3, min_max2};

    fn geom() -> Geometry {
        Geometry::uniform(10.0, 1e-3)
    }

    #[test]
    fn layered_iso_has_discontinuity_at_interface() {
        let e = extent2(16, 30);
        let m = iso2_layered(e, &standard_layers(30), geom());
        assert_eq!(m.vp.get(5, 0), 1500.0);
        assert_eq!(m.vp.get(5, 10), 2200.0);
        assert_eq!(m.vp.get(5, 20), 3200.0);
    }

    #[test]
    fn layered_fills_halo_by_clamping() {
        let e = extent2(8, 12);
        let m = iso2_layered(e, &standard_layers(12), geom());
        // Top halo row mirrors the first interior layer.
        assert_eq!(m.vp.as_slice()[e.raw_idx(0, 0)], 1500.0);
        // Bottom halo row mirrors the deepest layer.
        let last = e.full_nz() - 1;
        assert_eq!(m.vp.as_slice()[e.raw_idx(0, last)], 3200.0);
    }

    #[test]
    fn layered_3d_matches_2d_profile() {
        let e = extent3(6, 6, 30);
        let m = iso3_layered(e, &standard_layers(30), geom());
        assert_eq!(m.vp.get(2, 2, 0), 1500.0);
        assert_eq!(m.vp.get(2, 2, 29), 3200.0);
    }

    #[test]
    fn lens_is_radially_symmetric_and_bounded() {
        let e = extent2(32, 32);
        let m = iso2_lens(e, 2000.0, 1500.0, (16, 16), 6.0, geom());
        assert!((m.vp.get(16, 16) - 1500.0).abs() < 1.0);
        let (lo, hi) = min_max2(&m.vp);
        assert!(lo >= 1500.0 - 1.0 && hi <= 2000.0 + 1.0);
        // Symmetry across the center.
        assert!((m.vp.get(10, 16) - m.vp.get(22, 16)).abs() < 1e-3);
    }

    #[test]
    fn wedge_interface_dips() {
        let e = extent2(20, 40);
        let m = acoustic2_wedge(e, 1500.0, 3000.0, 10, 30, geom());
        // Left column: interface at z=10.
        assert_eq!(m.vp.get(0, 9), 1500.0);
        assert_eq!(m.vp.get(0, 10), 3000.0);
        // Right column: interface at z≈30.
        assert_eq!(m.vp.get(19, 29), 1500.0);
        assert_eq!(m.vp.get(19, 30), 3000.0);
        // Density follows.
        assert_eq!(m.rho.get(0, 10), 2300.0);
    }

    #[test]
    fn perturbation_is_deterministic_and_bounded() {
        let e = extent2(16, 16);
        let mut a = Field2::filled(e, 2000.0);
        let mut b = Field2::filled(e, 2000.0);
        perturb2(&mut a, 0.1, 42);
        perturb2(&mut b, 0.1, 42);
        assert_eq!(a, b);
        let (lo, hi) = min_max2(&a);
        assert!(lo >= 1800.0 && hi <= 2200.0);
        let mut c = Field2::filled(e, 2000.0);
        perturb2(&mut c, 0.1, 43);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn perturbation_rejects_large_amplitude() {
        let e = extent2(4, 4);
        let mut f = Field2::filled(e, 2000.0);
        perturb2(&mut f, 1.5, 1);
    }

    #[test]
    fn elastic_layered_builders() {
        let e = extent2(8, 30);
        let m = elastic2_layered(e, &standard_layers(30), geom());
        // Water layer: μ = 0.
        assert_eq!(m.mu.get(3, 0), 0.0);
        // Sediment: μ = ρ vs².
        assert!((m.mu.get(3, 15) - 2100.0 * 1100.0f32 * 1100.0).abs() < 1.0);
        let e3 = extent3(4, 4, 30);
        let m3 = elastic3_layered(e3, &standard_layers(30), geom());
        assert_eq!(m3.mu.get(1, 1, 0), 0.0);
        assert_eq!(m3.vp_max, 3200.0);
    }
}

/// Box-blur smoothing of a 2D field with half-width `r` (separable passes),
/// operating on the interior and re-clamping the halo.
///
/// The standard way to build a *migration* velocity model from a true
/// model: RTM needs the smooth kinematics without the reflectivity (sharp
/// contrasts in the migration model create spurious backscatter in the
/// image).
pub fn smooth2(f: &Field2, r: usize) -> Field2 {
    if r == 0 {
        return f.clone();
    }
    let e = f.extent();
    let pass = |src: &Field2, horizontal: bool| {
        Field2::from_fn(e, |ix, iz| {
            let mut acc = 0.0f32;
            let mut n = 0.0f32;
            for d in -(r as isize)..=(r as isize) {
                let (jx, jz) = if horizontal {
                    (ix as isize + d, iz as isize)
                } else {
                    (ix as isize, iz as isize + d)
                };
                let jx = jx.clamp(0, e.nx as isize - 1) as usize;
                let jz = jz.clamp(0, e.nz as isize - 1) as usize;
                acc += src.get(jx, jz);
                n += 1.0;
            }
            acc / n
        })
    };
    let h = pass(f, true);
    let mut out = pass(&h, false);
    // Re-extend the interior into the halo (clamped), as the builders do.
    let interior = out.clone();
    for rz in 0..e.full_nz() {
        for rx in 0..e.full_nx() {
            let ix = rx.saturating_sub(e.halo).min(e.nx - 1);
            let iz = rz.saturating_sub(e.halo).min(e.nz - 1);
            out.as_mut_slice()[e.raw_idx(rx, rz)] = interior.get(ix, iz);
        }
    }
    out
}

/// Linear v(z) gradient model: `v(z) = v0 + k·z·dz` — the classic
/// depth-dependent background used for migration-velocity tests.
pub fn iso2_gradient(e: Extent2, v0: f32, k_per_m: f32, geom: Geometry) -> IsoModel2 {
    assert!(v0 > 0.0);
    IsoModel2 {
        vp: fill2(e, |iz| v0 + k_per_m * iz as f32 * geom.dz),
        geom,
    }
}

/// 3D wedge: the 2D dipping interface extruded along y.
pub fn acoustic3_wedge(
    e: Extent3,
    vp_top: f32,
    vp_bottom: f32,
    z_left: usize,
    z_right: usize,
    geom: Geometry,
) -> AcousticModel3 {
    let mut vp = Field3::filled(e, vp_top);
    let mut rho = Field3::filled(e, 1000.0);
    let nx = e.nx.max(2);
    for ix in 0..e.nx {
        let t = ix as f32 / (nx - 1) as f32;
        let z_if = (z_left as f32 + t * (z_right as f32 - z_left as f32)) as usize;
        for iz in z_if..e.nz {
            for iy in 0..e.ny {
                vp.set(ix, iy, iz, vp_bottom);
                rho.set(ix, iy, iz, 2300.0);
            }
        }
    }
    AcousticModel3 { vp, rho, geom }
}

#[cfg(test)]
mod builder_ext_tests {
    use super::*;
    use crate::{extent2, extent3, min_max2, Geometry};

    fn geom() -> Geometry {
        Geometry::uniform(10.0, 1e-3)
    }

    #[test]
    fn smoothing_preserves_mean_and_softens_contrast() {
        let e = extent2(40, 40);
        let m = iso2_layered(e, &standard_layers(40), geom());
        let s = smooth2(&m.vp, 4);
        // Bounds cannot expand.
        let (lo0, hi0) = min_max2(&m.vp);
        let (lo1, hi1) = min_max2(&s);
        assert!(lo1 >= lo0 - 1.0 && hi1 <= hi0 + 1.0);
        // The interface jump is softened: the one-row difference across the
        // old interface shrinks.
        let jump_raw = (m.vp.get(20, 13) - m.vp.get(20, 12)).abs();
        let jump_smooth = (s.get(20, 13) - s.get(20, 12)).abs();
        assert!(jump_smooth < 0.5 * jump_raw, "{jump_smooth} vs {jump_raw}");
        // r = 0 is the identity.
        assert_eq!(smooth2(&m.vp, 0), m.vp);
    }

    #[test]
    fn smoothing_fills_halo_consistently() {
        let e = extent2(24, 24);
        let m = iso2_layered(e, &standard_layers(24), geom());
        let s = smooth2(&m.vp, 3);
        // Halo rows replicate the nearest interior value.
        assert_eq!(s.as_slice()[e.raw_idx(0, 0)], s.get(0, 0));
        let last = e.full_nz() - 1;
        assert_eq!(s.as_slice()[e.raw_idx(5, last)], s.get(1, e.nz - 1));
    }

    #[test]
    fn gradient_model_increases_with_depth() {
        let e = extent2(8, 50);
        let m = iso2_gradient(e, 1500.0, 0.6, geom());
        assert_eq!(m.vp.get(4, 0), 1500.0);
        let v40 = m.vp.get(4, 40);
        assert!((v40 - (1500.0 + 0.6 * 400.0)).abs() < 0.5);
        assert!(m.vp.get(4, 49) > m.vp.get(4, 10));
    }

    #[test]
    fn wedge3_matches_wedge2_profile() {
        let e3 = extent3(20, 6, 40);
        let m3 = acoustic3_wedge(e3, 1500.0, 3000.0, 10, 30, geom());
        let e2 = extent2(20, 40);
        let m2 = acoustic2_wedge(e2, 1500.0, 3000.0, 10, 30, geom());
        for ix in 0..20 {
            for iz in 0..40 {
                assert_eq!(m3.vp.get(ix, 3, iz), m2.vp.get(ix, iz), "({ix},{iz})");
            }
        }
    }
}
