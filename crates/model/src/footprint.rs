//! Device-memory footprint estimation for the twelve seismic cases.
//!
//! The paper (Section 5.1, step 1) found that "the forward and backward
//! wave-field variables of RTM cannot be allocated at the same time on GPU"
//! and that the 3D elastic model does not fit the 6 GB Fermi card at all (the
//! `X` cells of Tables 3 and 4). This module predicts the bytes each case
//! needs on the accelerator so the drivers and the `accel-sim` capacity model
//! can reproduce those allocation decisions.

use serde::{Deserialize, Serialize};

/// Earth-model formulation (paper Section 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Formulation {
    /// Constant-density isotropic acoustic (2nd-order wave equation).
    Isotropic,
    /// Variable-density acoustic (1st-order staggered system).
    Acoustic,
    /// Isotropic elastic velocity–stress (1st-order staggered system).
    Elastic,
}

impl Formulation {
    /// Display label matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            Formulation::Isotropic => "ISOTROPIC",
            Formulation::Acoustic => "ACOUSTIC",
            Formulation::Elastic => "ELASTIC",
        }
    }
}

/// Spatial dimensionality of a seismic case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dims {
    /// Two-dimensional (x, z).
    Two,
    /// Three-dimensional (x, y, z).
    Three,
}

impl Dims {
    /// 2 or 3.
    pub fn count(&self) -> usize {
        match self {
            Dims::Two => 2,
            Dims::Three => 3,
        }
    }
}

/// Number of full-grid `f32` arrays a *modeling* (forward-only) run keeps
/// resident on the device, per formulation and dimensionality.
///
/// Counts: wavefield time levels + model parameter grids + C-PML memory
/// (ψ) variables. The 1-D C-PML coefficient arrays are negligible and
/// ignored, exactly as the paper stores them ("four different
/// one-dimensional arrays with the cpml-coefficients for each dimension").
pub fn modeling_array_count(f: Formulation, d: Dims) -> usize {
    match (f, d) {
        // u_prev/u_cur + vp (damping profile is 1-D).
        (Formulation::Isotropic, Dims::Two) => 3,
        (Formulation::Isotropic, Dims::Three) => 3,
        // p,qx,qz + vp,rho + ψ for ∂x p, ∂z p, ∂x qx, ∂z qz.
        (Formulation::Acoustic, Dims::Two) => 9,
        // p,qx,qy,qz + vp,rho + 6 ψ.
        (Formulation::Acoustic, Dims::Three) => 12,
        // vx,vz,σxx,σzz,σxz + λ,μ,ρ + 8 ψ.
        (Formulation::Elastic, Dims::Two) => 16,
        // 3 v + 6 σ + λ,μ,ρ + 18 ψ.
        (Formulation::Elastic, Dims::Three) => 30,
    }
}

/// Additional resident arrays during the *backward* (migration) phase
/// beyond a full modeling set (which the receiver wavefield re-uses after
/// the offload/upload swap): the currently-loaded forward snapshot and the
/// accumulating image.
pub fn rtm_extra_array_count(f: Formulation, d: Dims) -> usize {
    let _ = (f, d);
    2
}

/// Bytes needed on the device for a modeling run over `points` allocated
/// grid points (halo included).
pub fn modeling_bytes(f: Formulation, d: Dims, points: usize) -> u64 {
    modeling_array_count(f, d) as u64 * points as u64 * 4
}

/// Peak bytes needed on the device during RTM (backward phase), assuming the
/// paper's phased allocation: modeling set minus offloaded scratch, plus the
/// backward set.
pub fn rtm_peak_bytes(f: Formulation, d: Dims, points: usize) -> u64 {
    (modeling_array_count(f, d) + rtm_extra_array_count(f, d)) as u64 * points as u64 * 4
}

/// Naive (un-phased) RTM allocation: forward *and* backward sets resident
/// simultaneously — what the paper found does **not** fit, motivating the
/// `enter data` / `exit data` phasing.
pub fn rtm_naive_bytes(f: Formulation, d: Dims, points: usize) -> u64 {
    2 * modeling_bytes(f, d, points) + rtm_extra_array_count(f, d) as u64 * points as u64 * 4
}

/// How the backward pass recovers the source wavefield — the axis the
/// random-boundary subsystem opens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MigrationStrategy {
    /// Every `snap_period`-th forward wavefield kept resident for the whole
    /// run (the seed implementation's in-memory snapshot stack).
    Dense {
        /// Forward time steps.
        steps: usize,
        /// Snapshot save period.
        snap_period: usize,
    },
    /// Griewank/Young-interval checkpointing: `slots` stored propagation
    /// states plus the replayed snapshots of the longest segment.
    Checkpointed {
        /// Stored full propagation states.
        slots: usize,
        /// Forward time steps.
        steps: usize,
        /// Snapshot save period within a replayed segment.
        snap_period: usize,
    },
    /// Random-boundary remodeling: zero snapshots, zero checkpoints — the
    /// price is the co-resident source state being re-propagated backward,
    /// plus the randomized-velocity halo arrays.
    RandomBoundary {
        /// Boundary strip depth in grid points.
        width: usize,
    },
}

/// Per-component device-memory breakdown of one migration configuration.
/// Components are disjoint; [`RtmBreakdown::total`] is their sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RtmBreakdown {
    /// Live propagation state: wavefield time levels, model parameters, ψ
    /// memory variables, image — everything resident regardless of how the
    /// source field is recovered.
    pub field_bytes: u64,
    /// Stored forward wavefields (snapshots and/or checkpoint states).
    /// Exactly 0 on the random-boundary path.
    pub snapshot_bytes: u64,
    /// Randomized-velocity halo arrays (the perturbed copies of the model
    /// parameters over the boundary strip). Exactly 0 on snapshot paths.
    pub boundary_bytes: u64,
}

impl RtmBreakdown {
    /// Total peak bytes.
    pub fn total(&self) -> u64 {
        self.field_bytes + self.snapshot_bytes + self.boundary_bytes
    }
}

/// Number of model-parameter arrays the random boundary perturbs (the
/// randomized copies that must coexist with the originals): vp for the
/// single-velocity formulations, λ and μ for elastic.
fn perturbed_array_count(f: Formulation) -> usize {
    match f {
        Formulation::Isotropic | Formulation::Acoustic => 1,
        Formulation::Elastic => 2,
    }
}

/// Grid points inside the random-boundary strip of an interior grid `n`
/// (nx, ny, nz with ny = 1 in 2D).
fn boundary_strip_points(d: Dims, n: [usize; 3], width: usize) -> u64 {
    let [nx, ny, nz] = n;
    let inner = |len: usize| len.saturating_sub(2 * width) as u64;
    let all = nx as u64 * ny as u64 * nz as u64;
    let core = match d {
        Dims::Two => inner(nx) * inner(nz),
        Dims::Three => inner(nx) * inner(ny) * inner(nz),
    };
    all - core
}

/// Per-component peak device memory of one migration strategy over an
/// interior grid `n` with `points` *allocated* grid points (halo included).
///
/// The snapshot component reproduces each driver's storage policy:
///
/// * `Dense` keeps `⌈steps/snap_period⌉` full wavefields,
/// * `Checkpointed` keeps `slots` full propagation states (one wavefield
///   set each) plus the replayed snapshots of the longest segment
///   (`⌈⌈steps/slots⌉/snap_period⌉` wavefields) — the peak of
///   `migrate_checkpointed`,
/// * `RandomBoundary` stores **nothing**: the source state (a second
///   propagation set) is co-resident instead, counted in `field_bytes`,
///   and the perturbed parameter copies are charged per strip point to
///   `boundary_bytes`.
pub fn rtm_breakdown(
    f: Formulation,
    d: Dims,
    n: [usize; 3],
    points: usize,
    strategy: MigrationStrategy,
) -> RtmBreakdown {
    let arr = points as u64 * 4;
    let base = (modeling_array_count(f, d) + rtm_extra_array_count(f, d)) as u64 * arr;
    match strategy {
        MigrationStrategy::Dense { steps, snap_period } => RtmBreakdown {
            field_bytes: base,
            snapshot_bytes: steps.div_ceil(snap_period.max(1)) as u64 * arr,
            boundary_bytes: 0,
        },
        MigrationStrategy::Checkpointed {
            slots,
            steps,
            snap_period,
        } => {
            // One stored state = every wavefield time level of the
            // formulation (model parameters are shared, ψ restart from 0
            // only in the lossless interior — stored conservatively too, as
            // migrate_checkpointed clones whole states).
            let state_arrays = modeling_array_count(f, d) as u64;
            let longest_segment = steps.div_ceil(slots.max(1));
            let replayed = longest_segment.div_ceil(snap_period.max(1)) as u64;
            RtmBreakdown {
                field_bytes: base,
                snapshot_bytes: (slots as u64 * state_arrays + replayed) * arr,
                boundary_bytes: 0,
            }
        }
        MigrationStrategy::RandomBoundary { width } => RtmBreakdown {
            // The backward pass co-residents the receiver propagation set
            // and the source propagation set (reconstructed, not loaded).
            field_bytes: base + modeling_array_count(f, d) as u64 * arr,
            snapshot_bytes: 0,
            boundary_bytes: perturbed_array_count(f) as u64
                * boundary_strip_points(d, n, width)
                * 4,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1 << 30;

    /// The paper's headline memory result: elastic 3D at production size does
    /// not fit the 6 GB Fermi but fits the 12 GB Kepler.
    #[test]
    fn elastic_3d_fits_kepler_not_fermi() {
        let n = 400usize; // production-scale grid used by the repro harness
        let points = n * n * n;
        let b = modeling_bytes(Formulation::Elastic, Dims::Three, points);
        assert!(b > 6 * GB, "elastic 3D = {} GB", b / GB);
        assert!(b < 12 * GB, "elastic 3D = {} GB", b / GB);
    }

    #[test]
    fn acoustic_and_iso_3d_fit_fermi() {
        let n = 400usize;
        let points = n * n * n;
        assert!(modeling_bytes(Formulation::Acoustic, Dims::Three, points) < 6 * GB);
        assert!(modeling_bytes(Formulation::Isotropic, Dims::Three, points) < 6 * GB);
    }

    /// Phased allocation must beat naive co-residency — the motivation for
    /// the paper's enter/exit data strategy.
    #[test]
    fn phased_rtm_smaller_than_naive() {
        for f in [
            Formulation::Isotropic,
            Formulation::Acoustic,
            Formulation::Elastic,
        ] {
            for d in [Dims::Two, Dims::Three] {
                let p = 1_000_000;
                assert!(rtm_peak_bytes(f, d, p) < rtm_naive_bytes(f, d, p));
            }
        }
    }

    #[test]
    fn array_counts_ordered_by_intensity() {
        for d in [Dims::Two, Dims::Three] {
            let iso = modeling_array_count(Formulation::Isotropic, d);
            let ac = modeling_array_count(Formulation::Acoustic, d);
            let el = modeling_array_count(Formulation::Elastic, d);
            assert!(iso < ac && ac < el);
        }
    }

    #[test]
    fn labels_and_dims() {
        assert_eq!(Formulation::Elastic.label(), "ELASTIC");
        assert_eq!(Dims::Two.count(), 2);
        assert_eq!(Dims::Three.count(), 3);
    }

    /// The random-boundary path's defining property: zero snapshot bytes,
    /// for every formulation and dimensionality.
    #[test]
    fn random_boundary_reports_zero_snapshot_bytes() {
        for f in [
            Formulation::Isotropic,
            Formulation::Acoustic,
            Formulation::Elastic,
        ] {
            for (d, n, pts) in [
                (Dims::Two, [500, 1, 500], 510 * 508usize),
                (Dims::Three, [100, 100, 100], 108 * 108 * 108),
            ] {
                let b = rtm_breakdown(
                    f,
                    d,
                    n,
                    pts,
                    MigrationStrategy::RandomBoundary { width: 20 },
                );
                assert_eq!(b.snapshot_bytes, 0, "{f:?} {d:?}");
                assert!(b.boundary_bytes > 0);
                assert_eq!(b.total(), b.field_bytes + b.boundary_bytes);
            }
        }
    }

    /// Components must account against each other sensibly: dense snapshots
    /// dominate checkpointing, and the random-boundary halo is far below
    /// either for production-shaped runs.
    #[test]
    fn breakdown_orders_strategies_by_storage() {
        let n = [400usize, 1, 400];
        let pts = 408 * 408usize;
        let dense = rtm_breakdown(
            Formulation::Acoustic,
            Dims::Two,
            n,
            pts,
            MigrationStrategy::Dense {
                steps: 4000,
                snap_period: 10,
            },
        );
        let ck = rtm_breakdown(
            Formulation::Acoustic,
            Dims::Two,
            n,
            pts,
            MigrationStrategy::Checkpointed {
                slots: 8,
                steps: 4000,
                snap_period: 10,
            },
        );
        let rb = rtm_breakdown(
            Formulation::Acoustic,
            Dims::Two,
            n,
            pts,
            MigrationStrategy::RandomBoundary { width: 20 },
        );
        assert!(ck.snapshot_bytes < dense.snapshot_bytes);
        assert!(rb.boundary_bytes < ck.snapshot_bytes);
        assert!(rb.total() < ck.total());
        assert!(ck.total() < dense.total());
        // The remodeling price is visible in the live-field component.
        assert!(rb.field_bytes > ck.field_bytes);
    }

    #[test]
    fn boundary_strip_never_exceeds_the_grid() {
        // Degenerate: strip wider than half the grid swallows everything.
        let all = boundary_strip_points(Dims::Two, [10, 1, 10], 6);
        assert_eq!(all, 100);
        let some = boundary_strip_points(Dims::Three, [10, 10, 10], 2);
        assert_eq!(some, 1000 - 6 * 6 * 6);
    }
}
