//! Device-memory footprint estimation for the twelve seismic cases.
//!
//! The paper (Section 5.1, step 1) found that "the forward and backward
//! wave-field variables of RTM cannot be allocated at the same time on GPU"
//! and that the 3D elastic model does not fit the 6 GB Fermi card at all (the
//! `X` cells of Tables 3 and 4). This module predicts the bytes each case
//! needs on the accelerator so the drivers and the `accel-sim` capacity model
//! can reproduce those allocation decisions.

use serde::{Deserialize, Serialize};

/// Earth-model formulation (paper Section 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Formulation {
    /// Constant-density isotropic acoustic (2nd-order wave equation).
    Isotropic,
    /// Variable-density acoustic (1st-order staggered system).
    Acoustic,
    /// Isotropic elastic velocity–stress (1st-order staggered system).
    Elastic,
}

impl Formulation {
    /// Display label matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            Formulation::Isotropic => "ISOTROPIC",
            Formulation::Acoustic => "ACOUSTIC",
            Formulation::Elastic => "ELASTIC",
        }
    }
}

/// Spatial dimensionality of a seismic case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dims {
    /// Two-dimensional (x, z).
    Two,
    /// Three-dimensional (x, y, z).
    Three,
}

impl Dims {
    /// 2 or 3.
    pub fn count(&self) -> usize {
        match self {
            Dims::Two => 2,
            Dims::Three => 3,
        }
    }
}

/// Number of full-grid `f32` arrays a *modeling* (forward-only) run keeps
/// resident on the device, per formulation and dimensionality.
///
/// Counts: wavefield time levels + model parameter grids + C-PML memory
/// (ψ) variables. The 1-D C-PML coefficient arrays are negligible and
/// ignored, exactly as the paper stores them ("four different
/// one-dimensional arrays with the cpml-coefficients for each dimension").
pub fn modeling_array_count(f: Formulation, d: Dims) -> usize {
    match (f, d) {
        // u_prev/u_cur + vp (damping profile is 1-D).
        (Formulation::Isotropic, Dims::Two) => 3,
        (Formulation::Isotropic, Dims::Three) => 3,
        // p,qx,qz + vp,rho + ψ for ∂x p, ∂z p, ∂x qx, ∂z qz.
        (Formulation::Acoustic, Dims::Two) => 9,
        // p,qx,qy,qz + vp,rho + 6 ψ.
        (Formulation::Acoustic, Dims::Three) => 12,
        // vx,vz,σxx,σzz,σxz + λ,μ,ρ + 8 ψ.
        (Formulation::Elastic, Dims::Two) => 16,
        // 3 v + 6 σ + λ,μ,ρ + 18 ψ.
        (Formulation::Elastic, Dims::Three) => 30,
    }
}

/// Additional resident arrays during the *backward* (migration) phase
/// beyond a full modeling set (which the receiver wavefield re-uses after
/// the offload/upload swap): the currently-loaded forward snapshot and the
/// accumulating image.
pub fn rtm_extra_array_count(f: Formulation, d: Dims) -> usize {
    let _ = (f, d);
    2
}

/// Bytes needed on the device for a modeling run over `points` allocated
/// grid points (halo included).
pub fn modeling_bytes(f: Formulation, d: Dims, points: usize) -> u64 {
    modeling_array_count(f, d) as u64 * points as u64 * 4
}

/// Peak bytes needed on the device during RTM (backward phase), assuming the
/// paper's phased allocation: modeling set minus offloaded scratch, plus the
/// backward set.
pub fn rtm_peak_bytes(f: Formulation, d: Dims, points: usize) -> u64 {
    (modeling_array_count(f, d) + rtm_extra_array_count(f, d)) as u64 * points as u64 * 4
}

/// Naive (un-phased) RTM allocation: forward *and* backward sets resident
/// simultaneously — what the paper found does **not** fit, motivating the
/// `enter data` / `exit data` phasing.
pub fn rtm_naive_bytes(f: Formulation, d: Dims, points: usize) -> u64 {
    2 * modeling_bytes(f, d, points) + rtm_extra_array_count(f, d) as u64 * points as u64 * 4
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1 << 30;

    /// The paper's headline memory result: elastic 3D at production size does
    /// not fit the 6 GB Fermi but fits the 12 GB Kepler.
    #[test]
    fn elastic_3d_fits_kepler_not_fermi() {
        let n = 400usize; // production-scale grid used by the repro harness
        let points = n * n * n;
        let b = modeling_bytes(Formulation::Elastic, Dims::Three, points);
        assert!(b > 6 * GB, "elastic 3D = {} GB", b / GB);
        assert!(b < 12 * GB, "elastic 3D = {} GB", b / GB);
    }

    #[test]
    fn acoustic_and_iso_3d_fit_fermi() {
        let n = 400usize;
        let points = n * n * n;
        assert!(modeling_bytes(Formulation::Acoustic, Dims::Three, points) < 6 * GB);
        assert!(modeling_bytes(Formulation::Isotropic, Dims::Three, points) < 6 * GB);
    }

    /// Phased allocation must beat naive co-residency — the motivation for
    /// the paper's enter/exit data strategy.
    #[test]
    fn phased_rtm_smaller_than_naive() {
        for f in [
            Formulation::Isotropic,
            Formulation::Acoustic,
            Formulation::Elastic,
        ] {
            for d in [Dims::Two, Dims::Three] {
                let p = 1_000_000;
                assert!(rtm_peak_bytes(f, d, p) < rtm_naive_bytes(f, d, p));
            }
        }
    }

    #[test]
    fn array_counts_ordered_by_intensity() {
        for d in [Dims::Two, Dims::Three] {
            let iso = modeling_array_count(Formulation::Isotropic, d);
            let ac = modeling_array_count(Formulation::Acoustic, d);
            let el = modeling_array_count(Formulation::Elastic, d);
            assert!(iso < ac && ac < el);
        }
    }

    #[test]
    fn labels_and_dims() {
        assert_eq!(Formulation::Elastic.label(), "ELASTIC");
        assert_eq!(Dims::Two.count(), 2);
        assert_eq!(Dims::Three.count(), 3);
    }
}
