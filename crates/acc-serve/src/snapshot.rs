//! Resumable queue snapshots for graceful drain.
//!
//! A drain must not lose admitted work: everything not finished when the
//! drain fires — queued jobs and partially-completed jobs — is persisted
//! as a [`QueueSnapshot`]. The snapshot keeps each completed shot's image
//! as raw `f32` bit patterns (`u32` words), so a resumed server stacks
//! *exactly* the bits the first run computed and only recomputes the
//! remaining shots; the final stacked image is bitwise identical to an
//! uninterrupted run. Physics payloads (earth models, acquisitions) are
//! deliberately **not** serialized — resume takes the original scenario
//! alongside the snapshot and rebinds payloads by submission index.

use seismic_grid::{Extent2, Field2};
use serde_json::Value;

/// One completed shot's image, as stored bits.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedShot {
    /// Shot index within the job.
    pub shot: usize,
    /// Image extent (empty image for synthetic payloads).
    pub nx: usize,
    /// Interior z size.
    pub nz: usize,
    /// Halo width.
    pub halo: usize,
    /// `f32::to_bits` of every image sample, storage order.
    pub bits: Vec<u32>,
}

impl CompletedShot {
    /// Capture a real image.
    pub fn from_field(shot: usize, img: &Field2) -> Self {
        let e = img.extent();
        Self {
            shot,
            nx: e.nx,
            nz: e.nz,
            halo: e.halo,
            bits: img.as_slice().iter().map(|v| v.to_bits()).collect(),
        }
    }

    /// Record a synthetic (image-less) completion.
    pub fn synthetic(shot: usize) -> Self {
        Self {
            shot,
            nx: 0,
            nz: 0,
            halo: 0,
            bits: Vec::new(),
        }
    }

    /// Rebuild the image (None for synthetic records).
    pub fn to_field(&self) -> Option<Field2> {
        if self.bits.is_empty() {
            return None;
        }
        let mut f = Field2::zeros(Extent2::new(self.nx, self.nz, self.halo));
        for (d, &b) in f.as_mut_slice().iter_mut().zip(self.bits.iter()) {
            *d = f32::from_bits(b);
        }
        Some(f)
    }
}

/// One unfinished job at drain time.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapJob {
    /// Index into the original scenario's submission list.
    pub sub_idx: usize,
    /// Shot indices still to run, dispatch order.
    pub remaining: Vec<usize>,
    /// Shots already completed, with their image bits.
    pub completed: Vec<CompletedShot>,
    /// True when any completed shot ran under brown-out relief.
    pub degraded: bool,
}

/// Everything needed to resume a drained server.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueSnapshot {
    /// When the drain fired, simulated seconds. Resume starts its clock
    /// here.
    pub drained_at_s: f64,
    /// Unfinished jobs, admission order.
    pub jobs: Vec<SnapJob>,
}

impl QueueSnapshot {
    /// Serialize to the snapshot JSON document.
    pub fn to_json(&self) -> Value {
        let mut doc = serde_json::Map::new();
        doc.insert("drained_at_s", self.drained_at_s);
        let jobs: Vec<Value> = self
            .jobs
            .iter()
            .map(|j| {
                let mut o = serde_json::Map::new();
                o.insert("sub_idx", j.sub_idx);
                o.insert(
                    "remaining",
                    j.remaining
                        .iter()
                        .map(|&s| Value::from(s))
                        .collect::<Vec<Value>>(),
                );
                o.insert("degraded", j.degraded);
                let done: Vec<Value> = j
                    .completed
                    .iter()
                    .map(|c| {
                        let mut co = serde_json::Map::new();
                        co.insert("shot", c.shot);
                        co.insert("nx", c.nx);
                        co.insert("nz", c.nz);
                        co.insert("halo", c.halo);
                        co.insert(
                            "bits",
                            c.bits
                                .iter()
                                .map(|&b| Value::from(b))
                                .collect::<Vec<Value>>(),
                        );
                        Value::Object(co)
                    })
                    .collect();
                o.insert("completed", done);
                Value::Object(o)
            })
            .collect();
        doc.insert("jobs", jobs);
        Value::Object(doc)
    }

    /// Parse a snapshot document (errors name the missing field).
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let num = |v: &Value, k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(|x| x.as_u64())
                .ok_or_else(|| format!("snapshot missing numeric field `{k}`"))
        };
        let drained_at_s = v
            .get("drained_at_s")
            .and_then(|x| x.as_f64())
            .ok_or("snapshot missing `drained_at_s`")?;
        let jobs = v
            .get("jobs")
            .and_then(|x| x.as_array())
            .ok_or("snapshot missing `jobs`")?
            .iter()
            .map(|j| {
                let remaining = j
                    .get("remaining")
                    .and_then(|x| x.as_array())
                    .ok_or("job missing `remaining`")?
                    .iter()
                    .map(|s| s.as_u64().map(|u| u as usize).ok_or("bad shot index"))
                    .collect::<Result<Vec<_>, _>>()?;
                let completed = j
                    .get("completed")
                    .and_then(|x| x.as_array())
                    .ok_or("job missing `completed`")?
                    .iter()
                    .map(|c| {
                        let bits = c
                            .get("bits")
                            .and_then(|x| x.as_array())
                            .ok_or("completed shot missing `bits`")?
                            .iter()
                            .map(|b| {
                                b.as_u64()
                                    .map(|u| u as u32)
                                    .ok_or_else(|| "bad image word".to_string())
                            })
                            .collect::<Result<Vec<_>, String>>()?;
                        Ok(CompletedShot {
                            shot: num(c, "shot")? as usize,
                            nx: num(c, "nx")? as usize,
                            nz: num(c, "nz")? as usize,
                            halo: num(c, "halo")? as usize,
                            bits,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(SnapJob {
                    sub_idx: num(j, "sub_idx")? as usize,
                    remaining,
                    completed,
                    degraded: j
                        .get("degraded")
                        .and_then(|x| x.as_bool())
                        .ok_or("job missing `degraded`")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Self { drained_at_s, jobs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_json_bit_exact() {
        let mut img = Field2::zeros(Extent2::new(3, 2, 1));
        for (i, v) in img.as_mut_slice().iter_mut().enumerate() {
            // Include a subnormal and a negative to stress bit fidelity.
            *v = if i == 0 { 1e-42 } else { -(i as f32) * 0.37 };
        }
        let snap = QueueSnapshot {
            drained_at_s: 12.75,
            jobs: vec![SnapJob {
                sub_idx: 4,
                remaining: vec![2, 3],
                completed: vec![
                    CompletedShot::from_field(0, &img),
                    CompletedShot::synthetic(1),
                ],
                degraded: true,
            }],
        };
        let text = serde_json::to_string(&snap.to_json());
        let back = QueueSnapshot::from_json(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back, snap);
        let rebuilt = back.jobs[0].completed[0].to_field().unwrap();
        assert_eq!(rebuilt.as_slice(), img.as_slice(), "bitwise image identity");
        assert!(back.jobs[0].completed[1].to_field().is_none());
    }

    #[test]
    fn from_json_names_missing_fields() {
        let doc = serde_json::from_str("{\"jobs\": []}").unwrap();
        let err = QueueSnapshot::from_json(&doc).unwrap_err();
        assert!(err.contains("drained_at_s"), "{err}");
    }
}
