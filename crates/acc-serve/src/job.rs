//! Job specifications, tenants, and the typed submission outcomes.

use rtm_core::case::Workload;
use rtm_core::modeling::Medium2;
use rtm_core::{OptimizationConfig, SeismicCase};
use seismic_source::{Acquisition2, Wavelet};
use std::sync::Arc;

/// One paying customer of the service.
#[derive(Debug, Clone, PartialEq)]
pub struct Tenant {
    /// Display name (lands in reports and fairness tables).
    pub name: String,
    /// Fair-queueing weight (≥ 1): a tenant with weight 2 is entitled to
    /// twice the device time of a tenant with weight 1 while both are
    /// backlogged.
    pub weight: u32,
}

impl Tenant {
    /// Tenant with the given name and weight.
    pub fn new(name: impl Into<String>, weight: u32) -> Self {
        Self {
            name: name.into(),
            weight: weight.max(1),
        }
    }
}

/// Which driver a job exercises (pricing differs: RTM replays the forward
/// wavefield, modeling does not).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobKind {
    /// Reverse time migration (forward + backward + imaging).
    Rtm,
    /// Forward modeling only.
    Modeling,
    /// Random-boundary RTM: remodeling-based source reconstruction —
    /// roughly 2× the source compute of [`JobKind::Rtm`]'s forward pass in
    /// exchange for zero checkpoint I/O.
    RtmRandomBoundary,
}

/// How the per-shot cost of a job is determined.
#[derive(Debug, Clone, PartialEq)]
pub enum JobCost {
    /// The submitter supplies the per-shot cost directly (gp·s of device
    /// time). Used by synthetic scenarios and tests.
    FixedShotCost(f64),
    /// Price the shot from the paper's timing model: a capped-step probe
    /// run of the given case and workload, linearly extrapolated to the
    /// full step count. See [`crate::cost::price_shot_cost`].
    Priced {
        /// Propagator case.
        case: SeismicCase,
        /// Grid and step-count geometry.
        workload: Workload,
        /// RTM or modeling pricing.
        kind: JobKind,
    },
}

/// The physics a completed job actually runs.
#[derive(Clone)]
pub enum Payload {
    /// No physics — the job only exercises the scheduler. Completed jobs
    /// produce no image.
    Synthetic,
    /// A real 2-D survey: every shot is migrated with
    /// [`rtm_core::rtm::run_rtm`] on a worker thread and the per-shot
    /// images are stacked in shot order (bitwise deterministic).
    Rtm2(Arc<RtmJob>),
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Payload::Synthetic => write!(f, "Synthetic"),
            Payload::Rtm2(j) => write!(f, "Rtm2({} shots)", j.shots.len()),
        }
    }
}

/// The physics description of a real survey job.
pub struct RtmJob {
    /// Earth model (shared across shots).
    pub medium: Medium2,
    /// One acquisition per shot.
    pub shots: Vec<Acquisition2>,
    /// Source wavelet.
    pub wavelet: Wavelet,
    /// Kernel optimization configuration.
    pub config: OptimizationConfig,
    /// Forward time steps.
    pub steps: usize,
    /// Snapshot save period.
    pub snap_period: usize,
    /// Gang count per shot.
    pub gangs: usize,
}

/// One job as submitted by a tenant.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Index into [`Scenario::tenants`].
    pub tenant: usize,
    /// Priority class: higher is more important. The brown-out shedder
    /// drops the *lowest* priority queued jobs first.
    pub priority: u8,
    /// Absolute completion deadline, simulated seconds (None = best
    /// effort). Propagated into the per-shot retry loop.
    pub deadline_s: Option<f64>,
    /// Number of shots.
    pub n_shots: usize,
    /// Per-shot cost model.
    pub cost: JobCost,
    /// What a completed shot computes.
    pub payload: Payload,
}

impl JobSpec {
    /// Synthetic best-effort job (scheduler-only, fixed cost).
    pub fn synthetic(tenant: usize, priority: u8, n_shots: usize, shot_cost_s: f64) -> Self {
        Self {
            tenant,
            priority,
            deadline_s: None,
            n_shots,
            cost: JobCost::FixedShotCost(shot_cost_s),
            payload: Payload::Synthetic,
        }
    }

    /// The same job with an absolute deadline.
    pub fn with_deadline(mut self, deadline_s: f64) -> Self {
        self.deadline_s = Some(deadline_s);
        self
    }
}

/// A job plus its arrival time.
#[derive(Debug, Clone)]
pub struct Submission {
    /// Simulated arrival time, seconds.
    pub arrival_s: f64,
    /// The job.
    pub spec: JobSpec,
}

/// Everything one serve processes: the tenant table and the submission
/// stream (sorted by arrival by [`crate::Server::run`]).
#[derive(Debug, Clone, Default)]
pub struct Scenario {
    /// Tenants; [`JobSpec::tenant`] indexes this table.
    pub tenants: Vec<Tenant>,
    /// Submissions, any order (the server sorts by arrival, stable).
    pub jobs: Vec<Submission>,
}

/// Why a submission was refused at admission. Typed so clients can react
/// (back off, resubmit smaller, escalate priority) instead of parsing
/// strings.
#[derive(Debug, Clone, PartialEq)]
pub enum Rejected {
    /// Admitting the job would push total queued work past the queue's
    /// cost capacity.
    QueueFull {
        /// Work already queued, gp·s.
        queued_cost_s: f64,
        /// The queue's capacity, gp·s.
        capacity_cost_s: f64,
    },
    /// Even with the whole fleet idle the job could not finish before its
    /// own deadline — accepting it would only waste device time.
    DeadlineInfeasible {
        /// Optimistic completion estimate, seconds.
        estimated_finish_s: f64,
        /// The submitted deadline.
        deadline_s: f64,
    },
    /// The tenant already has its quota of outstanding work queued.
    TenantQuotaExceeded {
        /// The tenant's queued cost, gp·s.
        outstanding_cost_s: f64,
        /// The per-tenant quota, gp·s.
        quota_cost_s: f64,
    },
    /// The cost model could not price the workload (unsupported case or
    /// a workload the device rejects).
    WorkloadInfeasible {
        /// Pricing failure detail.
        why: String,
    },
    /// The server is draining and accepts no new work.
    Draining,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::QueueFull {
                queued_cost_s,
                capacity_cost_s,
            } => write!(
                f,
                "queue full ({queued_cost_s:.1} of {capacity_cost_s:.1} gp·s queued)"
            ),
            Rejected::DeadlineInfeasible {
                estimated_finish_s,
                deadline_s,
            } => write!(
                f,
                "deadline infeasible (finish ≈ {estimated_finish_s:.1}s > deadline {deadline_s:.1}s)"
            ),
            Rejected::TenantQuotaExceeded {
                outstanding_cost_s,
                quota_cost_s,
            } => write!(
                f,
                "tenant quota exceeded ({outstanding_cost_s:.1} of {quota_cost_s:.1} gp·s outstanding)"
            ),
            Rejected::WorkloadInfeasible { why } => write!(f, "workload infeasible: {why}"),
            Rejected::Draining => write!(f, "server draining"),
        }
    }
}

/// Terminal state of one submission.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// All shots ran; the image (if any) is in the report.
    Completed {
        /// Completion time, simulated seconds.
        finish_s: f64,
        /// Completion minus arrival.
        latency_s: f64,
        /// True when any shot ran under brown-out checkpoint relief.
        degraded: bool,
    },
    /// Refused at admission.
    Rejected(Rejected),
    /// Admitted, then dropped by the brown-out shedder before any shot
    /// started.
    Shed {
        /// When the shed happened.
        at_s: f64,
    },
    /// Admitted, then cancelled because the deadline became unreachable.
    CancelledDeadline {
        /// When the cancellation fired.
        at_s: f64,
    },
    /// Admitted but unfinished when the server drained: the job lives on
    /// in the queue snapshot and completes under [`crate::Server::resume`].
    Drained,
    /// The fleet could no longer run the job (every device lost).
    Failed {
        /// What went wrong.
        error: String,
    },
}

impl JobOutcome {
    /// True for [`JobOutcome::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, JobOutcome::Completed { .. })
    }
}

impl JobSpec {
    /// True when completing this job runs real physics.
    pub fn is_real(&self) -> bool {
        matches!(self.payload, Payload::Rtm2(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_weight_floors_at_one() {
        assert_eq!(Tenant::new("t", 0).weight, 1);
        assert_eq!(Tenant::new("t", 3).weight, 3);
    }

    #[test]
    fn rejection_displays_name_the_reason() {
        let r = Rejected::QueueFull {
            queued_cost_s: 90.0,
            capacity_cost_s: 100.0,
        };
        assert!(r.to_string().contains("queue full"));
        let d = Rejected::DeadlineInfeasible {
            estimated_finish_s: 50.0,
            deadline_s: 10.0,
        };
        assert!(d.to_string().contains("deadline"));
        assert!(Rejected::Draining.to_string().contains("draining"));
    }

    #[test]
    fn synthetic_spec_builder() {
        let s = JobSpec::synthetic(1, 3, 4, 2.0).with_deadline(9.0);
        assert_eq!(s.tenant, 1);
        assert_eq!(s.n_shots, 4);
        assert_eq!(s.deadline_s, Some(9.0));
        assert!(matches!(s.cost, JobCost::FixedShotCost(c) if c == 2.0));
        assert!(!s.clone().is_real());
    }
}
