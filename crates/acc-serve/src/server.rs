//! The job server: a deterministic discrete-event scheduler over the
//! simulated fleet, with real physics on worker threads.
//!
//! Scheduling runs entirely in simulated time: device occupancy, retry
//! backoff, breaker cooldowns, and deadlines are all derived from the
//! fleet fault plan and the per-shot cost model, never from wall clocks.
//! Real payload physics (per-shot RTM images) runs on worker threads fed
//! over crossbeam channels — but no scheduling decision reads a physics
//! result, so the schedule, every outcome, and every metric are a pure
//! function of `(config, scenario, fleet plan, drain time)`.
//!
//! Within one simulated instant the processing order is fixed:
//! completions, then the drain trigger, then arrivals, then deadline
//! sweeps, then brown-out shedding, then dispatch — ties broken by
//! ascending device id and submission order, which is what makes
//! drain/resume replays bit-identical.

use crate::breaker::{Breaker, BreakerConfig, BreakerTransition};
use crate::cost::price_shot_cost;
use crate::fair::DrrQueue;
use crate::job::{JobCost, JobKind, JobOutcome, Payload, Rejected, RtmJob, Scenario, Submission};
use crate::snapshot::{CompletedShot, QueueSnapshot, SnapJob};
use acc_obs::{ObsSession, Span, SpanCat, Track};
use accel_sim::fault::{FaultView, FleetFaultPlan};
use openacc_sim::compiler::Compiler;
use rtm_core::case::Cluster;
use rtm_core::resilient::{run_shot_attempts, CancellationToken, ShotOutcome};
use rtm_core::rtm::run_rtm;
use rtm_core::{RetryPolicy, RtmError};
use seismic_grid::Field2;
use std::collections::VecDeque;
use std::sync::Arc;

/// Brown-out (load-shedding) watermarks and degradation knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownoutConfig {
    /// Queue-cost fraction of capacity that switches brown-out on.
    pub high_frac: f64,
    /// Fraction the shedder drives the queue back down to; brown-out
    /// switches off below it.
    pub low_frac: f64,
    /// Multiplier (< 1) applied to the modeled per-shot cost while
    /// browned out — the server stretches checkpoint cadence to trade
    /// restart cost for throughput. Affected jobs are reported
    /// `degraded`; payload physics is unchanged.
    pub ckpt_relief: f64,
    /// Brown-out multiplier for [`crate::job::JobKind::RtmRandomBoundary`]
    /// shots. Remodeling-based jobs carry no checkpoint I/O at all, so the
    /// server can shed *more* of their modeled cost than checkpoint
    /// stretching buys on ordinary RTM — a deeper discount (smaller value
    /// than [`BrownoutConfig::ckpt_relief`]) makes deficit round-robin
    /// prefer dispatching random-boundary shots while degraded.
    pub remodel_relief: f64,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        Self {
            high_frac: 0.85,
            low_frac: 0.60,
            ckpt_relief: 0.90,
            remodel_relief: 0.75,
        }
    }
}

/// Server tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Fleet size the scheduler dispatches onto.
    pub n_devices: usize,
    /// Total queued-work capacity, gp·s of estimated device time.
    pub queue_capacity_cost_s: f64,
    /// Per-tenant outstanding-work quota, gp·s.
    pub tenant_quota_cost_s: f64,
    /// Retry policy for the per-shot retry loop.
    pub retry: RetryPolicy,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Brown-out tuning.
    pub brownout: BrownoutConfig,
    /// Cluster used to price [`JobCost::Priced`] submissions.
    pub cluster: Cluster,
    /// Compiler used to price [`JobCost::Priced`] submissions.
    pub compiler: Compiler,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            n_devices: 4,
            queue_capacity_cost_s: 200.0,
            tenant_quota_cost_s: 120.0,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            brownout: BrownoutConfig::default(),
            cluster: Cluster::CrayXc30,
            compiler: Compiler::Cray,
        }
    }
}

/// What one serve produced.
#[derive(Debug)]
pub struct ServeReport {
    /// Terminal outcome per submission (same order as
    /// [`Scenario::jobs`]).
    pub outcomes: Vec<JobOutcome>,
    /// Stacked image per submission (real-payload completed jobs only).
    pub images: Vec<Option<Field2>>,
    /// Last simulated event time.
    pub makespan_s: f64,
    /// Estimated device seconds of *completed* jobs.
    pub goodput_cost_s: f64,
    /// Estimated device seconds of all priceable submissions.
    pub offered_cost_s: f64,
    /// Mean completion latency (completed jobs), seconds.
    pub mean_latency_s: f64,
    /// 99th-percentile completion latency, seconds.
    pub p99_latency_s: f64,
    /// Shed jobs over admitted jobs.
    pub shed_rate: f64,
    /// Completed (served) cost per tenant.
    pub served_cost_by_tenant: Vec<f64>,
    /// Every breaker transition, in time order.
    pub breaker_log: Vec<BreakerTransition>,
    /// Completed-job count.
    pub jobs_completed: usize,
    /// Shed-job count.
    pub jobs_shed: usize,
    /// Rejected-at-admission count.
    pub jobs_rejected: usize,
    /// Deadline-cancelled count.
    pub jobs_cancelled: usize,
}

/// Internal per-job state.
struct JobState {
    sub_idx: usize,
    tenant: usize,
    priority: u8,
    deadline_s: Option<f64>,
    shot_cost_s: f64,
    /// Driver kind of [`JobCost::Priced`] submissions; `None` for fixed-cost
    /// synthetic jobs. Selects the brown-out relief multiplier.
    kind: Option<JobKind>,
    n_shots: usize,
    payload: Payload,
    arrival_s: f64,
    /// Shots not yet dispatched, dispatch order.
    remaining: VecDeque<usize>,
    /// Shots currently on devices.
    inflight: usize,
    /// Completed shot indices (DES order; stacking re-sorts).
    completed: Vec<usize>,
    /// Images carried over from a drain snapshot, keyed by shot.
    preloaded: Vec<CompletedShot>,
    degraded: bool,
    in_drr: bool,
    started: bool,
    first_start_s: f64,
    finish_s: f64,
    cancel: CancellationToken,
    outcome: Option<JobOutcome>,
}

/// Driver kind recorded on a job for brown-out relief selection.
fn job_kind(cost: &JobCost) -> Option<JobKind> {
    match cost {
        JobCost::FixedShotCost(_) => None,
        JobCost::Priced { kind, .. } => Some(*kind),
    }
}

impl JobState {
    fn job_cost_s(&self) -> f64 {
        self.shot_cost_s * self.n_shots as f64
    }
    fn outstanding_cost_s(&self) -> f64 {
        self.shot_cost_s * (self.remaining.len() + self.inflight) as f64
    }
    fn is_terminal(&self) -> bool {
        self.outcome.is_some()
    }
}

/// Internal per-device state.
struct DeviceState {
    free_at: f64,
    breaker: Breaker,
    lost: bool,
    attempt_seq: u64,
    inflight: Option<InFlight>,
}

struct InFlight {
    job: usize,
    shot: usize,
    end_s: f64,
    outcome: ShotOutcome,
    degraded: bool,
}

/// One physics task for the worker pool.
type ShotTask = (usize, usize, Arc<RtmJob>);
/// One computed image back from the pool.
type ShotResult = (usize, usize, Field2);

/// The job server. Construction binds the configuration and the fleet
/// fault plan; [`Server::run`] / [`Server::resume`] execute scenarios.
pub struct Server {
    cfg: ServerConfig,
    fleet: FleetFaultPlan,
}

impl Server {
    /// Server over the given fleet.
    pub fn new(cfg: ServerConfig, fleet: FleetFaultPlan) -> Self {
        Self { cfg, fleet }
    }

    /// Serve a scenario to completion.
    pub fn run(
        &self,
        scenario: &Scenario,
        obs: Option<&ObsSession>,
    ) -> Result<ServeReport, RtmError> {
        let (report, _) = self.run_inner(scenario, None, None, obs)?;
        Ok(report)
    }

    /// Serve until `drain_at_s`, then stop admitting and dispatching,
    /// finish in-flight shots, and return a resumable snapshot of the
    /// unfinished work (None when nothing was left).
    pub fn run_with_drain(
        &self,
        scenario: &Scenario,
        drain_at_s: f64,
        obs: Option<&ObsSession>,
    ) -> Result<(ServeReport, Option<QueueSnapshot>), RtmError> {
        self.run_inner(scenario, Some(drain_at_s), None, obs)
    }

    /// Resume a drained serve: snapshot jobs re-enter the queue at the
    /// drain time (their completed shots' images are reused bit-exact),
    /// and scenario submissions arriving at or after the drain time are
    /// admitted normally. Submissions the first run already settled are
    /// reported as [`Rejected::Draining`] here.
    pub fn resume(
        &self,
        snapshot: &QueueSnapshot,
        scenario: &Scenario,
        obs: Option<&ObsSession>,
    ) -> Result<ServeReport, RtmError> {
        let (report, _) = self.run_inner(scenario, None, Some(snapshot), obs)?;
        Ok(report)
    }

    fn shot_price(&self, spec_cost: &JobCost) -> Result<f64, Rejected> {
        let cost = match spec_cost {
            JobCost::FixedShotCost(c) => *c,
            JobCost::Priced {
                case,
                workload,
                kind,
            } => price_shot_cost(
                case,
                workload,
                *kind,
                &rtm_core::OptimizationConfig::default(),
                self.cfg.cluster,
                self.cfg.compiler,
            )
            .map_err(|why| Rejected::WorkloadInfeasible { why })?,
        };
        if !cost.is_finite() || cost <= 0.0 {
            return Err(Rejected::WorkloadInfeasible {
                why: format!("per-shot cost must be positive and finite, got {cost}"),
            });
        }
        Ok(cost)
    }

    #[allow(clippy::too_many_lines)]
    fn run_inner(
        &self,
        scenario: &Scenario,
        drain_at_s: Option<f64>,
        resume_from: Option<&QueueSnapshot>,
        obs: Option<&ObsSession>,
    ) -> Result<(ServeReport, Option<QueueSnapshot>), RtmError> {
        let n_subs = scenario.jobs.len();
        let n_dev = self.cfg.n_devices.min(self.fleet.n_devices()).max(1);
        for sub in &scenario.jobs {
            if sub.spec.tenant >= scenario.tenants.len() {
                return Err(RtmError::MalformedPlan(format!(
                    "submission references tenant {} but only {} tenants exist",
                    sub.spec.tenant,
                    scenario.tenants.len()
                )));
            }
        }

        // Arrival order: by time, submission index breaking ties.
        let mut order: Vec<usize> = (0..n_subs).collect();
        order.sort_by(|&a, &b| {
            scenario.jobs[a]
                .arrival_s
                .total_cmp(&scenario.jobs[b].arrival_s)
                .then(a.cmp(&b))
        });

        let start_t = resume_from.map_or(0.0, |s| s.drained_at_s);
        let mut outcomes: Vec<Option<JobOutcome>> = vec![None; n_subs];
        let mut jobs: Vec<JobState> = Vec::new();
        let mut job_of_sub: Vec<Option<usize>> = vec![None; n_subs];
        let weights: Vec<u32> = scenario.tenants.iter().map(|t| t.weight).collect();
        let mut drr = DrrQueue::new(&weights);
        let mut devices: Vec<DeviceState> = (0..n_dev)
            .map(|_| DeviceState {
                free_at: start_t,
                breaker: Breaker::new(self.cfg.breaker),
                lost: false,
                attempt_seq: 0,
                inflight: None,
            })
            .collect();
        let mut queued_cost = 0.0f64;
        let mut tenant_outstanding = vec![0.0f64; scenario.tenants.len()];
        let mut brownout = false;
        let mut drained = false;
        let mut breaker_log: Vec<BreakerTransition> = Vec::new();
        let mut offered_cost = 0.0f64;
        let mut admitted = 0usize;
        let mut shed = 0usize;
        let mut rejected = 0usize;
        let mut cancelled = 0usize;
        let mut makespan = start_t;

        // Physics worker pool, spun up lazily on the first real payload.
        type PhysicsPool = (
            crossbeam::channel::Sender<ShotTask>,
            crossbeam::channel::Receiver<ShotResult>,
            Vec<std::thread::JoinHandle<()>>,
        );
        let mut pool: Option<PhysicsPool> = None;
        let spawn_pool = |pool: &mut Option<_>| {
            if pool.is_none() {
                let (task_tx, task_rx) = crossbeam::channel::unbounded::<ShotTask>();
                let (res_tx, res_rx) = crossbeam::channel::unbounded::<ShotResult>();
                let handles: Vec<_> = (0..n_dev.min(4))
                    .map(|_| {
                        let rx = task_rx.clone();
                        let tx = res_tx.clone();
                        std::thread::spawn(move || {
                            while let Ok((job, shot, payload)) = rx.recv() {
                                let r = run_rtm(
                                    &payload.medium,
                                    &payload.shots[shot],
                                    &payload.wavelet,
                                    &payload.config,
                                    payload.steps,
                                    payload.snap_period,
                                    payload.gangs,
                                );
                                let _ = tx.send((job, shot, r.image));
                            }
                        })
                    })
                    .collect();
                *pool = Some((task_tx, res_rx, handles));
            }
        };

        let record = |obs: Option<&ObsSession>, name: &str, by: u64| {
            if let Some(o) = obs {
                o.registry.inc(name, by);
            }
        };
        let gauge = |obs: Option<&ObsSession>, name: &str, v: f64| {
            if let Some(o) = obs {
                o.registry.set_gauge(name, v);
            }
        };
        let breaker_span = |obs: Option<&ObsSession>, tr: &BreakerTransition| {
            if let Some(o) = obs {
                o.span(Span::new(
                    Track::Service(tr.device as u32),
                    SpanCat::Service,
                    format!("breaker:{}", tr.to),
                    tr.at_s,
                    0.0,
                ));
                o.registry.inc(
                    match tr.to {
                        "open" => "breaker_opened",
                        "half_open" => "breaker_half_open",
                        _ => "breaker_closed",
                    },
                    1,
                );
            }
        };

        // Preload snapshot jobs (already admitted by the drained run; no
        // admission control, original arrival times kept for latency).
        if let Some(snap) = resume_from {
            for sj in &snap.jobs {
                let Some(sub) = scenario.jobs.get(sj.sub_idx) else {
                    return Err(RtmError::MalformedPlan(format!(
                        "snapshot references submission {} outside the scenario",
                        sj.sub_idx
                    )));
                };
                let cost = self.shot_price(&sub.spec.cost).map_err(|r| {
                    RtmError::MalformedPlan(format!("snapshot job unpriceable: {r}"))
                })?;
                let job_idx = jobs.len();
                let state = JobState {
                    sub_idx: sj.sub_idx,
                    tenant: sub.spec.tenant,
                    priority: sub.spec.priority,
                    deadline_s: sub.spec.deadline_s,
                    shot_cost_s: cost,
                    kind: job_kind(&sub.spec.cost),
                    n_shots: sub.spec.n_shots,
                    payload: sub.spec.payload.clone(),
                    arrival_s: sub.arrival_s,
                    remaining: sj.remaining.iter().copied().collect(),
                    inflight: 0,
                    completed: sj.completed.iter().map(|c| c.shot).collect(),
                    preloaded: sj.completed.clone(),
                    degraded: sj.degraded,
                    in_drr: true,
                    started: !sj.completed.is_empty(),
                    first_start_s: start_t,
                    finish_s: start_t,
                    cancel: CancellationToken::new(),
                    outcome: None,
                };
                queued_cost += state.outstanding_cost_s();
                tenant_outstanding[state.tenant] += state.outstanding_cost_s();
                drr.enqueue(state.tenant, job_idx, cost);
                job_of_sub[sj.sub_idx] = Some(job_idx);
                jobs.push(state);
                admitted += 1;
            }
        }

        let mut arrivals = order
            .into_iter()
            .filter(|&i| resume_from.is_none() || scenario.jobs[i].arrival_s >= start_t)
            .collect::<VecDeque<usize>>();
        // Submissions settled by the drained run show up as Draining here.
        if resume_from.is_some() {
            for (i, sub) in scenario.jobs.iter().enumerate() {
                if sub.arrival_s < start_t && job_of_sub[i].is_none() {
                    outcomes[i] = Some(JobOutcome::Rejected(Rejected::Draining));
                }
            }
        }

        let mut t = start_t;

        macro_rules! refresh_queue_gauges {
            () => {
                gauge(obs, "queue_depth", drr.len() as f64);
                gauge(obs, "queue_cost_s", queued_cost);
                gauge(obs, "brownout", if brownout { 1.0 } else { 0.0 });
                gauge(
                    obs,
                    "shed_rate",
                    if admitted > 0 {
                        shed as f64 / admitted as f64
                    } else {
                        0.0
                    },
                );
            };
        }

        // One submission through admission control.
        macro_rules! admit {
            ($sub_idx:expr, $sub:expr, $t:expr) => {{
                let sub: &Submission = $sub;
                record(obs, "jobs_submitted", 1);
                let verdict: Result<f64, Rejected> = if drained {
                    Err(Rejected::Draining)
                } else {
                    match self.shot_price(&sub.spec.cost) {
                        Err(r) => Err(r),
                        Ok(cost) if sub.spec.n_shots == 0 => {
                            let _ = cost;
                            Err(Rejected::WorkloadInfeasible {
                                why: "job has zero shots".to_string(),
                            })
                        }
                        Ok(cost) => {
                            let job_cost = cost * sub.spec.n_shots as f64;
                            offered_cost += job_cost;
                            let usable = devices.iter().filter(|d| !d.lost).count().max(1);
                            let waves = sub.spec.n_shots.div_ceil(usable);
                            let est_finish = $t + cost * waves as f64;
                            if let Some(dl) = sub.spec.deadline_s {
                                if est_finish > dl {
                                    Err(Rejected::DeadlineInfeasible {
                                        estimated_finish_s: est_finish,
                                        deadline_s: dl,
                                    })
                                } else if queued_cost + job_cost > self.cfg.queue_capacity_cost_s {
                                    Err(Rejected::QueueFull {
                                        queued_cost_s: queued_cost,
                                        capacity_cost_s: self.cfg.queue_capacity_cost_s,
                                    })
                                } else if tenant_outstanding[sub.spec.tenant] + job_cost
                                    > self.cfg.tenant_quota_cost_s
                                {
                                    Err(Rejected::TenantQuotaExceeded {
                                        outstanding_cost_s: tenant_outstanding[sub.spec.tenant],
                                        quota_cost_s: self.cfg.tenant_quota_cost_s,
                                    })
                                } else {
                                    Ok(cost)
                                }
                            } else if queued_cost + job_cost > self.cfg.queue_capacity_cost_s {
                                Err(Rejected::QueueFull {
                                    queued_cost_s: queued_cost,
                                    capacity_cost_s: self.cfg.queue_capacity_cost_s,
                                })
                            } else if tenant_outstanding[sub.spec.tenant] + job_cost
                                > self.cfg.tenant_quota_cost_s
                            {
                                Err(Rejected::TenantQuotaExceeded {
                                    outstanding_cost_s: tenant_outstanding[sub.spec.tenant],
                                    quota_cost_s: self.cfg.tenant_quota_cost_s,
                                })
                            } else {
                                Ok(cost)
                            }
                        }
                    }
                };
                match verdict {
                    Err(r) => {
                        rejected += 1;
                        record(obs, "jobs_rejected", 1);
                        outcomes[$sub_idx] = Some(JobOutcome::Rejected(r));
                    }
                    Ok(cost) => {
                        let job_idx = jobs.len();
                        let state = JobState {
                            sub_idx: $sub_idx,
                            tenant: sub.spec.tenant,
                            priority: sub.spec.priority,
                            deadline_s: sub.spec.deadline_s,
                            shot_cost_s: cost,
                            kind: job_kind(&sub.spec.cost),
                            n_shots: sub.spec.n_shots,
                            payload: sub.spec.payload.clone(),
                            arrival_s: sub.arrival_s,
                            remaining: (0..sub.spec.n_shots).collect(),
                            inflight: 0,
                            completed: Vec::new(),
                            preloaded: Vec::new(),
                            degraded: false,
                            in_drr: true,
                            started: false,
                            first_start_s: f64::NAN,
                            finish_s: $t,
                            cancel: CancellationToken::new(),
                            outcome: None,
                        };
                        queued_cost += state.job_cost_s();
                        tenant_outstanding[state.tenant] += state.job_cost_s();
                        drr.enqueue(state.tenant, job_idx, cost);
                        job_of_sub[$sub_idx] = Some(job_idx);
                        jobs.push(state);
                        admitted += 1;
                        record(obs, "jobs_admitted", 1);
                    }
                }
                refresh_queue_gauges!();
            }};
        }

        // ---- main event loop ----
        loop {
            // Admit everything that has arrived.
            while arrivals
                .front()
                .is_some_and(|&i| scenario.jobs[i].arrival_s <= t)
            {
                let i = arrivals.pop_front().unwrap_or_default();
                admit!(i, &scenario.jobs[i], t);
            }

            // Deadline sweep over queued work: a job whose deadline has
            // passed can never complete — cancel it before it wastes a
            // device slot.
            for (j, job) in jobs.iter_mut().enumerate() {
                if job.is_terminal() || job.remaining.is_empty() {
                    continue;
                }
                if job.deadline_s.is_some_and(|dl| t >= dl) {
                    job.cancel.cancel();
                    job.outcome = Some(JobOutcome::CancelledDeadline { at_s: t });
                    cancelled += 1;
                    record(obs, "jobs_cancelled_deadline", 1);
                    let freed = job.outstanding_cost_s();
                    queued_cost -= freed;
                    tenant_outstanding[job.tenant] -= freed;
                    if job.in_drr {
                        drr.remove_job(job.tenant, j);
                        job.in_drr = false;
                    }
                    refresh_queue_gauges!();
                }
            }

            // Brown-out: shed lowest-priority never-started jobs down to
            // the low watermark.
            if queued_cost > self.cfg.brownout.high_frac * self.cfg.queue_capacity_cost_s {
                brownout = true;
            }
            if brownout {
                while queued_cost > self.cfg.brownout.low_frac * self.cfg.queue_capacity_cost_s {
                    let victim = (0..jobs.len())
                        .filter(|&j| {
                            !jobs[j].is_terminal()
                                && !jobs[j].started
                                && jobs[j].inflight == 0
                                && !jobs[j].remaining.is_empty()
                        })
                        .min_by(|&a, &b| {
                            jobs[a]
                                .priority
                                .cmp(&jobs[b].priority)
                                .then(jobs[b].arrival_s.total_cmp(&jobs[a].arrival_s))
                                .then(b.cmp(&a))
                        });
                    let Some(v) = victim else { break };
                    let job = &mut jobs[v];
                    job.outcome = Some(JobOutcome::Shed { at_s: t });
                    shed += 1;
                    record(obs, "jobs_shed", 1);
                    let freed = job.outstanding_cost_s();
                    queued_cost -= freed;
                    tenant_outstanding[job.tenant] -= freed;
                    let tenant = job.tenant;
                    if job.in_drr {
                        job.in_drr = false;
                        drr.remove_job(tenant, v);
                    }
                }
                if queued_cost <= self.cfg.brownout.low_frac * self.cfg.queue_capacity_cost_s {
                    brownout = false;
                }
                refresh_queue_gauges!();
            }

            // Dispatch idle devices, ascending id.
            if !drained {
                for (d, dev) in devices.iter_mut().enumerate() {
                    if dev.inflight.is_some() || dev.lost {
                        continue;
                    }
                    if self.fleet.device_lost(d, t) {
                        dev.lost = true;
                        record(obs, "fleet_devices_lost", 1);
                        continue;
                    }
                    let (ok, tr) = dev.breaker.available(d, t);
                    if let Some(tr) = tr {
                        breaker_span(obs, &tr);
                        breaker_log.push(tr);
                    }
                    if !ok {
                        continue;
                    }
                    // Per-job brown-out relief: remodeling jobs have no
                    // checkpoint I/O to begin with, so they shed a deeper
                    // fraction of their modeled cost than checkpoint
                    // stretching buys — DRR then prefers their shots while
                    // the server is degraded.
                    let relief_for = |kind: Option<JobKind>| {
                        if !brownout {
                            1.0
                        } else if kind == Some(JobKind::RtmRandomBoundary) {
                            self.cfg.brownout.remodel_relief
                        } else {
                            self.cfg.brownout.ckpt_relief
                        }
                    };
                    let picked = drr.next_shot(
                        |j| jobs[j].shot_cost_s * relief_for(jobs[j].kind),
                        |j| jobs[j].remaining.len() > 1,
                    );
                    let Some((_tenant, j)) = picked else { break };
                    let relief = relief_for(jobs[j].kind);
                    let job = &mut jobs[j];
                    if job.remaining.len() <= 1 {
                        job.in_drr = false;
                    }
                    let Some(shot) = job.remaining.pop_front() else {
                        return Err(RtmError::MalformedPlan(format!(
                            "job {j} dequeued with no remaining shots"
                        )));
                    };
                    let eff_cost = job.shot_cost_s * relief;
                    let degraded_shot = brownout;
                    let att = run_shot_attempts(
                        d,
                        t,
                        eff_cost,
                        &self.fleet,
                        &self.cfg.retry,
                        &mut dev.attempt_seq,
                        job.deadline_s,
                        Some(&job.cancel),
                    );
                    if !job.started {
                        job.started = true;
                        job.first_start_s = t;
                        if let Some(o) = obs {
                            o.registry.observe("job_wait_s", t - job.arrival_s);
                        }
                    }
                    job.inflight += 1;
                    if let Some(o) = obs {
                        for ev in &att.events {
                            o.span(
                                Span::new(
                                    Track::Service(d as u32),
                                    SpanCat::Service,
                                    ev.name,
                                    ev.start_s,
                                    ev.dur_s,
                                )
                                .with_arg("job", j.to_string())
                                .with_arg("shot", shot.to_string()),
                            );
                        }
                        if att.retries > 0 {
                            o.registry.inc("shot_retries", att.retries);
                        }
                    }
                    dev.free_at = att.end_s;
                    dev.inflight = Some(InFlight {
                        job: j,
                        shot,
                        end_s: att.end_s,
                        outcome: att.outcome,
                        degraded: degraded_shot,
                    });
                }
            }

            // Next event time.
            let mut nt = f64::INFINITY;
            if let Some(&i) = arrivals.front() {
                nt = nt.min(scenario.jobs[i].arrival_s);
            }
            for d in &devices {
                if let Some(inf) = &d.inflight {
                    nt = nt.min(inf.end_s);
                }
            }
            if !drained && !drr.is_empty() {
                for d in devices.iter() {
                    if d.inflight.is_none() && !d.lost {
                        if let Some(r) = d.breaker.reopen_at() {
                            nt = nt.min(r);
                        }
                    }
                }
                // A queued job's future loss/deadline doesn't wake the
                // loop — only these device events can unblock dispatch.
            }
            if let Some(da) = drain_at_s {
                if !drained {
                    nt = nt.min(da);
                }
            }

            if !nt.is_finite() {
                // No future event. Anything still queued is stranded:
                // either we're draining (snapshot it) or the fleet died.
                break;
            }
            t = nt.max(t);
            makespan = makespan.max(t);

            // Drain trigger fires before anything else at this instant.
            if let Some(da) = drain_at_s {
                if !drained && t >= da {
                    drained = true;
                    record(obs, "drains_started", 1);
                }
            }

            // Completions at or before t, in (end, device) order.
            loop {
                let next_done = (0..devices.len())
                    .filter(|&d| {
                        devices[d]
                            .inflight
                            .as_ref()
                            .is_some_and(|inf| inf.end_s <= t)
                    })
                    .min_by(|&a, &b| {
                        let ea = devices[a].inflight.as_ref().map_or(f64::MAX, |i| i.end_s);
                        let eb = devices[b].inflight.as_ref().map_or(f64::MAX, |i| i.end_s);
                        ea.total_cmp(&eb).then(a.cmp(&b))
                    });
                let Some(d) = next_done else { break };
                let Some(inf) = devices[d].inflight.take() else {
                    break;
                };
                let j = inf.job;
                makespan = makespan.max(inf.end_s);
                match inf.outcome {
                    ShotOutcome::Completed { .. } => {
                        if let Some(tr) = devices[d].breaker.record_success(d, inf.end_s) {
                            breaker_span(obs, &tr);
                            breaker_log.push(tr);
                        }
                        let job = &mut jobs[j];
                        job.inflight -= 1;
                        if job.is_terminal() {
                            // Job was cancelled while this shot ran; the
                            // result is discarded.
                            continue;
                        }
                        job.completed.push(inf.shot);
                        job.degraded |= inf.degraded;
                        job.finish_s = job.finish_s.max(inf.end_s);
                        queued_cost -= job.shot_cost_s;
                        tenant_outstanding[job.tenant] -= job.shot_cost_s;
                        if let Payload::Rtm2(payload) = &job.payload {
                            // Physics runs off the scheduling path.
                            spawn_pool(&mut pool);
                            if let Some((tx, _, _)) = &pool {
                                let _ = tx.send((j, inf.shot, Arc::clone(payload)));
                            }
                        }
                        if job.remaining.is_empty()
                            && job.inflight == 0
                            && job.completed.len() == job.n_shots
                        {
                            let latency = job.finish_s - job.arrival_s;
                            job.outcome = Some(JobOutcome::Completed {
                                finish_s: job.finish_s,
                                latency_s: latency,
                                degraded: job.degraded,
                            });
                            record(obs, "jobs_completed", 1);
                            if let Some(o) = obs {
                                o.registry.observe("job_latency_s", latency);
                            }
                        }
                        refresh_queue_gauges!();
                    }
                    ShotOutcome::RetriesExhausted { at_s } => {
                        record(obs, "shots_failed", 1);
                        if let Some(tr) = devices[d].breaker.record_failure(d, at_s) {
                            breaker_span(obs, &tr);
                            breaker_log.push(tr);
                        }
                        let job = &mut jobs[j];
                        job.inflight -= 1;
                        if !job.is_terminal() {
                            job.remaining.push_front(inf.shot);
                            let tenant = job.tenant;
                            if !job.in_drr {
                                job.in_drr = true;
                                drr.requeue_front(tenant, j);
                            }
                        }
                    }
                    ShotOutcome::DeviceLost { .. } => {
                        devices[d].lost = true;
                        record(obs, "fleet_devices_lost", 1);
                        let job = &mut jobs[j];
                        job.inflight -= 1;
                        if !job.is_terminal() {
                            job.remaining.push_front(inf.shot);
                            let tenant = job.tenant;
                            if !job.in_drr {
                                job.in_drr = true;
                                drr.requeue_front(tenant, j);
                            }
                        }
                    }
                    ShotOutcome::DeadlineCancelled { at_s } => {
                        let job = &mut jobs[j];
                        job.inflight -= 1;
                        if !job.is_terminal() {
                            job.cancel.cancel();
                            job.outcome = Some(JobOutcome::CancelledDeadline { at_s });
                            cancelled += 1;
                            record(obs, "jobs_cancelled_deadline", 1);
                            job.remaining.push_front(inf.shot);
                            let freed = job.outstanding_cost_s();
                            queued_cost -= freed;
                            tenant_outstanding[job.tenant] -= freed;
                            let tenant = job.tenant;
                            if job.in_drr {
                                job.in_drr = false;
                                drr.remove_job(tenant, j);
                            }
                            refresh_queue_gauges!();
                        }
                    }
                    ShotOutcome::Cancelled { .. } => {
                        // Token observed: the job was already cancelled
                        // elsewhere; just reclaim the slot.
                        let job = &mut jobs[j];
                        job.inflight -= 1;
                        if !job.is_terminal() {
                            return Err(RtmError::MalformedPlan(format!(
                                "job {j} shot observed a cancelled token without a terminal outcome"
                            )));
                        }
                    }
                }
            }

            // Loop again; new arrivals, sweeps, and dispatches happen at
            // the top. (A non-empty queue with every device lost falls
            // out through the infinite-`nt` break above and is failed
            // below.)
            if arrivals.is_empty()
                && devices.iter().all(|d| d.inflight.is_none())
                && (drr.is_empty() || drained)
            {
                break;
            }
        }

        // Stranded queued jobs after the loop.
        for (j, job) in jobs.iter_mut().enumerate() {
            if job.is_terminal() {
                continue;
            }
            let unfinished = !job.remaining.is_empty() || job.completed.len() < job.n_shots;
            if !unfinished {
                continue;
            }
            if !drained {
                job.outcome = Some(JobOutcome::Failed {
                    error: "fleet exhausted: no device could run the remaining shots".to_string(),
                });
                record(obs, "jobs_failed", 1);
                let freed = job.outstanding_cost_s();
                queued_cost -= freed;
                tenant_outstanding[job.tenant] -= freed;
                if job.in_drr {
                    job.in_drr = false;
                    drr.remove_job(job.tenant, j);
                }
            }
        }
        refresh_queue_gauges!();

        // Collect physics results.
        let mut shot_images: Vec<std::collections::BTreeMap<usize, Field2>> =
            (0..jobs.len()).map(|_| Default::default()).collect();
        if let Some((tx, rx, handles)) = pool.take() {
            drop(tx);
            for h in handles {
                let _ = h.join();
            }
            while let Some((j, s, img)) = rx.try_recv() {
                shot_images[j].insert(s, img);
            }
        }

        // Snapshot of unfinished work (drain only), admission order.
        let snapshot = if drained {
            let mut snap_jobs = Vec::new();
            for (j, job) in jobs.iter().enumerate() {
                if job.is_terminal() {
                    continue;
                }
                if job.remaining.is_empty() && job.completed.len() == job.n_shots {
                    continue;
                }
                let mut completed: Vec<CompletedShot> = Vec::new();
                let mut done = job.completed.clone();
                done.sort_unstable();
                for &s in &done {
                    if let Some(pre) = job.preloaded.iter().find(|c| c.shot == s) {
                        completed.push(pre.clone());
                    } else if let Some(img) = shot_images[j].get(&s) {
                        completed.push(CompletedShot::from_field(s, img));
                    } else {
                        completed.push(CompletedShot::synthetic(s));
                    }
                }
                snap_jobs.push(SnapJob {
                    sub_idx: job.sub_idx,
                    remaining: job.remaining.iter().copied().collect(),
                    completed,
                    degraded: job.degraded,
                });
            }
            if snap_jobs.is_empty() {
                None
            } else {
                Some(QueueSnapshot {
                    drained_at_s: drain_at_s.unwrap_or(t),
                    jobs: snap_jobs,
                })
            }
        } else {
            None
        };

        // Stack images (shot order → bitwise deterministic) and assemble
        // outcomes.
        let mut images: Vec<Option<Field2>> = (0..n_subs).map(|_| None).collect();
        let mut served_by_tenant = vec![0.0f64; scenario.tenants.len()];
        let mut latencies: Vec<f64> = Vec::new();
        let mut goodput = 0.0f64;
        let mut completed_jobs = 0usize;
        for (j, job) in jobs.iter().enumerate() {
            let Some(out) = &job.outcome else {
                // Unfinished and drained: lives in the snapshot.
                outcomes[job.sub_idx] = Some(JobOutcome::Drained);
                continue;
            };
            if let JobOutcome::Completed { latency_s, .. } = out {
                completed_jobs += 1;
                latencies.push(*latency_s);
                goodput += job.job_cost_s();
                served_by_tenant[job.tenant] += job.job_cost_s();
                if matches!(job.payload, Payload::Rtm2(_)) {
                    let mut stack: Option<Field2> = None;
                    for s in 0..job.n_shots {
                        let from_pre = job.preloaded.iter().find(|c| c.shot == s);
                        let img = if let Some(pre) = from_pre {
                            pre.to_field()
                        } else {
                            shot_images[j].get(&s).cloned()
                        };
                        let Some(img) = img else {
                            return Err(RtmError::MalformedPlan(format!(
                                "completed job {j} is missing the image of shot {s}"
                            )));
                        };
                        match &mut stack {
                            None => stack = Some(img),
                            Some(acc) => {
                                for (a, v) in acc.as_mut_slice().iter_mut().zip(img.as_slice()) {
                                    *a += *v;
                                }
                            }
                        }
                    }
                    images[job.sub_idx] = stack;
                }
            }
            outcomes[job.sub_idx] = Some(out.clone());
        }

        let outcomes: Vec<JobOutcome> = outcomes
            .into_iter()
            .enumerate()
            .map(|(i, o)| {
                o.ok_or_else(|| {
                    RtmError::MalformedPlan(format!("submission {i} ended without an outcome"))
                })
            })
            .collect::<Result<_, _>>()?;

        latencies.sort_by(f64::total_cmp);
        let mean_latency = if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<f64>() / latencies.len() as f64
        };
        let p99 = if latencies.is_empty() {
            0.0
        } else {
            let idx = ((latencies.len() as f64 * 0.99).ceil() as usize).max(1) - 1;
            latencies[idx.min(latencies.len() - 1)]
        };

        Ok((
            ServeReport {
                outcomes,
                images,
                makespan_s: makespan,
                goodput_cost_s: goodput,
                offered_cost_s: offered_cost,
                mean_latency_s: mean_latency,
                p99_latency_s: p99,
                shed_rate: if admitted > 0 {
                    shed as f64 / admitted as f64
                } else {
                    0.0
                },
                served_cost_by_tenant: served_by_tenant,
                breaker_log,
                jobs_completed: completed_jobs,
                jobs_shed: shed,
                jobs_rejected: rejected,
                jobs_cancelled: cancelled,
            },
            snapshot,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobSpec, Scenario, Submission, Tenant};
    use accel_sim::fault::{FaultPlan, FaultRates};

    fn clean_fleet(n: usize) -> FleetFaultPlan {
        FleetFaultPlan::single(FaultPlan::generate(0, n, 1e7, FaultRates::none()))
    }

    fn one_tenant() -> Vec<Tenant> {
        vec![Tenant::new("acme", 1)]
    }

    fn sub(arrival: f64, spec: JobSpec) -> Submission {
        Submission {
            arrival_s: arrival,
            spec,
        }
    }

    #[test]
    fn single_job_completes_with_expected_latency() {
        let server = Server::new(
            ServerConfig {
                n_devices: 1,
                ..ServerConfig::default()
            },
            clean_fleet(1),
        );
        let scenario = Scenario {
            tenants: one_tenant(),
            jobs: vec![sub(0.0, JobSpec::synthetic(0, 1, 2, 2.0))],
        };
        let report = server.run(&scenario, None).unwrap();
        assert_eq!(report.jobs_completed, 1);
        match &report.outcomes[0] {
            JobOutcome::Completed {
                finish_s,
                latency_s,
                degraded,
            } => {
                assert_eq!(*finish_s, 4.0, "two 2 s shots back to back");
                assert_eq!(*latency_s, 4.0);
                assert!(!degraded);
            }
            o => panic!("expected completion, got {o:?}"),
        }
        assert_eq!(report.goodput_cost_s, 4.0);
        assert_eq!(report.served_cost_by_tenant, vec![4.0]);
    }

    #[test]
    fn rejections_are_typed() {
        let server = Server::new(
            ServerConfig {
                n_devices: 1,
                queue_capacity_cost_s: 10.0,
                tenant_quota_cost_s: 6.0,
                ..ServerConfig::default()
            },
            clean_fleet(1),
        );
        let scenario = Scenario {
            tenants: vec![Tenant::new("a", 1), Tenant::new("b", 1)],
            jobs: vec![
                // Fills tenant a's quota.
                sub(0.0, JobSpec::synthetic(0, 1, 3, 2.0)),
                // Tenant a again: over quota (6 + 2 > 6).
                sub(0.0, JobSpec::synthetic(0, 1, 1, 2.0)),
                // Tenant b: 6 + 6 > 10 → queue full.
                sub(0.0, JobSpec::synthetic(1, 1, 3, 2.0)),
                // Tenant b: deadline cannot be met even on an idle fleet.
                sub(0.0, JobSpec::synthetic(1, 1, 4, 2.0).with_deadline(3.0)),
                // Tenant b: zero shots is not a job.
                sub(0.0, JobSpec::synthetic(1, 1, 0, 2.0)),
            ],
        };
        let report = server.run(&scenario, None).unwrap();
        assert!(report.outcomes[0].is_completed());
        assert!(matches!(
            report.outcomes[1],
            JobOutcome::Rejected(Rejected::TenantQuotaExceeded { .. })
        ));
        assert!(matches!(
            report.outcomes[2],
            JobOutcome::Rejected(Rejected::QueueFull { .. })
        ));
        assert!(matches!(
            report.outcomes[3],
            JobOutcome::Rejected(Rejected::DeadlineInfeasible { .. })
        ));
        assert!(matches!(
            report.outcomes[4],
            JobOutcome::Rejected(Rejected::WorkloadInfeasible { .. })
        ));
        assert_eq!(report.jobs_rejected, 4);
    }

    #[test]
    fn weighted_tenants_split_the_device() {
        // Weight 2 vs weight 1, both fully backlogged on one device with
        // unit shots: by t=12 tenant 0 should have ~8 completions and
        // tenant 1 ~4.
        let server = Server::new(
            ServerConfig {
                n_devices: 1,
                queue_capacity_cost_s: 1e6,
                tenant_quota_cost_s: 1e6,
                ..ServerConfig::default()
            },
            clean_fleet(1),
        );
        let mut jobs = Vec::new();
        for _ in 0..12 {
            jobs.push(sub(0.0, JobSpec::synthetic(0, 1, 1, 1.0)));
            jobs.push(sub(0.0, JobSpec::synthetic(1, 1, 1, 1.0)));
        }
        let scenario = Scenario {
            tenants: vec![Tenant::new("heavy", 2), Tenant::new("light", 1)],
            jobs,
        };
        let report = server.run(&scenario, None).unwrap();
        let done_by = |tenant: usize, horizon: f64| {
            scenario
                .jobs
                .iter()
                .zip(&report.outcomes)
                .filter(|(s, o)| {
                    s.spec.tenant == tenant
                        && matches!(o, JobOutcome::Completed { finish_s, .. } if *finish_s <= horizon + 1e-9)
                })
                .count() as f64
        };
        let h0 = done_by(0, 12.0);
        let h1 = done_by(1, 12.0);
        assert!(
            (h0 - 8.0).abs() <= 1.0 && (h1 - 4.0).abs() <= 1.0,
            "weight-proportional service: heavy={h0} light={h1}"
        );
        assert_eq!(report.jobs_completed, 24, "everything completes eventually");
    }

    #[test]
    fn queued_job_past_deadline_is_cancelled_not_run() {
        let server = Server::new(
            ServerConfig {
                n_devices: 1,
                ..ServerConfig::default()
            },
            clean_fleet(1),
        );
        let scenario = Scenario {
            tenants: one_tenant(),
            jobs: vec![
                sub(0.0, JobSpec::synthetic(0, 5, 1, 10.0)),
                // Feasible on an idle fleet, but stuck behind the 10 s job.
                sub(0.1, JobSpec::synthetic(0, 1, 1, 2.0).with_deadline(5.0)),
            ],
        };
        let report = server.run(&scenario, None).unwrap();
        assert!(report.outcomes[0].is_completed());
        assert!(
            matches!(report.outcomes[1], JobOutcome::CancelledDeadline { .. }),
            "got {:?}",
            report.outcomes[1]
        );
        assert_eq!(report.jobs_cancelled, 1);
        // The device never ran the cancelled job: makespan is the first
        // job's span only.
        assert_eq!(report.makespan_s, 10.0);
    }

    #[test]
    fn brownout_sheds_lowest_priority_only() {
        let server = Server::new(
            ServerConfig {
                n_devices: 1,
                queue_capacity_cost_s: 20.0,
                tenant_quota_cost_s: 1e6,
                brownout: BrownoutConfig {
                    high_frac: 0.85,
                    low_frac: 0.60,
                    ckpt_relief: 0.9,
                    remodel_relief: 0.75,
                },
                ..ServerConfig::default()
            },
            clean_fleet(1),
        );
        let scenario = Scenario {
            tenants: one_tenant(),
            jobs: vec![
                sub(0.0, JobSpec::synthetic(0, 5, 2, 5.0)),
                sub(0.0, JobSpec::synthetic(0, 1, 1, 5.0)),
                sub(0.0, JobSpec::synthetic(0, 2, 1, 5.0)),
            ],
        };
        let report = server.run(&scenario, None).unwrap();
        // 10 + 5 + 5 = 20 > 17 (high watermark) → shed priority 1 then
        // priority 2, landing at 10 ≤ 12 (low watermark).
        assert!(
            report.outcomes[0].is_completed(),
            "{:?}",
            report.outcomes[0]
        );
        assert!(matches!(report.outcomes[1], JobOutcome::Shed { .. }));
        assert!(matches!(report.outcomes[2], JobOutcome::Shed { .. }));
        assert_eq!(report.jobs_shed, 2);
        assert!((report.shed_rate - 2.0 / 3.0).abs() < 1e-12);
    }

    /// Under brown-out, random-boundary jobs get a deeper relief multiplier
    /// than checkpointed RTM, so deficit round-robin prefers their shots:
    /// the same scenario finishes the remodeling job strictly earlier when
    /// `remodel_relief < ckpt_relief` than when the two are equal.
    #[test]
    fn brownout_prefers_random_boundary_jobs() {
        use crate::cost::price_shot_cost;
        use crate::job::{JobCost, JobKind, Payload};
        use rtm_core::case::{SeismicCase, Workload};
        use seismic_model::footprint::{Dims, Formulation};

        let case = SeismicCase {
            formulation: Formulation::Isotropic,
            dims: Dims::Two,
        };
        let wl = Workload {
            nx: 24,
            ny: 1,
            nz: 24,
            steps: 40,
            snap_period: 4,
            n_receivers: 8,
        };
        let priced = |tenant: usize, kind: JobKind| JobSpec {
            tenant,
            priority: 5,
            deadline_s: None,
            n_shots: 10,
            cost: JobCost::Priced {
                case,
                workload: wl,
                kind,
            },
            payload: Payload::Synthetic,
        };
        // The server prices with the same defaults, so these match its
        // internal per-shot costs exactly (and warm the probe cache).
        let cfg = rtm_core::OptimizationConfig::default();
        let c_rtm = price_shot_cost(
            &case,
            &wl,
            JobKind::Rtm,
            &cfg,
            Cluster::CrayXc30,
            Compiler::Cray,
        )
        .unwrap();
        let c_rb = price_shot_cost(
            &case,
            &wl,
            JobKind::RtmRandomBoundary,
            &cfg,
            Cluster::CrayXc30,
            Compiler::Cray,
        )
        .unwrap();
        let total = 10.0 * (c_rtm + c_rb);
        // The trigger arrives once the single device has necessarily
        // exhausted the checkpointed job's 10 shots and is mid-flight on a
        // remodeling shot — true for any DRR interleaving, because the
        // device is continuously busy and the checkpointed job can absorb
        // at most 10·c_rtm of that service.
        let trigger_at = 10.0 * c_rtm + 0.5 * c_rb;
        // Outstanding cost at the trigger is ≈ 9.5–10.5 shots of the
        // remodeling job; this trigger cost lands the queue strictly
        // between the high watermark and capacity for that whole range.
        let trigger_cost = 1.2 * total - 10.0 * c_rb;

        // Timeline: the low-priority trigger submission pushes the queue
        // over the high watermark, is shed (never started), and the
        // started remodeling job drains the rest of the way under
        // brown-out relief.
        let run = |remodel_relief: f64| {
            let server = Server::new(
                ServerConfig {
                    n_devices: 1,
                    queue_capacity_cost_s: 1.3 * total,
                    tenant_quota_cost_s: 1e9,
                    brownout: BrownoutConfig {
                        high_frac: 0.85,
                        low_frac: 0.10,
                        ckpt_relief: 0.90,
                        remodel_relief,
                    },
                    ..ServerConfig::default()
                },
                clean_fleet(1),
            );
            let scenario = Scenario {
                tenants: vec![
                    Tenant::new("ckpt", 1),
                    Tenant::new("remodel", 1),
                    Tenant::new("noise", 1),
                ],
                jobs: vec![
                    sub(0.0, priced(0, JobKind::Rtm)),
                    sub(0.0, priced(1, JobKind::RtmRandomBoundary)),
                    sub(trigger_at, JobSpec::synthetic(2, 0, 1, trigger_cost)),
                ],
            };
            server.run(&scenario, None).unwrap()
        };
        let finish_of = |r: &ServeReport, i: usize| match &r.outcomes[i] {
            JobOutcome::Completed {
                finish_s, degraded, ..
            } => (*finish_s, *degraded),
            o => panic!("job {i} should complete, got {o:?}"),
        };

        let preferred = run(0.75);
        let control = run(0.90);
        for r in [&preferred, &control] {
            assert!(
                matches!(r.outcomes[2], JobOutcome::Shed { .. }),
                "trigger job must be shed, got {:?}",
                r.outcomes[2]
            );
        }
        let (rb_pref, rb_degraded) = finish_of(&preferred, 1);
        let (rb_ctrl, _) = finish_of(&control, 1);
        assert!(rb_degraded, "remodeling shots must run under brown-out");
        assert!(
            rb_pref < rb_ctrl,
            "deeper remodel relief must finish the random-boundary job \
             earlier: preferred={rb_pref} control={rb_ctrl}"
        );
        // The checkpointed job completes in both runs either way.
        let (rtm_pref, _) = finish_of(&preferred, 0);
        let (rtm_ctrl, _) = finish_of(&control, 0);
        assert_eq!(
            rtm_pref, rtm_ctrl,
            "the checkpointed job's schedule is untouched by remodel relief"
        );
    }

    #[test]
    fn breaker_opens_and_recovers_under_transient_faults() {
        let rates = FaultRates {
            transient_oom_prob: 0.5,
            ..FaultRates::none()
        };
        // Deterministic seed scan: find a seed whose serve trips at least
        // one breaker and still completes all jobs.
        for seed in 0..64u64 {
            let fleet = FleetFaultPlan::single(FaultPlan::generate(seed, 1, 1e7, rates));
            let server = Server::new(
                ServerConfig {
                    n_devices: 1,
                    retry: RetryPolicy {
                        max_retries: 0,
                        base_delay_s: 0.1,
                        max_delay_s: 1.0,
                    },
                    breaker: BreakerConfig {
                        failure_threshold: 2,
                        cooldown_s: 5.0,
                        probe_shots: 1,
                    },
                    ..ServerConfig::default()
                },
                fleet,
            );
            let scenario = Scenario {
                tenants: one_tenant(),
                jobs: vec![sub(0.0, JobSpec::synthetic(0, 1, 12, 1.0))],
            };
            let report = server.run(&scenario, None).unwrap();
            assert_eq!(report.jobs_completed, 1, "seed {seed}");
            let opened = report.breaker_log.iter().filter(|t| t.to == "open").count();
            if opened > 0 {
                let half = report
                    .breaker_log
                    .iter()
                    .filter(|t| t.to == "half_open")
                    .count();
                let closed = report
                    .breaker_log
                    .iter()
                    .filter(|t| t.to == "closed")
                    .count();
                assert!(half > 0, "an opened breaker must half-open after cooldown");
                assert!(closed > 0, "a successful probe must re-close");
                // Transitions are time-ordered.
                for w in report.breaker_log.windows(2) {
                    assert!(w[0].at_s <= w[1].at_s);
                }
                return;
            }
        }
        panic!("no seed in 0..64 tripped a breaker at p=0.5");
    }

    #[test]
    fn serve_is_deterministic() {
        let rates = FaultRates {
            transient_oom_prob: 0.2,
            ..FaultRates::none()
        };
        let mk = || {
            let fleet = FleetFaultPlan::single(FaultPlan::generate(11, 2, 1e7, rates));
            let server = Server::new(
                ServerConfig {
                    n_devices: 2,
                    ..ServerConfig::default()
                },
                fleet,
            );
            let scenario = Scenario {
                tenants: vec![Tenant::new("a", 2), Tenant::new("b", 1)],
                jobs: vec![
                    sub(0.0, JobSpec::synthetic(0, 3, 5, 1.5)),
                    sub(0.5, JobSpec::synthetic(1, 2, 4, 2.0).with_deadline(60.0)),
                    sub(1.0, JobSpec::synthetic(0, 1, 3, 1.0)),
                ],
            };
            server.run(&scenario, None).unwrap()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.makespan_s, b.makespan_s);
        assert_eq!(a.breaker_log, b.breaker_log);
        assert_eq!(a.served_cost_by_tenant, b.served_cost_by_tenant);
    }

    #[test]
    fn synthetic_drain_resume_completes_everything() {
        let cfg = ServerConfig {
            n_devices: 1,
            queue_capacity_cost_s: 1e6,
            tenant_quota_cost_s: 1e6,
            ..ServerConfig::default()
        };
        let scenario = Scenario {
            tenants: one_tenant(),
            jobs: (0..4)
                .map(|i| sub(0.0, JobSpec::synthetic(0, 1, 1, 2.0 + i as f64 * 0.0)))
                .collect(),
        };
        let server = Server::new(cfg.clone(), clean_fleet(1));
        let (r1, snap) = server.run_with_drain(&scenario, 3.0, None).unwrap();
        let snap = snap.expect("work was left at drain time");
        assert!(snap.drained_at_s == 3.0);
        let drained1 = r1
            .outcomes
            .iter()
            .filter(|o| matches!(o, JobOutcome::Drained))
            .count();
        assert_eq!(snap.jobs.len(), drained1);
        assert!(drained1 >= 1, "drain at 3.0 must strand work");
        // Round-trip the snapshot through JSON, as a real restart would.
        let json = serde_json::to_string(&snap.to_json());
        let snap = QueueSnapshot::from_json(&serde_json::from_str(&json).unwrap()).unwrap();
        let r2 = server.resume(&snap, &scenario, None).unwrap();
        for (i, o1) in r1.outcomes.iter().enumerate() {
            match o1 {
                JobOutcome::Drained => {
                    assert!(
                        r2.outcomes[i].is_completed(),
                        "job {i} must finish on resume, got {:?}",
                        r2.outcomes[i]
                    );
                }
                JobOutcome::Completed { .. } => {
                    assert!(
                        matches!(r2.outcomes[i], JobOutcome::Rejected(Rejected::Draining)),
                        "already-settled jobs are not replayed"
                    );
                }
                o => panic!("unexpected first-run outcome {o:?}"),
            }
        }
    }

    #[test]
    fn device_loss_moves_work_to_survivors() {
        // Device 0 dies at t=1.0; its queued shots must finish on device 1.
        let rates = FaultRates {
            device_lost_mtti_s: 4.0,
            ..FaultRates::none()
        };
        let mut chosen = None;
        for seed in 0..200u64 {
            // Short horizon: loss events only exist inside it, so a seed
            // where device 1 has no arrival before 8.0 s keeps it alive
            // for the whole serve.
            let p = FaultPlan::generate(seed, 2, 8.0, rates);
            let lost0 = p.device_lost_at(0);
            let lost1 = p.device_lost_at(1);
            if lost0.is_some_and(|t| t < 5.0) && lost1.is_none() {
                chosen = Some(p);
                break;
            }
        }
        let fleet = FleetFaultPlan::single(chosen.expect("seed with one early loss"));
        let server = Server::new(
            ServerConfig {
                n_devices: 2,
                queue_capacity_cost_s: 1e6,
                tenant_quota_cost_s: 1e6,
                ..ServerConfig::default()
            },
            fleet,
        );
        let scenario = Scenario {
            tenants: one_tenant(),
            jobs: vec![sub(0.0, JobSpec::synthetic(0, 1, 8, 1.0))],
        };
        let report = server.run(&scenario, None).unwrap();
        assert_eq!(report.jobs_completed, 1, "{:?}", report.outcomes[0]);
    }
}
