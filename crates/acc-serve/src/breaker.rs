//! Per-device circuit breakers.
//!
//! A device whose allocations keep transiently failing burns queue time
//! on every retry loop it loses. Permanent blacklisting (PR 1's answer)
//! is wrong for *transient* pathologies — a driver hiccup or a neighbor
//! job thrashing the device clears up. The breaker gives the middle
//! ground: after `failure_threshold` consecutive shot-level failures the
//! device **opens** for `cooldown_s` of simulated time (no dispatch),
//! then **half-opens** and admits a limited number of probe shots; probe
//! success re-**closes** it, probe failure re-opens it for another
//! cooldown. Every transition is logged and (when observing) counted and
//! placed on the device's service track.

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive shot-level failures that open the breaker.
    pub failure_threshold: u32,
    /// How long an open breaker blocks dispatch, simulated seconds.
    pub cooldown_s: f64,
    /// Probe successes required to close from half-open.
    pub probe_shots: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            cooldown_s: 30.0,
            probe_shots: 1,
        }
    }
}

/// Breaker state machine position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BreakerState {
    /// Healthy: dispatch freely; counts consecutive failures.
    Closed {
        /// Consecutive shot-level failures so far.
        consecutive_failures: u32,
    },
    /// Tripped: no dispatch until `until_s`.
    Open {
        /// When the breaker half-opens.
        until_s: f64,
    },
    /// Probing: dispatch allowed; counts probe successes.
    HalfOpen {
        /// Probe successes so far.
        successes: u32,
    },
}

/// One logged transition, for the report and the timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakerTransition {
    /// Device the breaker guards.
    pub device: usize,
    /// Transition time, simulated seconds.
    pub at_s: f64,
    /// State entered: `"open"`, `"half_open"`, or `"closed"`.
    pub to: &'static str,
}

/// Circuit breaker for one device.
#[derive(Debug, Clone)]
pub struct Breaker {
    cfg: BreakerConfig,
    state: BreakerState,
}

impl Breaker {
    /// New breaker, closed.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self {
            cfg,
            state: BreakerState::Closed {
                consecutive_failures: 0,
            },
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// May the device take a shot at `t_s`? Moves Open → HalfOpen when
    /// the cooldown has elapsed (recorded via the returned transition).
    pub fn available(&mut self, device: usize, t_s: f64) -> (bool, Option<BreakerTransition>) {
        match self.state {
            BreakerState::Closed { .. } | BreakerState::HalfOpen { .. } => (true, None),
            BreakerState::Open { until_s } => {
                if t_s >= until_s {
                    self.state = BreakerState::HalfOpen { successes: 0 };
                    (
                        true,
                        Some(BreakerTransition {
                            device,
                            at_s: t_s,
                            to: "half_open",
                        }),
                    )
                } else {
                    (false, None)
                }
            }
        }
    }

    /// Earliest future time dispatch could resume (None when not open).
    pub fn reopen_at(&self) -> Option<f64> {
        match self.state {
            BreakerState::Open { until_s } => Some(until_s),
            _ => None,
        }
    }

    /// Record a shot-level success at `t_s`.
    pub fn record_success(&mut self, device: usize, t_s: f64) -> Option<BreakerTransition> {
        match self.state {
            BreakerState::Closed {
                consecutive_failures,
            } if consecutive_failures > 0 => {
                self.state = BreakerState::Closed {
                    consecutive_failures: 0,
                };
                None
            }
            BreakerState::HalfOpen { successes } => {
                let successes = successes + 1;
                if successes >= self.cfg.probe_shots {
                    self.state = BreakerState::Closed {
                        consecutive_failures: 0,
                    };
                    Some(BreakerTransition {
                        device,
                        at_s: t_s,
                        to: "closed",
                    })
                } else {
                    self.state = BreakerState::HalfOpen { successes };
                    None
                }
            }
            _ => None,
        }
    }

    /// Record a shot-level failure (retry budget exhausted) at `t_s`.
    pub fn record_failure(&mut self, device: usize, t_s: f64) -> Option<BreakerTransition> {
        match self.state {
            BreakerState::Closed {
                consecutive_failures,
            } => {
                let fails = consecutive_failures + 1;
                if fails >= self.cfg.failure_threshold {
                    self.state = BreakerState::Open {
                        until_s: t_s + self.cfg.cooldown_s,
                    };
                    Some(BreakerTransition {
                        device,
                        at_s: t_s,
                        to: "open",
                    })
                } else {
                    self.state = BreakerState::Closed {
                        consecutive_failures: fails,
                    };
                    None
                }
            }
            BreakerState::HalfOpen { .. } => {
                // A failed probe re-opens immediately.
                self.state = BreakerState::Open {
                    until_s: t_s + self.cfg.cooldown_s,
                };
                Some(BreakerTransition {
                    device,
                    at_s: t_s,
                    to: "open",
                })
            }
            BreakerState::Open { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 2,
            cooldown_s: 10.0,
            probe_shots: 1,
        }
    }

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let mut b = Breaker::new(cfg());
        assert!(b.record_failure(0, 1.0).is_none());
        let t = b.record_failure(0, 2.0).expect("second failure opens");
        assert_eq!(t.to, "open");
        assert_eq!(b.reopen_at(), Some(12.0));
        assert!(!b.available(0, 5.0).0, "open blocks dispatch");
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = Breaker::new(cfg());
        b.record_failure(0, 1.0);
        b.record_success(0, 2.0);
        assert!(
            b.record_failure(0, 3.0).is_none(),
            "streak restarted after success"
        );
    }

    #[test]
    fn half_open_probe_success_closes() {
        let mut b = Breaker::new(cfg());
        b.record_failure(0, 0.0);
        b.record_failure(0, 1.0);
        // Cooldown elapses → half-open.
        let (ok, tr) = b.available(0, 11.5);
        assert!(ok);
        assert_eq!(tr.unwrap().to, "half_open");
        let t = b.record_success(0, 12.0).expect("probe success closes");
        assert_eq!(t.to, "closed");
        assert!(matches!(
            b.state(),
            BreakerState::Closed {
                consecutive_failures: 0
            }
        ));
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let mut b = Breaker::new(cfg());
        b.record_failure(0, 0.0);
        b.record_failure(0, 1.0);
        b.available(0, 11.0);
        let t = b.record_failure(0, 11.5).expect("failed probe reopens");
        assert_eq!(t.to, "open");
        assert_eq!(b.reopen_at(), Some(21.5));
    }

    #[test]
    fn multi_probe_close_needs_all_successes() {
        let mut b = Breaker::new(BreakerConfig {
            probe_shots: 2,
            ..cfg()
        });
        b.record_failure(0, 0.0);
        b.record_failure(0, 1.0);
        b.available(0, 11.0);
        assert!(
            b.record_success(0, 12.0).is_none(),
            "first probe not enough"
        );
        assert_eq!(b.record_success(0, 13.0).unwrap().to, "closed");
    }
}
