//! Weighted fair queueing across tenants: deficit round-robin (DRR) at
//! shot granularity.
//!
//! Each backlogged tenant sits in a round-robin ring. On each visit a
//! tenant earns `weight × quantum_unit` seconds of deficit and dispatches
//! head-of-line shots while its deficit covers their cost. The quantum
//! unit tracks the largest shot cost ever enqueued, which bounds the scan
//! at roughly two ring passes per dequeue and gives the classic DRR
//! fairness bound: over any backlogged interval, a tenant's served cost
//! deviates from its weight share by at most one maximum job cost.
//!
//! The queue stores job ids only; shot costs and remaining-shot counts
//! live with the caller, supplied through a lookup at dequeue time. Jobs
//! within one tenant are FIFO.

use std::collections::VecDeque;

/// Per-tenant DRR state.
#[derive(Debug, Clone)]
struct TenantQueue {
    weight: u32,
    deficit: f64,
    jobs: VecDeque<usize>,
}

/// Deficit round-robin scheduler over tenant job queues.
#[derive(Debug, Clone)]
pub struct DrrQueue {
    tenants: Vec<TenantQueue>,
    /// Backlogged tenants, round-robin order.
    ring: VecDeque<usize>,
    /// Current quantum unit: the largest single-shot cost seen.
    quantum_unit: f64,
}

impl DrrQueue {
    /// Queue over `weights.len()` tenants.
    pub fn new(weights: &[u32]) -> Self {
        Self {
            tenants: weights
                .iter()
                .map(|&w| TenantQueue {
                    weight: w.max(1),
                    deficit: 0.0,
                    jobs: VecDeque::new(),
                })
                .collect(),
            ring: VecDeque::new(),
            quantum_unit: 1.0,
        }
    }

    /// True when no tenant has queued work.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Jobs queued across all tenants.
    pub fn len(&self) -> usize {
        self.tenants.iter().map(|t| t.jobs.len()).sum()
    }

    /// Enqueue `job` for `tenant` (FIFO within the tenant);
    /// `max_shot_cost_s` keeps the quantum unit current.
    pub fn enqueue(&mut self, tenant: usize, job: usize, max_shot_cost_s: f64) {
        self.quantum_unit = self.quantum_unit.max(max_shot_cost_s);
        let was_empty = self.tenants[tenant].jobs.is_empty();
        self.tenants[tenant].jobs.push_back(job);
        if was_empty {
            self.ring.push_back(tenant);
        }
    }

    /// Put `job` back at the *front* of its tenant's queue (a shot failed
    /// on a device and must be re-dispatched without losing its turn).
    pub fn requeue_front(&mut self, tenant: usize, job: usize) {
        let was_empty = self.tenants[tenant].jobs.is_empty();
        self.tenants[tenant].jobs.push_front(job);
        if was_empty {
            // Rejoin at the ring head: the tenant already paid deficit for
            // this work.
            self.ring.push_front(tenant);
        }
    }

    /// Remove every queued occurrence of `job` (the job was shed or
    /// cancelled). Returns true when anything was removed.
    pub fn remove_job(&mut self, tenant: usize, job: usize) -> bool {
        let q = &mut self.tenants[tenant];
        let before = q.jobs.len();
        q.jobs.retain(|&j| j != job);
        if q.jobs.is_empty() && before > 0 {
            q.deficit = 0.0;
            self.ring.retain(|&t| t != tenant);
        }
        before != q.jobs.len()
    }

    /// Dequeue the next shot's job under DRR. `shot_cost` maps a queued
    /// job id to its next shot's cost; `has_more_shots` reports whether
    /// the job still has undispatched shots *after* this one. Returns
    /// `(tenant, job)` or None when idle.
    pub fn next_shot(
        &mut self,
        mut shot_cost: impl FnMut(usize) -> f64,
        mut has_more_shots: impl FnMut(usize) -> bool,
    ) -> Option<(usize, usize)> {
        // quantum_unit ≥ every queued shot cost, so each tenant needs at
        // most ⌈1/weight⌉ ≤ 1 extra visit to afford its head shot: the
        // ring settles within two passes. The bound below is a hard stop
        // against a miscosted job, not the expected path.
        let mut visits = 0usize;
        let max_visits = 2 * self.ring.len().max(1) + 2;
        while visits < max_visits {
            let &t = self.ring.front()?;
            let cost = {
                let q = &self.tenants[t];
                let &job = q.jobs.front().expect("backlogged tenant in ring");
                shot_cost(job)
            };
            if self.tenants[t].deficit >= cost {
                let q = &mut self.tenants[t];
                q.deficit -= cost;
                let &job = q.jobs.front().expect("backlogged tenant in ring");
                if !has_more_shots(job) {
                    q.jobs.pop_front();
                    if q.jobs.is_empty() {
                        q.deficit = 0.0;
                        self.ring.pop_front();
                    }
                }
                return Some((t, job));
            }
            // Can't afford the head shot: earn a quantum and rotate.
            let quantum = self.quantum_unit * f64::from(self.tenants[t].weight);
            self.tenants[t].deficit += quantum;
            self.ring.rotate_left(1);
            visits += 1;
        }
        None
    }

    /// Queued job ids of one tenant, front first (snapshot/drain order).
    pub fn queued_jobs(&self, tenant: usize) -> impl Iterator<Item = usize> + '_ {
        self.tenants[tenant].jobs.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drain `n` dequeues with unit shot cost and single-shot jobs.
    fn drain(q: &mut DrrQueue, n: usize) -> Vec<(usize, usize)> {
        (0..n)
            .map_while(|_| q.next_shot(|_| 1.0, |_| false))
            .collect()
    }

    #[test]
    fn single_tenant_is_fifo() {
        let mut q = DrrQueue::new(&[1]);
        for j in 0..3 {
            q.enqueue(0, j, 1.0);
        }
        let order: Vec<usize> = drain(&mut q, 3).into_iter().map(|(_, j)| j).collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert!(q.is_empty());
    }

    #[test]
    fn weights_split_service_proportionally() {
        // Tenant 0 weight 2, tenant 1 weight 1, both deeply backlogged.
        let mut q = DrrQueue::new(&[2, 1]);
        for j in 0..30 {
            q.enqueue(0, j, 1.0);
            q.enqueue(1, 100 + j, 1.0);
        }
        let first = drain(&mut q, 30);
        let t0 = first.iter().filter(|&&(t, _)| t == 0).count();
        let t1 = first.len() - t0;
        // 2:1 split within one max job cost of exact.
        assert!(
            (t0 as f64 - 20.0).abs() <= 1.0 && (t1 as f64 - 10.0).abs() <= 1.0,
            "t0={t0} t1={t1}"
        );
    }

    #[test]
    fn multi_shot_job_stays_at_head_until_exhausted() {
        let mut q = DrrQueue::new(&[1]);
        q.enqueue(0, 7, 1.0);
        q.enqueue(0, 8, 1.0);
        let mut remaining = 3u32; // job 7 has three shots
        let mut order = Vec::new();
        while let Some((_, j)) = q.next_shot(|_| 1.0, |j| j == 7 && remaining > 1) {
            if j == 7 {
                remaining -= 1;
            }
            order.push(j);
        }
        assert_eq!(order, vec![7, 7, 7, 8]);
    }

    #[test]
    fn remove_job_unlinks_tenant_when_empty() {
        let mut q = DrrQueue::new(&[1, 1]);
        q.enqueue(0, 1, 1.0);
        q.enqueue(1, 2, 1.0);
        assert!(q.remove_job(0, 1));
        assert!(!q.remove_job(0, 1), "already gone");
        let rest = drain(&mut q, 4);
        assert_eq!(rest, vec![(1, 2)]);
    }

    #[test]
    fn requeue_front_preserves_turn() {
        let mut q = DrrQueue::new(&[1]);
        q.enqueue(0, 1, 1.0);
        q.enqueue(0, 2, 1.0);
        let (_, j) = q.next_shot(|_| 1.0, |_| false).unwrap();
        assert_eq!(j, 1);
        q.requeue_front(0, 1);
        let order: Vec<usize> = drain(&mut q, 3).into_iter().map(|(_, j)| j).collect();
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn costly_shots_respect_weights_too() {
        // Tenant 0's shots cost 3.0, tenant 1's cost 1.0; equal weights →
        // tenant 1 should complete ~3× as many shots.
        let mut q = DrrQueue::new(&[1, 1]);
        for j in 0..20 {
            q.enqueue(0, j, 3.0);
            q.enqueue(1, 100 + j, 3.0);
        }
        let mut t0_cost = 0.0f64;
        let mut t1_cost = 0.0f64;
        for _ in 0..20 {
            let Some((t, j)) = q.next_shot(|j| if j < 100 { 3.0 } else { 1.0 }, |_| false) else {
                break;
            };
            if t == 0 {
                t0_cost += 3.0;
                assert!(j < 100);
            } else {
                t1_cost += 1.0;
            }
        }
        // Served cost (not shot count) balances under DRR.
        assert!(
            (t0_cost - t1_cost).abs() <= 3.0,
            "t0_cost={t0_cost} t1_cost={t1_cost}"
        );
    }
}
