//! `acc-serve`: a multi-tenant survey job server over the simulated GPU
//! fleet.
//!
//! A production migration cluster is shared: several processing teams
//! submit RTM and modeling surveys against the same pool of accelerator
//! nodes, with different priorities and delivery deadlines. This crate
//! models that control plane end to end, deterministically:
//!
//! - **Admission control** ([`server`]): a cost-bounded queue. Each job's
//!   per-shot cost is priced from the paper's timing model ([`cost`]);
//!   submissions that would overflow the queue, bust their own deadline,
//!   or exceed the tenant's outstanding-cost quota are rejected with a
//!   typed [`Rejected`] reason instead of being accepted and dropped.
//! - **Weighted fair queueing** ([`fair`]): deficit round-robin across
//!   tenants at shot granularity, so one tenant's burst cannot starve the
//!   others beyond its weight share.
//! - **Deadlines and cancellation**: each job's deadline budget is
//!   propagated into the per-shot retry loop
//!   ([`rtm_core::resilient::run_shot_attempts`]) so a shot that can no
//!   longer finish in time is cancelled *before* burning device time, and
//!   the device slot is reclaimed immediately.
//! - **Circuit breakers** ([`breaker`]): a device that keeps failing
//!   transiently is opened for a cooldown instead of being hammered,
//!   half-open probes re-admit it, and every transition lands in the
//!   observability registry and timeline.
//! - **Load shedding / brown-out**: past a high watermark the server
//!   sheds the lowest-priority queued jobs and stretches checkpoint
//!   cadence (modeled as a cost relief on subsequent shots) until the
//!   backlog falls below the low watermark.
//! - **Graceful drain** ([`snapshot`]): a drain request finishes in-flight
//!   shots, persists a resumable queue snapshot (completed shot images
//!   included, bit-exact), and a resumed server produces stacked images
//!   bitwise identical to an uninterrupted run.
//!
//! Scheduling runs in simulated time and is a pure function of the
//! scenario, the server configuration, and the fleet fault plan; the
//! physics of real payloads runs on worker threads (crossbeam channels),
//! but no scheduling decision depends on a physics result, so the whole
//! serve is deterministic.

pub mod breaker;
pub mod cost;
pub mod fair;
pub mod job;
pub mod server;
pub mod snapshot;

pub use breaker::{BreakerConfig, BreakerState, BreakerTransition};
pub use cost::price_shot_cost;
pub use fair::DrrQueue;
pub use job::{
    JobCost, JobKind, JobOutcome, JobSpec, Payload, Rejected, RtmJob, Scenario, Submission, Tenant,
};
pub use server::{BrownoutConfig, ServeReport, Server, ServerConfig};
pub use snapshot::QueueSnapshot;
