//! Admission-time job pricing from the paper's timing model.
//!
//! Admission control needs each shot's cost in gp·s of device time
//! *before* the job runs. Running the full timing model per submission
//! would make admission as expensive as the job itself, so the pricer
//! runs a **probe**: the same case and grid with the step count capped at
//! [`PROBE_STEPS`], then extrapolates linearly in the step count (both
//! drivers are step-linear once the fixed setup cost is amortized — the
//! probe includes that setup, making the estimate conservative).
//! Prices are cached per (case, workload, kind, cluster, compiler), so a
//! burst of identical submissions prices exactly one probe.

use crate::job::JobKind;
use openacc_sim::compiler::Compiler;
use parking_lot::Mutex;
use rtm_core::case::{Cluster, SeismicCase, Workload};
use rtm_core::gpu_time::{modeling_time, rand_bound_time, rtm_time};
use rtm_core::OptimizationConfig;
use std::collections::BTreeMap;

/// Step cap of the pricing probe.
pub const PROBE_STEPS: usize = 4;

/// Process-wide probe cache: same key → same price without a second
/// probe run.
fn price_cache() -> &'static Mutex<BTreeMap<String, f64>> {
    static CACHE: std::sync::OnceLock<Mutex<BTreeMap<String, f64>>> = std::sync::OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn cache_key(
    case: &SeismicCase,
    w: &Workload,
    kind: JobKind,
    cluster: Cluster,
    compiler: Compiler,
) -> String {
    format!(
        "{:?}|{}x{}x{} s{} p{} r{}|{:?}|{:?}|{:?}",
        case, w.nx, w.ny, w.nz, w.steps, w.snap_period, w.n_receivers, kind, cluster, compiler
    )
}

/// Price one shot of the given case/workload in estimated device seconds.
/// Deterministic; errors (as a human-readable string suitable for
/// [`crate::job::Rejected::WorkloadInfeasible`]) when the timing model
/// rejects the workload.
pub fn price_shot_cost(
    case: &SeismicCase,
    workload: &Workload,
    kind: JobKind,
    config: &OptimizationConfig,
    cluster: Cluster,
    compiler: Compiler,
) -> Result<f64, String> {
    let key = cache_key(case, workload, kind, cluster, compiler);
    if let Some(&hit) = price_cache().lock().get(&key) {
        return Ok(hit);
    }
    let probe = Workload {
        steps: workload.steps.clamp(1, PROBE_STEPS),
        ..*workload
    };
    let run = match kind {
        JobKind::Rtm => rtm_time(case, config, compiler, cluster, &probe),
        JobKind::Modeling => modeling_time(case, config, compiler, cluster, &probe),
        JobKind::RtmRandomBoundary => rand_bound_time(case, config, compiler, cluster, &probe),
    }
    .map_err(|e| e.to_string())?;
    let per_step = run.breakdown.total_s / probe.steps as f64;
    let price = per_step * workload.steps.max(1) as f64;
    if !price.is_finite() || price <= 0.0 {
        return Err(format!("non-positive shot price {price}"));
    }
    price_cache().lock().insert(key, price);
    Ok(price)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seismic_model::footprint::{Dims, Formulation};

    fn small_workload(steps: usize) -> Workload {
        Workload {
            nx: 24,
            ny: 1,
            nz: 24,
            steps,
            snap_period: 4,
            n_receivers: 8,
        }
    }

    fn iso2() -> SeismicCase {
        SeismicCase {
            formulation: Formulation::Isotropic,
            dims: Dims::Two,
        }
    }

    #[test]
    fn price_scales_linearly_in_steps_and_caches() {
        let cfg = OptimizationConfig::default();
        let c = iso2();
        let p40 = price_shot_cost(
            &c,
            &small_workload(40),
            JobKind::Modeling,
            &cfg,
            Cluster::CrayXc30,
            Compiler::Cray,
        )
        .unwrap();
        let p80 = price_shot_cost(
            &c,
            &small_workload(80),
            JobKind::Modeling,
            &cfg,
            Cluster::CrayXc30,
            Compiler::Cray,
        )
        .unwrap();
        assert!(p40 > 0.0);
        // Linear extrapolation from the same probe: exactly 2×.
        assert!((p80 / p40 - 2.0).abs() < 1e-9, "p80={p80} p40={p40}");
        // Second call hits the cache and returns the identical price.
        let again = price_shot_cost(
            &c,
            &small_workload(40),
            JobKind::Modeling,
            &cfg,
            Cluster::CrayXc30,
            Compiler::Cray,
        )
        .unwrap();
        assert_eq!(again, p40);
    }

    #[test]
    fn rtm_prices_above_modeling() {
        let cfg = OptimizationConfig::default();
        let c = iso2();
        let w = small_workload(40);
        let m = price_shot_cost(
            &c,
            &w,
            JobKind::Modeling,
            &cfg,
            Cluster::CrayXc30,
            Compiler::Cray,
        )
        .unwrap();
        let r = price_shot_cost(
            &c,
            &w,
            JobKind::Rtm,
            &cfg,
            Cluster::CrayXc30,
            Compiler::Cray,
        )
        .unwrap();
        assert!(
            r > m,
            "RTM replays the forward wavefield, so it must cost more: rtm={r} modeling={m}"
        );
    }

    /// Remodeling-based jobs price above plain modeling (three
    /// propagations vs one) and get their own cache partition.
    #[test]
    fn random_boundary_prices_remodeling_compute() {
        let cfg = OptimizationConfig::default();
        let c = iso2();
        let w = small_workload(40);
        let m = price_shot_cost(
            &c,
            &w,
            JobKind::Modeling,
            &cfg,
            Cluster::CrayXc30,
            Compiler::Cray,
        )
        .unwrap();
        let rb = price_shot_cost(
            &c,
            &w,
            JobKind::RtmRandomBoundary,
            &cfg,
            Cluster::CrayXc30,
            Compiler::Cray,
        )
        .unwrap();
        let r = price_shot_cost(
            &c,
            &w,
            JobKind::Rtm,
            &cfg,
            Cluster::CrayXc30,
            Compiler::Cray,
        )
        .unwrap();
        assert!(
            rb > 2.0 * m,
            "remodeling runs the source twice plus the receiver pass: rb={rb} modeling={m}"
        );
        assert_ne!(rb, r, "distinct kinds must not share a cached price");
    }
}
