//! Property tests for the weighted fair-queueing invariant.
//!
//! The DRR guarantee: over any interval in which a set of tenants stays
//! backlogged, each tenant's completed work deviates from its weight
//! share of the total completed work by at most one maximum job cost.
//! The first property checks the scheduler component directly (per-shot
//! crediting, the tight DRR bound); the second checks the whole server
//! (per-job crediting through a drained run, the one-job-cost bound the
//! issue states).

use acc_serve::{DrrQueue, JobSpec, Scenario, Server, ServerConfig, Submission, Tenant};
use accel_sim::fault::{FaultPlan, FaultRates, FleetFaultPlan};
use proptest::prelude::*;

fn clean_fleet(n: usize) -> FleetFaultPlan {
    FleetFaultPlan::single(FaultPlan::generate(0, n, 1e7, FaultRates::none()))
}

/// Deterministic per-index variation (the proptest shim draws scalars;
/// shapes derive from them).
fn mix(seed: u32, i: usize) -> u64 {
    let mut z = (seed as u64) ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z ^ (z >> 31)
}

proptest! {
    /// Component-level: dequeue shots from a DRR queue while every tenant
    /// stays backlogged; per-tenant served cost tracks the weight share
    /// within one quantum plus one shot.
    #[test]
    fn drr_served_cost_tracks_weight_share(
        w0 in 1u32..5,
        w1 in 1u32..5,
        w2 in 1u32..5,
        seed in any::<u32>(),
    ) {
        let weights = [w0, w1, w2];
        let shot_cost = 0.5f64;
        let mut q = DrrQueue::new(&weights);
        // Single-shot jobs: crediting happens exactly once per dequeue.
        // 200 jobs per tenant keeps everyone backlogged for the whole
        // measured interval.
        let jobs_per_tenant = 200usize;
        for j in 0..jobs_per_tenant {
            for t in 0..weights.len() {
                q.enqueue(t, t * 1000 + j, shot_cost);
            }
        }
        let mut served = [0.0f64; 3];
        // Measure strictly inside the backlogged interval.
        let dequeues = 150 + (mix(seed, 0) % 100) as usize;
        for _ in 0..dequeues {
            let (t, _job) = q.next_shot(|_| shot_cost, |_| false).expect("backlogged");
            served[t] += shot_cost;
        }
        let total: f64 = served.iter().sum();
        let wsum = f64::from(w0 + w1 + w2);
        // Each tenant's outstanding deficit is below one quantum plus one
        // shot; measuring against the share of the *realized* total mixes
        // every tenant's deficit into the entitlement, so the deviation
        // bound is the sum of those terms.
        let bound: f64 = weights
            .iter()
            .map(|&w| f64::from(w) * shot_cost + shot_cost)
            .sum();
        for t in 0..3 {
            let entitled = total * f64::from(weights[t]) / wsum;
            prop_assert!(
                (served[t] - entitled).abs() <= bound,
                "tenant {t}: served {} entitled {entitled} bound {bound}",
                served[t]
            );
        }
    }

    /// Server-level: three backlogged tenants share one device; a drain
    /// mid-backlog freezes the ledger. Each tenant's completed cost is
    /// within one maximum job cost of its weight share.
    #[test]
    fn served_share_matches_weights_under_backlog(
        w0 in 1u32..4,
        w1 in 1u32..4,
        w2 in 1u32..4,
        seed in any::<u32>(),
    ) {
        let weights = [w0, w1, w2];
        let shot_cost = 0.5f64;
        let tenants: Vec<Tenant> = weights
            .iter()
            .enumerate()
            .map(|(i, &w)| Tenant::new(format!("t{i}"), w))
            .collect();
        // Every tenant submits well over the drain horizon's worth of
        // work at t = 0, so all three stay backlogged until the drain.
        let mut jobs = Vec::new();
        let mut max_job_cost = 0.0f64;
        for t in 0..weights.len() {
            for j in 0..30 {
                let n_shots = 6 + (mix(seed, t * 100 + j) % 5) as usize; // 6..=10
                max_job_cost = max_job_cost.max(n_shots as f64 * shot_cost);
                jobs.push(Submission {
                    arrival_s: 0.0,
                    spec: JobSpec::synthetic(t, 1, n_shots, shot_cost),
                });
            }
        }
        let scenario = Scenario { tenants, jobs };
        let server = Server::new(
            ServerConfig {
                n_devices: 1,
                queue_capacity_cost_s: 1e6,
                tenant_quota_cost_s: 1e6,
                ..ServerConfig::default()
            },
            clean_fleet(1),
        );
        let drain_at = 40.0;
        let (report, snap) = server.run_with_drain(&scenario, drain_at, None).unwrap();
        prop_assert!(snap.is_some(), "all tenants must still be backlogged at drain");
        let served = &report.served_cost_by_tenant;
        let total: f64 = served.iter().sum();
        prop_assert!(total > 0.0);
        let wsum = f64::from(w0 + w1 + w2);
        for t in 0..3 {
            let entitled = total * f64::from(weights[t]) / wsum;
            prop_assert!(
                (served[t] - entitled).abs() <= max_job_cost,
                "tenant {t}: served {} entitled {entitled} max_job_cost {max_job_cost} \
                 (weights {weights:?}, total {total})",
                served[t]
            );
        }
    }
}
