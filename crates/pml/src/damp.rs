//! Polynomial damping profiles for the 2nd-order isotropic formulation.

use serde::{Deserialize, Serialize};

/// A one-dimensional damping profile σ over the *full allocated* axis length
/// (halo included). σ is zero in the interior and ramps polynomially to
/// σ_max at the outer edge of each absorbing strip.
///
/// The isotropic kernel combines per-axis profiles additively:
/// `σ(ix,iz) = σx[ix] + σz[iz]` and steps
/// `u⁺ = (2u − (1−σdt)u⁻ + dt²v²∇²u) / (1+σdt)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DampProfile {
    sigma: Vec<f32>,
    width: usize,
    halo: usize,
}

impl DampProfile {
    /// Build a profile for an axis with `n_interior` interior points, `halo`
    /// ghost points each side, an absorbing strip `width` points deep at
    /// both interior ends, designed for maximum velocity `v_max` (m/s), grid
    /// spacing `h` (m) and target reflection coefficient `r0`.
    ///
    /// Uses the standard quadratic profile
    /// `σ(d) = σ_max·(d/L)²`, `σ_max = −3·v_max·ln(r0)/(2L)` with `L = width·h`.
    pub fn new(n_interior: usize, halo: usize, width: usize, v_max: f32, h: f32, r0: f64) -> Self {
        assert!(width > 0, "absorbing width must be positive");
        assert!(
            2 * width <= n_interior,
            "absorbing strips overlap: 2*{width} > {n_interior}"
        );
        assert!(v_max > 0.0 && h > 0.0);
        assert!(r0 > 0.0 && r0 < 1.0);
        let l = width as f32 * h;
        let sigma_max = -3.0 * v_max * (r0 as f32).ln() / (2.0 * l);
        let full = n_interior + 2 * halo;
        let mut sigma = vec![0.0f32; full];
        for (raw, s) in sigma.iter_mut().enumerate() {
            // Distance into the absorbing region, measured from the interior
            // edge of each strip; halo points saturate at full depth.
            let i = raw as isize - halo as isize; // interior coordinate
            let d_left = width as isize - i; // >0 inside left strip
            let d_right = i - (n_interior as isize - 1 - width as isize);
            let d = d_left.max(d_right).max(0).min(width as isize) as f32;
            if d > 0.0 {
                let x = d / width as f32;
                *s = sigma_max * x * x;
            }
        }
        Self { sigma, width, halo }
    }

    /// A profile that damps nothing: σ ≡ 0 over the whole allocated axis
    /// and `in_layer` is false everywhere. Used by the random-boundary
    /// migration path, which replaces dissipation with a randomized
    /// velocity halo — the medium must stay time-reversible, and with σ = 0
    /// the isotropic update's `(1 ∓ σdt)` factors are exactly 1.0, so the
    /// backward sweep reconstructs the forward states bit-for-bit in exact
    /// arithmetic.
    pub fn transparent(n_interior: usize, halo: usize) -> Self {
        Self {
            sigma: vec![0.0; n_interior + 2 * halo],
            // width 0 → in_layer falls back to the σ≠0 test, which is
            // false everywhere: kernels take the undamped interior branch.
            width: 0,
            halo,
        }
    }

    /// Rank-local window of a global profile for slab decomposition: the
    /// returned profile's interior `[0, nz_local)` maps to global interior
    /// rows `[z0, z0 + nz_local)`, with the halo taken from the global
    /// profile's neighbouring values. `in_layer` stays conservative (true
    /// whenever σ > 0) so decomposed kernels take the same branch as the
    /// sequential sweep.
    pub fn window(&self, z0: usize, nz_local: usize) -> DampProfile {
        let full_local = nz_local + 2 * self.halo;
        let sigma = (0..full_local)
            .map(|raw_local| {
                // Global raw index of this local raw row.
                let g = raw_local + z0;
                self.sigma[g.min(self.sigma.len() - 1)]
            })
            .collect();
        DampProfile {
            sigma,
            // Width loses meaning on a window; in_layer falls back to σ>0.
            width: 0,
            halo: self.halo,
        }
    }

    /// σ at a *raw* (halo-inclusive) index.
    #[inline(always)]
    pub fn sigma_raw(&self, raw: usize) -> f32 {
        self.sigma[raw]
    }

    /// σ at an *interior* index.
    #[inline(always)]
    pub fn sigma(&self, interior: usize) -> f32 {
        self.sigma[interior + self.halo]
    }

    /// Full profile slice (raw indexing).
    pub fn as_slice(&self) -> &[f32] {
        &self.sigma
    }

    /// Absorbing strip depth in points.
    pub fn width(&self) -> usize {
        self.width
    }

    /// True when the interior index lies inside either absorbing strip —
    /// the branch condition the paper's original isotropic kernel evaluated
    /// at every grid point ("the main kernel in our isotropic code suffered
    /// from the if-statements").
    #[inline(always)]
    pub fn in_layer(&self, interior: usize) -> bool {
        if self.width == 0 {
            // Windowed profiles: the strip is wherever damping is active.
            // Identical to the width test on full profiles because σ > 0
            // at every strip point and exactly 0 outside.
            return self.sigma(interior) != 0.0;
        }
        let n_int = self.sigma.len() - 2 * self.halo;
        interior < self.width || interior >= n_int - self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> DampProfile {
        DampProfile::new(100, 4, 10, 3000.0, 10.0, 1e-4)
    }

    #[test]
    fn interior_is_exactly_zero() {
        let p = profile();
        for i in 10..90 {
            assert_eq!(p.sigma(i), 0.0, "interior index {i}");
            assert!(!p.in_layer(i));
        }
    }

    #[test]
    fn profile_is_symmetric_and_monotone() {
        let p = profile();
        for i in 0..10 {
            assert!((p.sigma(i) - p.sigma(99 - i)).abs() < 1e-3);
            assert!(p.in_layer(i));
            assert!(p.in_layer(99 - i));
        }
        for i in 0..9 {
            assert!(p.sigma(i) > p.sigma(i + 1), "monotone decay into interior");
        }
        assert!(p.sigma(0) > 0.0);
    }

    #[test]
    fn halo_saturates_at_max() {
        let p = profile();
        // Raw index 0 (deep halo) carries full-strength damping.
        let sigma_max = -3.0 * 3000.0 * (1e-4f32).ln() / (2.0 * 100.0);
        assert!((p.sigma_raw(0) - sigma_max).abs() / sigma_max < 1e-5);
    }

    #[test]
    fn stronger_r0_gives_stronger_damping() {
        let weak = DampProfile::new(100, 4, 10, 3000.0, 10.0, 1e-2);
        let strong = DampProfile::new(100, 4, 10, 3000.0, 10.0, 1e-6);
        assert!(strong.sigma(0) > weak.sigma(0));
    }

    #[test]
    #[should_panic(expected = "absorbing strips overlap")]
    fn rejects_overlapping_strips() {
        DampProfile::new(15, 4, 10, 3000.0, 10.0, 1e-4);
    }

    #[test]
    fn width_accessor() {
        assert_eq!(profile().width(), 10);
    }

    #[test]
    fn transparent_profile_damps_nothing_anywhere() {
        let p = DampProfile::transparent(100, 4);
        assert_eq!(p.as_slice().len(), 108);
        for raw in 0..108 {
            assert_eq!(p.sigma_raw(raw), 0.0);
        }
        for i in 0..100 {
            assert!(!p.in_layer(i));
        }
    }

    /// A windowed profile must agree with the global one at every local
    /// point, including the halo and the in-layer predicate.
    #[test]
    fn window_matches_global() {
        let g = profile(); // 100 interior, halo 4, width 10
        for (z0, nz) in [(0usize, 35usize), (35, 30), (65, 35)] {
            let w = g.window(z0, nz);
            for i in 0..nz {
                assert_eq!(w.sigma(i), g.sigma(z0 + i), "interior {i} of slab {z0}");
                assert_eq!(w.in_layer(i), g.in_layer(z0 + i), "layer {i} of slab {z0}");
            }
            for r in 0..nz + 8 {
                assert_eq!(w.sigma_raw(r), g.sigma_raw(r + z0), "raw {r} of slab {z0}");
            }
        }
    }
}
