//! # seismic-pml
//!
//! Absorbing boundary layers for the three propagators.
//!
//! The computational domain has to be truncated; the paper (Section 5) uses:
//!
//! * **standard PML** (Bérenger-style damping layer) for the 2nd-order
//!   isotropic formulation — implemented here as the damped wave equation
//!   `∂²ₜu + 2σ∂ₜu = v²∇²u` with a polynomial σ profile ([`DampProfile`]);
//!   like the paper's standard PML this absorbs traveling waves well but is
//!   imperfect for evanescent/grazing energy,
//! * **C-PML** (Convolutional PML, Komatitsch & Martin 2007) for the
//!   staggered acoustic and elastic systems, storing the per-axis
//!   one-dimensional coefficient arrays `a`, `b`, `1/κ` ([`CpmlAxis`]) plus
//!   per-field memory variables ψ updated as `ψ ← b·ψ + a·∂u`, with the
//!   effective derivative `∂u/κ + ψ` — exactly the "four different
//!   one-dimensional arrays with the cpml-coefficients for each dimension"
//!   of the paper,
//! * **random boundaries** ([`RandomBoundarySpec`]) for the checkpoint-free
//!   migration path: instead of absorbing outgoing energy, a seeded random
//!   velocity halo scatters it incoherently while the medium stays lossless
//!   and therefore time-reversible (paired with [`DampProfile::transparent`]
//!   / [`CpmlAxis::transparent`] so nothing dissipates).
//!
//! The isotropic kernel's PML is also where the paper's Figure 6/7
//! restructuring experiments live: the boundary-only `if`-statements hurt
//! GPU gridification, so `seismic-prop` provides variants that (a) keep the
//! branches, (b) restructure loop indices, or (c) "compute PML everywhere".
//! The profile arrays here make variant (c) numerically identical to (a)
//! because σ and the ψ coefficients vanish identically in the interior.

pub mod cpml;
pub mod damp;
pub mod random;

pub use cpml::CpmlAxis;
pub use damp::DampProfile;
pub use random::{PerturbationLaw, RandomBoundarySpec};

/// Default absorbing-layer thickness in grid points.
pub const DEFAULT_PML_WIDTH: usize = 20;

/// Theoretical normal-incidence reflection coefficient targeted by the
/// profile design (R₀). Smaller R₀ → stronger damping.
pub const DEFAULT_R0: f64 = 1e-4;
