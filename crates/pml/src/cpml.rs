//! Convolutional PML (C-PML) coefficients, Komatitsch & Martin (2007).
//!
//! For each axis the staggered systems store three one-dimensional arrays
//! over the full allocated axis length: `b = exp(−(σ/κ + α)·dt)`,
//! `a = σ·(b − 1)/(κ·(σ + κ·α))`, and `1/κ`. A per-field memory variable ψ
//! is updated every step as `ψ ← b·ψ + a·∂u` and the physical derivative is
//! replaced by `∂u/κ + ψ`. In the interior σ = 0 ⇒ a = 0, κ = 1, so the
//! recursion leaves the derivative untouched — which is what makes the
//! paper's "compute PML everywhere in the grid domain" restructuring legal.

use serde::{Deserialize, Serialize};

/// C-PML coefficient set for one axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpmlAxis {
    a: Vec<f32>,
    b: Vec<f32>,
    inv_kappa: Vec<f32>,
    width: usize,
    halo: usize,
}

impl CpmlAxis {
    /// Build coefficients for an axis with `n_interior` interior points,
    /// `halo` ghost points each side, strip depth `width`, time step `dt`,
    /// max velocity `v_max`, spacing `h`, and target reflection `r0`.
    ///
    /// Profiles: quadratic σ, linear α from α_max = π·f_damp (taken as
    /// π·10 Hz, the Komatitsch-Martin default) at the interior edge to 0 at
    /// the outer edge, κ ramping from 1 to κ_max = 2.
    pub fn new(
        n_interior: usize,
        halo: usize,
        width: usize,
        dt: f32,
        v_max: f32,
        h: f32,
        r0: f64,
    ) -> Self {
        assert!(width > 0 && 2 * width <= n_interior, "invalid C-PML width");
        assert!(dt > 0.0 && v_max > 0.0 && h > 0.0);
        let l = width as f32 * h;
        let sigma_max = -3.0 * v_max * (r0 as f32).ln() / (2.0 * l);
        let alpha_max = std::f32::consts::PI * 10.0;
        let kappa_max = 2.0f32;
        let full = n_interior + 2 * halo;
        let mut a = vec![0.0f32; full];
        let mut b = vec![1.0f32; full];
        let mut inv_kappa = vec![1.0f32; full];
        for raw in 0..full {
            let i = raw as isize - halo as isize;
            let d_left = width as isize - i;
            let d_right = i - (n_interior as isize - 1 - width as isize);
            let d = d_left.max(d_right).max(0).min(width as isize) as f32;
            if d > 0.0 {
                let x = d / width as f32; // 0 at interior edge → 1 at outer
                let sigma = sigma_max * x * x;
                let alpha = alpha_max * (1.0 - x);
                let kappa = 1.0 + (kappa_max - 1.0) * x * x;
                let bb = (-(sigma / kappa + alpha) * dt).exp();
                let denom = kappa * (sigma + kappa * alpha);
                let aa = if denom > 0.0 {
                    sigma * (bb - 1.0) / denom
                } else {
                    0.0
                };
                a[raw] = aa;
                b[raw] = bb;
                inv_kappa[raw] = 1.0 / kappa;
            }
        }
        Self {
            a,
            b,
            inv_kappa,
            width,
            halo,
        }
    }

    /// A trivially transparent axis (no absorption) — used by kernels that
    /// always execute the ψ recursion ("PML everywhere") on axes without a
    /// boundary layer, and by unit tests.
    pub fn transparent(n_interior: usize, halo: usize) -> Self {
        let full = n_interior + 2 * halo;
        Self {
            a: vec![0.0; full],
            b: vec![1.0; full],
            inv_kappa: vec![1.0; full],
            width: 0,
            halo,
        }
    }

    /// Rank-local window for slab decomposition: local interior
    /// `[0, nz_local)` maps to global interior rows `[z0, z0 + nz_local)`,
    /// with halo coefficients taken from the global axis — the C-PML
    /// analogue of [`crate::DampProfile::window`].
    pub fn window(&self, z0: usize, nz_local: usize) -> CpmlAxis {
        let full_local = nz_local + 2 * self.halo;
        let take = |v: &Vec<f32>| -> Vec<f32> {
            (0..full_local)
                .map(|raw_local| v[(raw_local + z0).min(v.len() - 1)])
                .collect()
        };
        CpmlAxis {
            a: take(&self.a),
            b: take(&self.b),
            inv_kappa: take(&self.inv_kappa),
            // Width loses meaning on a window; in_layer falls back to the
            // coefficient test.
            width: 0,
            halo: self.halo,
        }
    }

    /// `a` coefficient at a raw index.
    #[inline(always)]
    pub fn a_raw(&self, raw: usize) -> f32 {
        self.a[raw]
    }

    /// `b` coefficient at a raw index.
    #[inline(always)]
    pub fn b_raw(&self, raw: usize) -> f32 {
        self.b[raw]
    }

    /// `1/κ` at a raw index.
    #[inline(always)]
    pub fn inv_kappa_raw(&self, raw: usize) -> f32 {
        self.inv_kappa[raw]
    }

    /// Coefficients at an interior index: `(a, b, 1/κ)`.
    #[inline(always)]
    pub fn coeffs(&self, interior: usize) -> (f32, f32, f32) {
        let r = interior + self.halo;
        (self.a[r], self.b[r], self.inv_kappa[r])
    }

    /// Apply one ψ-recursion step and return the corrected derivative:
    /// `ψ ← b·ψ + a·du`, result `du/κ + ψ`.
    #[inline(always)]
    pub fn apply(&self, interior: usize, du: f32, psi: &mut f32) -> f32 {
        let (a, b, ik) = self.coeffs(interior);
        *psi = b * *psi + a * du;
        du * ik + *psi
    }

    /// Strip depth in points.
    pub fn width(&self) -> usize {
        self.width
    }

    /// True when the interior index lies inside either strip.
    #[inline(always)]
    pub fn in_layer(&self, interior: usize) -> bool {
        if self.width == 0 {
            // Windowed or transparent axes: the strip is wherever the
            // coefficients deviate from identity.
            let (a, _, ik) = self.coeffs(interior);
            return a != 0.0 || ik != 1.0;
        }
        let n_int = self.a.len() - 2 * self.halo;
        interior < self.width || interior >= n_int - self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn axis() -> CpmlAxis {
        CpmlAxis::new(120, 4, 12, 1e-3, 3000.0, 10.0, 1e-4)
    }

    #[test]
    fn interior_coefficients_are_identity() {
        let ax = axis();
        for i in 12..108 {
            let (a, b, ik) = ax.coeffs(i);
            assert_eq!(a, 0.0);
            assert_eq!(b, 1.0);
            assert_eq!(ik, 1.0);
            assert!(!ax.in_layer(i));
        }
    }

    /// With identity coefficients the ψ recursion is a no-op: this is what
    /// makes "compute PML everywhere" produce identical numerics.
    #[test]
    fn apply_is_transparent_in_interior() {
        let ax = axis();
        let mut psi = 0.0f32;
        let d = ax.apply(60, 3.25, &mut psi);
        assert_eq!(d, 3.25);
        assert_eq!(psi, 0.0);
    }

    #[test]
    fn boundary_coefficients_absorb() {
        let ax = axis();
        let (a, b, ik) = ax.coeffs(0);
        assert!(b > 0.0 && b < 1.0, "b = {b}");
        assert!(a < 0.0, "a = {a} (sign: σ(b−1)/κ(σ+κα) < 0)");
        assert!(ik < 1.0, "κ > 1 stretches coordinates");
        assert!(ax.in_layer(0) && ax.in_layer(119));
    }

    /// ψ driven by a constant derivative converges to the fixed point
    /// a·du/(1−b); the corrected derivative magnitude is reduced.
    #[test]
    fn psi_recursion_converges_and_attenuates() {
        let ax = axis();
        let du = 1.0f32;
        let mut psi = 0.0f32;
        let mut last = 0.0f32;
        for _ in 0..10_000 {
            last = ax.apply(0, du, &mut psi);
        }
        let (a, b, ik) = ax.coeffs(0);
        let fixed = a * du / (1.0 - b);
        assert!((psi - fixed).abs() < 1e-4);
        let expect = du * ik + fixed;
        assert!((last - expect).abs() < 1e-4);
        assert!(last.abs() < du.abs());
    }

    #[test]
    fn transparent_axis_is_identity_everywhere() {
        let ax = CpmlAxis::transparent(50, 4);
        let mut psi = 0.5f32;
        // b = 1, a = 0: ψ persists, derivative unchanged plus ψ.
        let d = ax.apply(0, 2.0, &mut psi);
        assert_eq!(psi, 0.5);
        assert_eq!(d, 2.5);
        assert!(!ax.in_layer(0));
        assert_eq!(ax.width(), 0);
    }

    #[test]
    fn profile_symmetry() {
        let ax = axis();
        for i in 0..12 {
            let (al, bl, kl) = ax.coeffs(i);
            let (ar, br, kr) = ax.coeffs(119 - i);
            assert!((al - ar).abs() < 1e-6);
            assert!((bl - br).abs() < 1e-6);
            assert!((kl - kr).abs() < 1e-6);
        }
    }

    /// Windows agree with the global axis at every local point.
    #[test]
    fn window_matches_global() {
        let g = axis(); // 120 interior, halo 4, width 12
        for (z0, nz) in [(0usize, 40usize), (40, 45), (85, 35)] {
            let w = g.window(z0, nz);
            for i in 0..nz {
                assert_eq!(w.coeffs(i), g.coeffs(z0 + i), "interior {i} of slab {z0}");
                assert_eq!(w.in_layer(i), g.in_layer(z0 + i), "layer {i} of slab {z0}");
            }
            for r in 0..nz + 8 {
                assert_eq!(w.a_raw(r), g.a_raw(r + z0));
                assert_eq!(w.b_raw(r), g.b_raw(r + z0));
                assert_eq!(w.inv_kappa_raw(r), g.inv_kappa_raw(r + z0));
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid C-PML width")]
    fn rejects_bad_width() {
        CpmlAxis::new(10, 4, 8, 1e-3, 3000.0, 10.0, 1e-4);
    }
}
