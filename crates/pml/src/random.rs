//! Seeded random-boundary construction (Barbosa & Coutinho).
//!
//! Random-boundary RTM replaces the absorbing layer with a **randomized
//! velocity halo**: outgoing energy entering the strip scatters into
//! incoherent noise instead of being damped, so the medium stays lossless and
//! the source propagation can be run backward from its final state — no
//! wavefield snapshots, no checkpoint traffic. The noise that re-enters the
//! interior during reconstruction is uncorrelated with the receiver field and
//! stacks out of the image.
//!
//! This module owns the *law* of the perturbation; applying it to concrete
//! earth models lives in `seismic-model::random_boundary`, and the migration
//! driver that exploits reversibility lives in `rtm-core::rand_boundary`.
//!
//! Design constraints the law satisfies:
//!
//! * **Deterministic & order-free** — the factor at a cell is a pure function
//!   of `(seed, coordinates)` via [`seismic_grid::rng::hash2`]/[`hash3`], so
//!   gang counts, slab decompositions, and restarts cannot change it.
//! * **Velocity never increases** — factors lie in `[1 − amp, 1]`, so the CFL
//!   bound of the unperturbed model still holds and `dt` is unchanged.
//! * **No impedance wall** — the [`PerturbationLaw::Ramp`] law grows the
//!   perturbation amplitude linearly from 0 at the interior edge of the strip
//!   to `amp` at the outer edge, avoiding a coherent reflection off the
//!   strip's inner face.

use seismic_grid::rng::{hash2, hash3, unit_f32};
use serde::{Deserialize, Serialize};

/// How the perturbation amplitude varies across the strip depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PerturbationLaw {
    /// Full amplitude everywhere in the strip. Strongest scattering, but the
    /// abrupt impedance contrast at the strip's inner face reflects
    /// coherently back into the interior.
    Uniform,
    /// Amplitude ramps linearly from 0 at the inner face to `amp` at the
    /// outer edge — the law used by the random-boundary literature to keep
    /// the inner face acoustically invisible.
    Ramp,
}

/// A seeded random-boundary region: strip width, perturbation amplitude,
/// law, and seed. Two specs with the same fields build bitwise-identical
/// boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomBoundarySpec {
    /// Strip depth in grid points at every interior face.
    pub width: usize,
    /// Maximum relative velocity perturbation, in `(0, 1)`: a cell's
    /// velocity is scaled by `1 − a·u` with `a ≤ amp` and `u ~ U[0,1)`.
    pub amp: f32,
    /// Amplitude profile across the strip.
    pub law: PerturbationLaw,
    /// RNG seed; the whole boundary is a pure function of it.
    pub seed: u64,
}

impl RandomBoundarySpec {
    /// Spec with the given width and seed and the literature-standard
    /// ramped law at 35% maximum perturbation.
    pub fn new(width: usize, seed: u64) -> Self {
        assert!(width > 0, "random boundary width must be positive");
        Self {
            width,
            amp: 0.35,
            law: PerturbationLaw::Ramp,
            seed,
        }
    }

    /// Same spec with a different perturbation amplitude.
    pub fn with_amp(mut self, amp: f32) -> Self {
        assert!(amp > 0.0 && amp < 1.0, "amp must lie in (0, 1): {amp}");
        self.amp = amp;
        self
    }

    /// Same spec with a different law.
    pub fn with_law(mut self, law: PerturbationLaw) -> Self {
        self.law = law;
        self
    }

    /// Depth into the strip (`0` = outside, `width` = at the domain edge)
    /// for a point at `edge_dist` points from the nearest interior face.
    fn strip_depth(&self, edge_dist: usize) -> usize {
        self.width.saturating_sub(edge_dist)
    }

    /// Perturbation factor given the strip depth and the cell's hash.
    fn factor_at_depth(&self, depth: usize, h: u64) -> f32 {
        if depth == 0 {
            return 1.0;
        }
        let local_amp = match self.law {
            PerturbationLaw::Uniform => self.amp,
            PerturbationLaw::Ramp => self.amp * depth as f32 / self.width as f32,
        };
        1.0 - local_amp * unit_f32(h)
    }

    /// Velocity factor for interior cell `(ix, iz)` of an `nx × nz` 2-D
    /// grid. Exactly `1.0` outside the strip.
    #[inline]
    pub fn factor2(&self, nx: usize, nz: usize, ix: usize, iz: usize) -> f32 {
        let edge = ix.min(nx - 1 - ix).min(iz).min(nz - 1 - iz);
        let depth = self.strip_depth(edge);
        if depth == 0 {
            return 1.0;
        }
        self.factor_at_depth(depth, hash2(self.seed, ix, iz))
    }

    /// Velocity factor for interior cell `(ix, iy, iz)` of an
    /// `nx × ny × nz` 3-D grid. Exactly `1.0` outside the strip.
    #[inline]
    pub fn factor3(&self, n: [usize; 3], ix: usize, iy: usize, iz: usize) -> f32 {
        let [nx, ny, nz] = n;
        let edge = ix
            .min(nx - 1 - ix)
            .min(iy.min(ny - 1 - iy))
            .min(iz.min(nz - 1 - iz));
        let depth = self.strip_depth(edge);
        if depth == 0 {
            return 1.0;
        }
        self.factor_at_depth(depth, hash3(self.seed, ix, iy, iz))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_is_untouched() {
        let s = RandomBoundarySpec::new(8, 42);
        for ix in 8..56 {
            for iz in 8..56 {
                assert_eq!(s.factor2(64, 64, ix, iz), 1.0);
            }
        }
        assert_eq!(s.factor3([32, 32, 32], 16, 16, 16), 1.0);
    }

    #[test]
    fn strip_factors_stay_in_band_and_only_slow_down() {
        let s = RandomBoundarySpec::new(8, 42).with_amp(0.3);
        for ix in 0..64 {
            for iz in 0..64 {
                let f = s.factor2(64, 64, ix, iz);
                assert!((0.7..=1.0).contains(&f), "factor {f} at ({ix},{iz})");
            }
        }
    }

    #[test]
    fn same_seed_is_bitwise_same_different_seed_is_not() {
        let a = RandomBoundarySpec::new(8, 7);
        let b = RandomBoundarySpec::new(8, 7);
        let c = RandomBoundarySpec::new(8, 8);
        let mut differs = false;
        for ix in 0..64 {
            for iz in 0..64 {
                let fa = a.factor2(64, 64, ix, iz);
                assert_eq!(fa.to_bits(), b.factor2(64, 64, ix, iz).to_bits());
                differs |= fa != c.factor2(64, 64, ix, iz);
            }
        }
        assert!(differs, "different seeds must build different boundaries");
    }

    #[test]
    fn ramp_law_vanishes_at_the_inner_face() {
        let s = RandomBoundarySpec::new(8, 42);
        // One point inside the strip (edge_dist = width-1, depth = 1): the
        // ramp allows at most amp/width perturbation.
        let f = s.factor2(64, 64, 7, 32);
        assert!(f >= 1.0 - s.amp / s.width as f32 - 1e-7, "inner face {f}");
        // Uniform law at the same point can use the full amplitude band.
        let u = s.with_law(PerturbationLaw::Uniform);
        assert!(u.factor2(64, 64, 7, 32) >= 1.0 - u.amp);
    }

    #[test]
    fn deepest_cells_carry_the_full_amplitude_band() {
        let s = RandomBoundarySpec::new(8, 3).with_amp(0.4);
        // Corner cell: depth = width under every law; with many cells some
        // hash must land near the bottom of the band.
        let mut min = 1.0f32;
        for ix in 0..64 {
            let f = s.factor2(64, 64, ix, 0);
            min = min.min(f);
        }
        assert!(min < 1.0 - 0.3 * s.amp, "edge row never perturbed? {min}");
    }

    #[test]
    fn factor3_matches_law_on_faces() {
        let s = RandomBoundarySpec::new(4, 9);
        for iy in 0..16 {
            let f = s.factor3([16, 16, 16], 8, iy, 8);
            assert!((1.0 - s.amp..=1.0).contains(&f));
            if (4..12).contains(&iy) {
                assert_eq!(f, 1.0);
            }
        }
    }
}
