//! `nvprof --metrics`-style per-kernel counter model.
//!
//! Every counter is derived from [`accel_sim::RooflineTerms`] — the exact
//! intermediates the timing model consumed — so the table agrees with the
//! simulated durations by construction. This mirrors how the paper's
//! authors cross-checked `nvprof` counters (occupancy, DRAM throughput,
//! load/store efficiency) against the timeline to decide which of the
//! Section 5 optimizations to apply.

use accel_sim::kernel::UNCOALESCED_BW_DIVISOR;
use accel_sim::{DeviceSpec, KernelProfile, RooflineTerms, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Roofline classification of a launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BoundKind {
    /// DRAM bandwidth term dominated.
    Memory,
    /// Arithmetic term dominated.
    Compute,
}

impl BoundKind {
    /// Lowercase label (`memory` / `compute`).
    pub fn as_str(&self) -> &'static str {
        match self {
            BoundKind::Memory => "memory",
            BoundKind::Compute => "compute",
        }
    }
}

/// Counters for one kernel launch shape, in `nvprof --metrics` vocabulary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelMetrics {
    /// Kernel name.
    pub name: String,
    /// Grid points per launch.
    pub points: u64,
    /// Execution time per launch, seconds (post any quality scaling).
    pub exec_s: SimTime,
    /// `achieved_occupancy` — warps resident / maximum resident.
    pub achieved_occupancy: f64,
    /// `dram_read_throughput`, byte/s.
    pub dram_read_throughput: f64,
    /// `dram_write_throughput`, byte/s.
    pub dram_write_throughput: f64,
    /// Combined DRAM throughput as % of the device's peak bandwidth.
    pub dram_utilization_pct: f64,
    /// `warp_execution_efficiency`, % (divergence wastes issue slots).
    pub warp_execution_efficiency_pct: f64,
    /// `gld_efficiency`, % — global-load coalescing.
    pub gld_efficiency_pct: f64,
    /// `gst_efficiency`, % — global-store coalescing.
    pub gst_efficiency_pct: f64,
    /// Register-spill (local memory) DRAM traffic per launch, bytes.
    pub spill_traffic_bytes: f64,
    /// Arithmetic intensity, flop/byte (including spill traffic).
    pub arithmetic_intensity: f64,
    /// Sustained arithmetic throughput, flop/s.
    pub flop_throughput: f64,
    /// Roofline classification.
    pub bound: BoundKind,
}

impl KernelMetrics {
    /// Derive the counters for one launch.
    ///
    /// `exec_s` is the execution time the runtime actually charged (it may
    /// include compiler-quality scaling on top of `terms.exec_s`);
    /// throughputs are computed against it so `throughput × time = bytes`
    /// holds exactly for the recorded timeline.
    pub fn from_launch(
        dev: &DeviceSpec,
        profile: &KernelProfile,
        terms: &RooflineTerms,
        exec_s: SimTime,
    ) -> Self {
        let n = profile.points as f64;
        let rf = profile.read_fraction.clamp(0.0, 1.0);
        // Spill traffic is a store + reload round trip: half each way.
        let read_bpp = profile.bytes_per_point * rf + terms.spill_bytes_per_point * 0.5;
        let write_bpp = profile.bytes_per_point * (1.0 - rf) + terms.spill_bytes_per_point * 0.5;
        let dram_read = n * read_bpp / exec_s;
        let dram_write = n * write_bpp / exec_s;
        let coalesce_pct = if profile.coalesced {
            100.0
        } else {
            100.0 / UNCOALESCED_BW_DIVISOR
        };
        KernelMetrics {
            name: profile.name.clone(),
            points: profile.points,
            exec_s,
            achieved_occupancy: terms.occupancy,
            dram_read_throughput: dram_read,
            dram_write_throughput: dram_write,
            dram_utilization_pct: (dram_read + dram_write) / dev.bandwidth() * 100.0,
            warp_execution_efficiency_pct: 100.0 / terms.div_penalty,
            gld_efficiency_pct: coalesce_pct,
            gst_efficiency_pct: coalesce_pct,
            spill_traffic_bytes: n * terms.spill_bytes_per_point,
            arithmetic_intensity: profile.flops_per_point / terms.bytes_per_point,
            flop_throughput: n * profile.flops_per_point / exec_s,
            bound: if terms.memory_bound {
                BoundKind::Memory
            } else {
                BoundKind::Compute
            },
        }
    }

    /// The metrics as a JSON object.
    pub fn to_json(&self) -> serde_json::Value {
        let mut o = serde_json::Map::new();
        o.insert("name", self.name.as_str());
        o.insert("points", self.points);
        o.insert("exec_s", self.exec_s);
        o.insert("achieved_occupancy", self.achieved_occupancy);
        o.insert("dram_read_throughput", self.dram_read_throughput);
        o.insert("dram_write_throughput", self.dram_write_throughput);
        o.insert("dram_utilization_pct", self.dram_utilization_pct);
        o.insert(
            "warp_execution_efficiency_pct",
            self.warp_execution_efficiency_pct,
        );
        o.insert("gld_efficiency_pct", self.gld_efficiency_pct);
        o.insert("gst_efficiency_pct", self.gst_efficiency_pct);
        o.insert("spill_traffic_bytes", self.spill_traffic_bytes);
        o.insert("arithmetic_intensity", self.arithmetic_intensity);
        o.insert("flop_throughput", self.flop_throughput);
        o.insert("bound", self.bound.as_str());
        serde_json::Value::Object(o)
    }
}

/// One table row: the representative launch-shape metrics plus invocation
/// aggregates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsRow {
    /// Counters from the first launch of this kernel (launch shapes are
    /// stable per kernel in the drivers).
    pub metrics: KernelMetrics,
    /// Number of launches recorded.
    pub invocations: u64,
    /// Total execution time across launches, seconds.
    pub total_exec_s: SimTime,
}

/// Per-kernel-name metrics table for one device.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsTable {
    rows: BTreeMap<String, MetricsRow>,
}

impl MetricsTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one launch; first launch of a name fixes the row's counters.
    pub fn record(
        &mut self,
        dev: &DeviceSpec,
        profile: &KernelProfile,
        terms: &RooflineTerms,
        exec_s: SimTime,
    ) {
        let row = self
            .rows
            .entry(profile.name.clone())
            .or_insert_with(|| MetricsRow {
                metrics: KernelMetrics::from_launch(dev, profile, terms, exec_s),
                invocations: 0,
                total_exec_s: 0.0,
            });
        row.invocations += 1;
        row.total_exec_s += exec_s;
    }

    /// Rows sorted by descending total time (name breaks ties).
    pub fn rows(&self) -> Vec<&MetricsRow> {
        let mut out: Vec<&MetricsRow> = self.rows.values().collect();
        out.sort_by(|a, b| {
            b.total_exec_s
                .total_cmp(&a.total_exec_s)
                .then_with(|| a.metrics.name.cmp(&b.metrics.name))
        });
        out
    }

    /// Look up one kernel's row.
    pub fn get(&self, name: &str) -> Option<&MetricsRow> {
        self.rows.get(name)
    }

    /// Number of distinct kernels.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no launches were recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// `nvprof --metrics`-style text rendering.
    pub fn render(&self, device_name: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "==accprof== Metrics result: {device_name}");
        for row in self.rows() {
            let m = &row.metrics;
            let _ = writeln!(
                out,
                "Kernel: {}  [{} invocations, {:.3} s total]",
                m.name, row.invocations, row.total_exec_s
            );
            let _ = writeln!(
                out,
                "    achieved_occupancy        {:10.3}",
                m.achieved_occupancy
            );
            let _ = writeln!(
                out,
                "    dram_read_throughput      {:10.2} GB/s",
                m.dram_read_throughput / 1e9
            );
            let _ = writeln!(
                out,
                "    dram_write_throughput     {:10.2} GB/s",
                m.dram_write_throughput / 1e9
            );
            let _ = writeln!(
                out,
                "    dram_utilization          {:10.1} % of peak",
                m.dram_utilization_pct
            );
            let _ = writeln!(
                out,
                "    warp_execution_efficiency {:10.1} %",
                m.warp_execution_efficiency_pct
            );
            let _ = writeln!(
                out,
                "    gld_efficiency            {:10.1} %",
                m.gld_efficiency_pct
            );
            let _ = writeln!(
                out,
                "    gst_efficiency            {:10.1} %",
                m.gst_efficiency_pct
            );
            let _ = writeln!(
                out,
                "    local_memory_traffic      {:10.0} B/launch",
                m.spill_traffic_bytes
            );
            let _ = writeln!(
                out,
                "    arithmetic_intensity      {:10.2} flop/byte",
                m.arithmetic_intensity
            );
            let _ = writeln!(
                out,
                "    bound                     {:>10}",
                m.bound.as_str()
            );
        }
        out
    }

    /// The table as a JSON array (descending total time).
    pub fn to_json(&self) -> serde_json::Value {
        let mut arr = Vec::new();
        for row in self.rows() {
            let mut o = serde_json::Map::new();
            o.insert("invocations", row.invocations);
            o.insert("total_exec_s", row.total_exec_s);
            o.insert("metrics", row.metrics.to_json());
            arr.push(serde_json::Value::Object(o));
        }
        serde_json::Value::Array(arr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::kernel::roofline_terms;

    fn profile() -> KernelProfile {
        KernelProfile::new("stencil", 1 << 20, 58.0, 22.4, 52)
    }

    /// throughput × time recovers the modeled byte traffic exactly, and
    /// every counter matches the roofline terms it was derived from.
    #[test]
    fn counters_agree_with_roofline_terms() {
        for dev in [DeviceSpec::m2090(), DeviceSpec::k40()] {
            let p = profile();
            let t = roofline_terms(&dev, &p);
            let m = KernelMetrics::from_launch(&dev, &p, &t, t.exec_s);
            assert_eq!(m.achieved_occupancy, t.occupancy);
            let n = p.points as f64;
            let total_bytes = (m.dram_read_throughput + m.dram_write_throughput) * m.exec_s;
            assert!(
                (total_bytes - n * t.bytes_per_point).abs() / (n * t.bytes_per_point) < 1e-9,
                "{}: bytes {total_bytes}",
                dev.name
            );
            assert_eq!(m.bound == BoundKind::Memory, t.memory_bound);
            assert_eq!(m.spill_traffic_bytes, n * t.spill_bytes_per_point);
            assert!((m.warp_execution_efficiency_pct - 100.0 / t.div_penalty).abs() < 1e-9);
        }
    }

    /// Degrading coalescing must drop the load efficiency counter — the
    /// signal the paper's Figure 13 transposition was driven by.
    #[test]
    fn uncoalesced_drops_gld_efficiency() {
        let dev = DeviceSpec::k40();
        let good = profile();
        let mut bad = profile();
        bad.coalesced = false;
        let mg = KernelMetrics::from_launch(&dev, &good, &roofline_terms(&dev, &good), 1e-3);
        let mb = KernelMetrics::from_launch(&dev, &bad, &roofline_terms(&dev, &bad), 1e-3);
        assert_eq!(mg.gld_efficiency_pct, 100.0);
        assert!(mb.gld_efficiency_pct < 20.0);
        assert!(mb.gld_efficiency_pct > 0.0);
    }

    #[test]
    fn table_aggregates_and_renders() {
        let dev = DeviceSpec::k40();
        let p = profile();
        let t = roofline_terms(&dev, &p);
        let mut tab = MetricsTable::new();
        tab.record(&dev, &p, &t, t.exec_s);
        tab.record(&dev, &p, &t, t.exec_s);
        let small = KernelProfile::new("inject", 100, 10.0, 8.0, 24);
        let ts = roofline_terms(&dev, &small);
        tab.record(&dev, &small, &ts, ts.exec_s);
        assert_eq!(tab.len(), 2);
        let row = tab.get("stencil").unwrap();
        assert_eq!(row.invocations, 2);
        assert!((row.total_exec_s - 2.0 * t.exec_s).abs() < 1e-15);
        let txt = tab.render("Tesla K40");
        assert!(txt.contains("achieved_occupancy"));
        assert!(txt.contains("dram_read_throughput"));
        assert!(txt.contains("Kernel: stencil  [2 invocations"));
        // Big stencil sorts before the tiny injector.
        assert!(txt.find("stencil").unwrap() < txt.find("inject").unwrap());
        let j = serde_json::to_string(&tab.to_json());
        let v = serde_json::from_str(&j).unwrap();
        assert_eq!(v.as_array().unwrap().len(), 2);
    }
}
