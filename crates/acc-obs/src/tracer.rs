//! Thread-safe span collector and Chrome/Perfetto trace serializer.

use crate::span::{Span, Track};
use parking_lot::Mutex;

/// Collects [`Span`]s from every layer; exports a Perfetto-compatible
/// Chrome trace-event JSON document via `serde_json` (names with quotes,
/// backslashes, or control characters stay valid JSON).
#[derive(Debug, Default)]
pub struct Tracer {
    spans: Mutex<Vec<Span>>,
}

impl Tracer {
    /// Empty tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one span.
    pub fn record(&self, span: Span) {
        self.spans.lock().push(span);
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.lock().len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.lock().is_empty()
    }

    /// Snapshot sorted by (track, start, name) — deterministic regardless
    /// of the interleaving concurrent recorders produced, and grouped the
    /// way per-track validation wants to walk it.
    pub fn spans(&self) -> Vec<Span> {
        let mut out = self.spans.lock().clone();
        out.sort_by(|a, b| {
            a.track
                .cmp(&b.track)
                .then_with(|| a.start_s.total_cmp(&b.start_s))
                .then_with(|| a.name.cmp(&b.name))
        });
        out
    }

    /// The distinct tracks spans were recorded on, sorted.
    pub fn tracks(&self) -> Vec<Track> {
        let mut t: Vec<Track> = self.spans.lock().iter().map(|s| s.track).collect();
        t.sort();
        t.dedup();
        t
    }

    /// Forget all spans.
    pub fn clear(&self) {
        self.spans.lock().clear();
    }

    /// Validate track discipline: on every track, spans sorted by start
    /// must be monotone and either disjoint or fully nested (flame-stack
    /// shape — a host phase span may contain directive spans, but partial
    /// overlap is a recording bug). Device-stream and rank tracks are
    /// emitted strictly serial, so they pass with depth 1.
    pub fn validate_tracks(&self) -> Result<(), String> {
        const EPS: f64 = 1e-9;
        let mut spans = self.spans();
        // Parents (longer spans) before children at equal starts.
        spans.sort_by(|a, b| {
            a.track
                .cmp(&b.track)
                .then_with(|| a.start_s.total_cmp(&b.start_s))
                .then_with(|| b.end_s().total_cmp(&a.end_s()))
        });
        let mut stack: Vec<(f64, f64)> = Vec::new();
        let mut cur_track: Option<Track> = None;
        for s in &spans {
            if s.dur_s < 0.0 {
                return Err(format!("span '{}' has negative duration", s.name));
            }
            if cur_track != Some(s.track) {
                cur_track = Some(s.track);
                stack.clear();
            }
            let (start, end) = (s.start_s, s.end_s());
            while let Some(&(_, pe)) = stack.last() {
                if start >= pe - EPS {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(ps, pe)) = stack.last() {
                if end > pe + EPS {
                    return Err(format!(
                        "span '{}' [{start}, {end}] partially overlaps [{ps}, {pe}] on track {}",
                        s.name,
                        s.track.label()
                    ));
                }
            }
            stack.push((start, end));
        }
        Ok(())
    }

    /// The timeline as a Chrome trace-event array: one complete event
    /// (`ph: "X"`, microsecond `ts`/`dur`) per span, `pid` = process name,
    /// `tid` = track label, payload bytes and annotations under `args`.
    pub fn chrome_trace(&self, process_name: &str) -> serde_json::Value {
        let spans = self.spans();
        let mut events = Vec::with_capacity(spans.len());
        for s in &spans {
            let mut obj = serde_json::Map::new();
            obj.insert("name", s.name.as_str());
            obj.insert("cat", s.cat.as_str());
            obj.insert("ph", "X");
            obj.insert("ts", s.start_s * 1e6);
            obj.insert("dur", s.dur_s * 1e6);
            obj.insert("pid", process_name);
            obj.insert("tid", s.track.label());
            if s.bytes > 0 || !s.args.is_empty() {
                let mut args = serde_json::Map::new();
                if s.bytes > 0 {
                    args.insert("bytes", s.bytes);
                }
                for (k, v) in &s.args {
                    args.insert(k.as_str(), v.as_str());
                }
                obj.insert("args", args);
            }
            events.push(serde_json::Value::Object(obj));
        }
        serde_json::Value::Array(events)
    }

    /// [`Self::chrome_trace`] wrapped in the standard envelope
    /// (`{"traceEvents": [...], "displayTimeUnit": "ms"}`) and serialized.
    pub fn export_chrome(&self, process_name: &str) -> String {
        let mut doc = serde_json::Map::new();
        doc.insert("traceEvents", self.chrome_trace(process_name));
        doc.insert("displayTimeUnit", "ms");
        serde_json::to_string(&serde_json::Value::Object(doc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanCat;

    #[test]
    fn records_sorts_and_lists_tracks() {
        let t = Tracer::new();
        t.record(Span::new(
            Track::DeviceStream(0),
            SpanCat::Kernel,
            "k1",
            2.0,
            1.0,
        ));
        t.record(Span::new(Track::Host, SpanCat::Phase, "forward", 0.0, 5.0));
        t.record(Span::new(
            Track::DeviceStream(0),
            SpanCat::Kernel,
            "k0",
            0.5,
            1.0,
        ));
        let spans = t.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].track, Track::Host);
        assert_eq!(spans[1].name, "k0");
        assert_eq!(spans[2].name, "k1");
        assert_eq!(t.tracks(), vec![Track::Host, Track::DeviceStream(0)]);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn chrome_trace_round_trips_with_hostile_names() {
        let t = Tracer::new();
        t.record(
            Span::new(
                Track::MpiRank(2),
                SpanCat::Halo,
                "halo\"up\\down",
                1.0e-3,
                2.0e-4,
            )
            .with_bytes(8192)
            .with_arg("neighbor", "3"),
        );
        let doc = t.export_chrome("accprof");
        let v = serde_json::from_str(&doc).expect("valid JSON");
        let evs = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(evs.len(), 1);
        let e = &evs[0];
        assert_eq!(e.get("name").unwrap().as_str(), Some("halo\"up\\down"));
        assert_eq!(e.get("tid").unwrap().as_str(), Some("rank 2"));
        assert!((e.get("ts").unwrap().as_f64().unwrap() - 1000.0).abs() < 1e-9);
        let args = e.get("args").unwrap();
        assert_eq!(args.get("bytes").unwrap().as_u64(), Some(8192));
        assert_eq!(args.get("neighbor").unwrap().as_str(), Some("3"));
    }

    #[test]
    fn validate_accepts_nesting_rejects_partial_overlap() {
        let t = Tracer::new();
        t.record(Span::new(Track::Host, SpanCat::Phase, "forward", 0.0, 10.0));
        t.record(Span::new(
            Track::Host,
            SpanCat::Directive,
            "launch:a",
            1.0,
            2.0,
        ));
        t.record(Span::new(
            Track::Host,
            SpanCat::Checkpoint,
            "ckpt",
            4.0,
            1.0,
        ));
        t.record(Span::new(
            Track::Host,
            SpanCat::Phase,
            "backward",
            10.0,
            5.0,
        ));
        t.record(Span::new(
            Track::DeviceStream(0),
            SpanCat::Kernel,
            "k",
            1.5,
            1.0,
        ));
        assert!(t.validate_tracks().is_ok());
        // Partial overlap on one track is rejected.
        t.record(Span::new(Track::Host, SpanCat::Directive, "bad", 9.0, 3.0));
        let err = t.validate_tracks().unwrap_err();
        assert!(err.contains("bad"), "{err}");
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let t = std::sync::Arc::new(Tracer::new());
        std::thread::scope(|s| {
            for r in 0..4u32 {
                let t = t.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        t.record(Span::new(
                            Track::MpiRank(r),
                            SpanCat::Halo,
                            "h",
                            i as f64,
                            0.1,
                        ));
                    }
                });
            }
        });
        assert_eq!(t.len(), 200);
        assert_eq!(t.tracks().len(), 4);
    }
}
