//! Named counters, gauges, and log-bucketed histograms.

use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Number of histogram buckets: powers of 10 from `1e-9` up, plus an
/// overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 20;

/// Smallest bucket upper bound.
pub const HISTOGRAM_FIRST_BOUND: f64 = 1e-9;

/// Fixed-log-bucket histogram: bucket `i` counts observations
/// `≤ 1e-9·10^i`, the last bucket is overflow. One shape fits both
/// second- and byte-valued observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Per-bucket observation counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0.0,
        }
    }
}

impl Histogram {
    /// Upper bound of bucket `i` (the last bucket has no bound).
    pub fn bound(i: usize) -> f64 {
        HISTOGRAM_FIRST_BOUND * 10f64.powi(i as i32)
    }

    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        let mut idx = HISTOGRAM_BUCKETS - 1;
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            if value <= Self::bound(i) {
                idx = i;
                break;
            }
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// The histogram as a JSON object.
    pub fn to_json(&self) -> serde_json::Value {
        let mut o = serde_json::Map::new();
        o.insert("count", self.count);
        o.insert("sum", self.sum);
        o.insert(
            "buckets",
            self.buckets
                .iter()
                .map(|&c| c.into())
                .collect::<Vec<serde_json::Value>>(),
        );
        o.insert(
            "bounds",
            (0..HISTOGRAM_BUCKETS - 1)
                .map(|i| Self::bound(i).into())
                .collect::<Vec<serde_json::Value>>(),
        );
        serde_json::Value::Object(o)
    }
}

/// Thread-safe metrics registry. Well-known names used by the pipeline:
/// `kernels_launched`, `bytes_h2d`, `bytes_d2h`, `halo_bytes`,
/// `halo_exchanges`, `shot_retries`, `checkpoint_bytes`,
/// `checkpoints_written`, `checkpoints_restored`, `ranks_blacklisted`.
/// The job server (`acc-serve`) adds the gauges `queue_depth`,
/// `queue_cost_s`, `shed_rate`, and `brownout`, the counters
/// `jobs_submitted`, `jobs_admitted`, `jobs_completed`, `jobs_shed`,
/// `jobs_rejected`, `jobs_cancelled_deadline`, `breaker_opened`,
/// `breaker_half_open`, `breaker_closed`, and the `job_latency_s` /
/// `job_wait_s` histograms.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `by` to counter `name` (creating it at zero).
    pub fn inc(&self, name: &str, by: u64) {
        *self.counters.lock().entry(name.to_string()).or_insert(0) += by;
    }

    /// Current counter value (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.lock().get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.gauges.lock().insert(name.to_string(), value);
    }

    /// Current gauge value.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.lock().get(name).copied()
    }

    /// Record one observation into histogram `name`.
    pub fn observe(&self, name: &str, value: f64) {
        self.histograms
            .lock()
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Snapshot of histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.histograms.lock().get(name).cloned()
    }

    /// The whole registry as one JSON object
    /// (`{"counters": {...}, "gauges": {...}, "histograms": {...}}`).
    pub fn to_json(&self) -> serde_json::Value {
        let mut counters = serde_json::Map::new();
        for (k, v) in self.counters.lock().iter() {
            counters.insert(k.as_str(), *v);
        }
        let mut gauges = serde_json::Map::new();
        for (k, v) in self.gauges.lock().iter() {
            gauges.insert(k.as_str(), *v);
        }
        let mut histograms = serde_json::Map::new();
        for (k, h) in self.histograms.lock().iter() {
            histograms.insert(k.as_str(), h.to_json());
        }
        let mut o = serde_json::Map::new();
        o.insert("counters", counters);
        o.insert("gauges", gauges);
        o.insert("histograms", histograms);
        serde_json::Value::Object(o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let r = Registry::new();
        assert_eq!(r.counter("kernels_launched"), 0);
        r.inc("kernels_launched", 3);
        r.inc("kernels_launched", 2);
        assert_eq!(r.counter("kernels_launched"), 5);
        r.set_gauge("occupancy", 0.62);
        assert_eq!(r.gauge("occupancy"), Some(0.62));
        assert_eq!(r.gauge("missing"), None);
    }

    #[test]
    fn histogram_buckets_by_decade() {
        let mut h = Histogram::default();
        h.observe(5e-10); // bucket 0 (≤1e-9)
        h.observe(5e-9); // bucket 1
        h.observe(1.0); // ≤1e0 → bucket 9
        h.observe(1e30); // overflow
        assert_eq!(h.count, 4);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[9], 1);
        assert_eq!(h.buckets[HISTOGRAM_BUCKETS - 1], 1);
        assert!((h.sum - (5e-10 + 5e-9 + 1.0 + 1e30)).abs() < 1e18);
    }

    #[test]
    fn json_snapshot_round_trips() {
        let r = Registry::new();
        r.inc("bytes_h2d", 1024);
        r.set_gauge("makespan_s", 12.5);
        r.observe("kernel_exec_s", 3.2e-3);
        let j = serde_json::to_string(&r.to_json());
        let v = serde_json::from_str(&j).unwrap();
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("bytes_h2d")
                .unwrap()
                .as_u64(),
            Some(1024)
        );
        assert_eq!(
            v.get("gauges").unwrap().get("makespan_s").unwrap().as_f64(),
            Some(12.5)
        );
        let h = v.get("histograms").unwrap().get("kernel_exec_s").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(1));
    }
}
