//! Named counters, gauges, and log-bucketed histograms.

use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Number of histogram buckets: powers of 10 from `1e-9` up, plus an
/// overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 20;

/// Smallest bucket upper bound.
pub const HISTOGRAM_FIRST_BOUND: f64 = 1e-9;

/// Fixed-log-bucket histogram: bucket `i` counts observations
/// `≤ 1e-9·10^i`, the last bucket is overflow. One shape fits both
/// second- and byte-valued observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Per-bucket observation counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0.0,
        }
    }
}

impl Histogram {
    /// Upper bound of bucket `i` (the last bucket has no bound).
    pub fn bound(i: usize) -> f64 {
        HISTOGRAM_FIRST_BOUND * 10f64.powi(i as i32)
    }

    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        let mut idx = HISTOGRAM_BUCKETS - 1;
        for i in 0..HISTOGRAM_BUCKETS - 1 {
            if value <= Self::bound(i) {
                idx = i;
                break;
            }
        }
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Merge another histogram into this one (bucket-wise). Associative
    /// and commutative, so per-worker histograms can be combined in any
    /// order — the property the merge tests pin down.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`) by geometric
    /// interpolation inside the log bucket holding the target rank.
    /// Returns `None` on an empty histogram; observations in the overflow
    /// bucket resolve to its lower bound (the estimate is a floor there).
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut below = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if below + c >= target && c > 0 {
                if i == HISTOGRAM_BUCKETS - 1 {
                    return Some(Self::bound(HISTOGRAM_BUCKETS - 2));
                }
                let hi = Self::bound(i);
                // Bucket 0 spans (0, 1e-9]; treat it as one decade wide so
                // interpolation stays geometric everywhere.
                let lo = if i == 0 {
                    hi / 10.0
                } else {
                    Self::bound(i - 1)
                };
                let frac = (target - below) as f64 / c as f64;
                // powf rounding can land an ULP outside the bucket.
                return Some((lo * (hi / lo).powf(frac)).clamp(lo, hi));
            }
            below += c;
        }
        None
    }

    /// The histogram as a JSON object.
    pub fn to_json(&self) -> serde_json::Value {
        let mut o = serde_json::Map::new();
        o.insert("count", self.count);
        o.insert("sum", self.sum);
        o.insert(
            "buckets",
            self.buckets
                .iter()
                .map(|&c| c.into())
                .collect::<Vec<serde_json::Value>>(),
        );
        o.insert(
            "bounds",
            (0..HISTOGRAM_BUCKETS - 1)
                .map(|i| Self::bound(i).into())
                .collect::<Vec<serde_json::Value>>(),
        );
        serde_json::Value::Object(o)
    }
}

/// Thread-safe metrics registry. Well-known names used by the pipeline:
/// `kernels_launched`, `bytes_h2d`, `bytes_d2h`, `halo_bytes`,
/// `halo_exchanges`, `shot_retries`, `checkpoint_bytes`,
/// `checkpoints_written`, `checkpoints_restored`, `ranks_blacklisted`.
/// The job server (`acc-serve`) adds the gauges `queue_depth`,
/// `queue_cost_s`, `shed_rate`, and `brownout`, the counters
/// `jobs_submitted`, `jobs_admitted`, `jobs_completed`, `jobs_shed`,
/// `jobs_rejected`, `jobs_cancelled_deadline`, `breaker_opened`,
/// `breaker_half_open`, `breaker_closed`, and the `job_latency_s` /
/// `job_wait_s` histograms.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `by` to counter `name` (creating it at zero).
    pub fn inc(&self, name: &str, by: u64) {
        *self.counters.lock().entry(name.to_string()).or_insert(0) += by;
    }

    /// Current counter value (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.lock().get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.gauges.lock().insert(name.to_string(), value);
    }

    /// Current gauge value.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.lock().get(name).copied()
    }

    /// Record one observation into histogram `name`.
    pub fn observe(&self, name: &str, value: f64) {
        self.histograms
            .lock()
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Snapshot of histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.histograms.lock().get(name).cloned()
    }

    /// Merge a pre-aggregated histogram into `name` (creating it empty) —
    /// how per-worker wall-clock histograms land in a shared registry.
    pub fn merge_histogram(&self, name: &str, h: &Histogram) {
        self.histograms
            .lock()
            .entry(name.to_string())
            .or_default()
            .merge(h);
    }

    /// The whole registry as one JSON object
    /// (`{"counters": {...}, "gauges": {...}, "histograms": {...}}`).
    pub fn to_json(&self) -> serde_json::Value {
        let mut counters = serde_json::Map::new();
        for (k, v) in self.counters.lock().iter() {
            counters.insert(k.as_str(), *v);
        }
        let mut gauges = serde_json::Map::new();
        for (k, v) in self.gauges.lock().iter() {
            gauges.insert(k.as_str(), *v);
        }
        let mut histograms = serde_json::Map::new();
        for (k, h) in self.histograms.lock().iter() {
            histograms.insert(k.as_str(), h.to_json());
        }
        let mut o = serde_json::Map::new();
        o.insert("counters", counters);
        o.insert("gauges", gauges);
        o.insert("histograms", histograms);
        serde_json::Value::Object(o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let r = Registry::new();
        assert_eq!(r.counter("kernels_launched"), 0);
        r.inc("kernels_launched", 3);
        r.inc("kernels_launched", 2);
        assert_eq!(r.counter("kernels_launched"), 5);
        r.set_gauge("occupancy", 0.62);
        assert_eq!(r.gauge("occupancy"), Some(0.62));
        assert_eq!(r.gauge("missing"), None);
    }

    #[test]
    fn histogram_buckets_by_decade() {
        let mut h = Histogram::default();
        h.observe(5e-10); // bucket 0 (≤1e-9)
        h.observe(5e-9); // bucket 1
        h.observe(1.0); // ≤1e0 → bucket 9
        h.observe(1e30); // overflow
        assert_eq!(h.count, 4);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[9], 1);
        assert_eq!(h.buckets[HISTOGRAM_BUCKETS - 1], 1);
        assert!((h.sum - (5e-10 + 5e-9 + 1.0 + 1e30)).abs() < 1e18);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |values: &[f64]| {
            let mut h = Histogram::default();
            for &v in values {
                h.observe(v);
            }
            h
        };
        let a = mk(&[1e-8, 3e-6, 0.5]);
        let b = mk(&[2e-9, 7.0, 1e25]);
        let c = mk(&[4e-4, 4e-4, 9e-2]);
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        // a ⊕ b == b ⊕ a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        // Totals add up, and merged buckets match observing everything
        // into one histogram directly.
        assert_eq!(left.count, 9);
        let direct = mk(&[1e-8, 3e-6, 0.5, 2e-9, 7.0, 1e25, 4e-4, 4e-4, 9e-2]);
        assert_eq!(left.buckets, direct.buckets);
        // Merging an empty histogram is the identity.
        let mut with_empty = a.clone();
        with_empty.merge(&Histogram::default());
        assert_eq!(with_empty, a);
    }

    #[test]
    fn percentiles_on_known_distributions() {
        // 100 observations in bucket 5 (≤1e-4), 0 elsewhere: every
        // percentile lands inside (1e-5, 1e-4].
        let mut h = Histogram::default();
        for _ in 0..100 {
            h.observe(5e-5);
        }
        for q in [0.5, 0.95, 0.99] {
            let p = h.percentile(q).unwrap();
            assert!(
                (1e-5..=1e-4).contains(&p),
                "q={q} → {p} outside bucket bounds"
            );
        }
        // Percentiles are monotone in q.
        assert!(h.percentile(0.5).unwrap() <= h.percentile(0.95).unwrap());
        assert!(h.percentile(0.95).unwrap() <= h.percentile(0.99).unwrap());

        // 90 fast + 10 slow observations: p50 is in the fast decade, p95
        // and p99 in the slow one — the shape a barrier-wait tail has.
        let mut h = Histogram::default();
        for _ in 0..90 {
            h.observe(5e-6); // bucket 4: (1e-6, 1e-5]
        }
        for _ in 0..10 {
            h.observe(5e-3); // bucket 7: (1e-3, 1e-2]
        }
        let p50 = h.percentile(0.50).unwrap();
        let p95 = h.percentile(0.95).unwrap();
        let p99 = h.percentile(0.99).unwrap();
        assert!((1e-6..=1e-5).contains(&p50), "p50={p50}");
        assert!((1e-3..=1e-2).contains(&p95), "p95={p95}");
        assert!((1e-3..=1e-2).contains(&p99), "p99={p99}");
        assert!(p95 <= p99);
        // Extremes stay in range.
        assert!((1e-6..=1e-5).contains(&h.percentile(0.0).unwrap()));
        assert!((1e-3..=1e-2).contains(&h.percentile(1.0).unwrap()));
    }

    #[test]
    fn percentile_edge_cases() {
        // Empty → None, for any q.
        let h = Histogram::default();
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.percentile(0.0), None);
        assert_eq!(h.percentile(1.0), None);
        // Single observation: every percentile is in its bucket (bounds
        // compared with an ULP-tolerant margin — they are computed as
        // 1e-9·10^i, not literals).
        let mut h = Histogram::default();
        h.observe(3e-7); // bucket 3: (1e-7, 1e-6]
        for q in [0.0, 0.5, 1.0] {
            let p = h.percentile(q).unwrap();
            assert!(
                (0.999e-7..=1.001e-6).contains(&p),
                "q={q} → {p} outside bucket"
            );
        }
        // Out-of-range q clamps rather than panicking.
        assert!(h.percentile(-0.3).is_some());
        assert!(h.percentile(7.0).is_some());
        // Overflow-bucket observations resolve to the last finite bound.
        let mut h = Histogram::default();
        h.observe(1e30);
        let p = h.percentile(0.99).unwrap();
        assert_eq!(p, Histogram::bound(HISTOGRAM_BUCKETS - 2));
        // Bucket 0 (≤1e-9) interpolates below the first bound, above zero.
        let mut h = Histogram::default();
        h.observe(1e-12);
        let p = h.percentile(0.5).unwrap();
        assert!(p > 0.0 && p <= 1e-9, "{p}");
    }

    #[test]
    fn registry_merges_histograms() {
        let r = Registry::new();
        let mut h = Histogram::default();
        h.observe(2e-3);
        h.observe(4e-3);
        r.merge_histogram("host_slab_s", &h);
        r.merge_histogram("host_slab_s", &h);
        let got = r.histogram("host_slab_s").unwrap();
        assert_eq!(got.count, 4);
        assert!((got.sum - 12e-3).abs() < 1e-12);
    }

    #[test]
    fn json_snapshot_round_trips() {
        let r = Registry::new();
        r.inc("bytes_h2d", 1024);
        r.set_gauge("makespan_s", 12.5);
        r.observe("kernel_exec_s", 3.2e-3);
        let j = serde_json::to_string(&r.to_json());
        let v = serde_json::from_str(&j).unwrap();
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("bytes_h2d")
                .unwrap()
                .as_u64(),
            Some(1024)
        );
        assert_eq!(
            v.get("gauges").unwrap().get("makespan_s").unwrap().as_f64(),
            Some(12.5)
        );
        let h = v.get("histograms").unwrap().get("kernel_exec_s").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(1));
    }
}
