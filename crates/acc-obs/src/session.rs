//! One observability session bundling tracer + metrics + registry.

use crate::metrics::MetricsTable;
use crate::registry::Registry;
use crate::span::Span;
use crate::tracer::Tracer;
use accel_sim::{DeviceSpec, KernelProfile, RooflineTerms, SimTime};
use parking_lot::Mutex;

/// The bundle every instrumented layer shares (behind an `Arc`): the
/// OpenACC runtime, the MPI halo simulator, and the RTM drivers all record
/// into the same session, which `accprof` then serializes as one timeline,
/// one metrics table, and one registry snapshot.
#[derive(Debug, Default)]
pub struct ObsSession {
    /// Span timeline.
    pub tracer: Tracer,
    /// Per-kernel counter table.
    metrics: Mutex<MetricsTable>,
    /// Counters / gauges / histograms.
    pub registry: Registry,
}

impl ObsSession {
    /// Empty session.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a span (convenience passthrough).
    pub fn span(&self, span: Span) {
        self.tracer.record(span);
    }

    /// Record one kernel launch into the metrics table and the standard
    /// registry series (`kernels_launched`, `kernel_exec_s` histogram).
    pub fn record_kernel(
        &self,
        dev: &DeviceSpec,
        profile: &KernelProfile,
        terms: &RooflineTerms,
        exec_s: SimTime,
    ) {
        self.metrics.lock().record(dev, profile, terms, exec_s);
        self.registry.inc("kernels_launched", 1);
        self.registry.observe("kernel_exec_s", exec_s);
    }

    /// Snapshot of the metrics table.
    pub fn metrics(&self) -> MetricsTable {
        self.metrics.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanCat, Track};
    use accel_sim::kernel::roofline_terms;

    #[test]
    fn session_routes_to_all_three_sinks() {
        let s = ObsSession::new();
        let dev = DeviceSpec::k40();
        let p = KernelProfile::new("k", 1 << 16, 40.0, 20.0, 40);
        let t = roofline_terms(&dev, &p);
        s.record_kernel(&dev, &p, &t, t.exec_s);
        s.span(Span::new(
            Track::DeviceStream(0),
            SpanCat::Kernel,
            "k",
            0.0,
            t.exec_s,
        ));
        assert_eq!(s.registry.counter("kernels_launched"), 1);
        assert_eq!(s.metrics().len(), 1);
        assert_eq!(s.tracer.len(), 1);
        assert_eq!(s.registry.histogram("kernel_exec_s").unwrap().count, 1);
    }
}
