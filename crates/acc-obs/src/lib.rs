//! # acc-obs
//!
//! Full-stack observability for the simulated OpenACC/RTM pipeline — the
//! reproduction's stand-in for the paper's Section 6 toolbox ("Nvidia
//! profiler was the main tool used to analyze our performance
//! measurements", `nvprof --metrics`, and the visual timeline).
//!
//! Three cooperating pieces, bundled by [`ObsSession`]:
//!
//! * **Spans** ([`tracer`]) — structured begin/end intervals in *simulated*
//!   time, on per-component tracks (host, one per device stream, one per
//!   MPI rank). The OpenACC runtime emits directive and data-movement
//!   spans, the accel layer kernel/memcpy spans at the timestamps the
//!   stream scheduler actually assigned, `mpi-sim` halo-exchange spans,
//!   and `rtm-core` per-shot phase, checkpoint, and resilience spans.
//!   [`Tracer::chrome_trace`] serializes the whole timeline as Perfetto /
//!   `chrome://tracing` JSON.
//! * **Kernel counters** ([`metrics`]) — an `nvprof --metrics`-style table
//!   (achieved occupancy, DRAM read/write throughput, coalescing
//!   efficiencies, spill traffic, roofline classification) derived from
//!   [`accel_sim::RooflineTerms`], the *same* struct the timing model
//!   consumes, so counters and timings agree by construction.
//! * **Registry** ([`registry`]) — named counters, gauges, and
//!   log-bucketed histograms (kernels launched, bytes by direction, halo
//!   bytes, retries, checkpoint traffic) serializable to JSON.
//! * **Wall-clock bridge** ([`wallclock`]) — ingests the host engine's
//!   real-time profile (`exec_host::prof`) as `wall worker N` tracks in
//!   the *same* trace (distinct clock domain, explicitly labeled), plus
//!   derived gang metrics: utilization, barrier-wait fraction, slab
//!   imbalance, tiles/s per worker.

pub mod metrics;
pub mod registry;
pub mod session;
pub mod span;
pub mod tracer;
pub mod wallclock;

pub use metrics::{BoundKind, KernelMetrics, MetricsTable};
pub use registry::{Histogram, Registry};
pub use session::ObsSession;
pub use span::{Span, SpanCat, Track};
pub use tracer::Tracer;
pub use wallclock::{HostReport, WorkerStat};
