//! Bridge from the host engine's wall-clock profiler to the observability
//! session: `exec_host::prof::HostProfile` → spans on [`Track::WallWorker`]
//! tracks, histograms/counters in the [`Registry`], and a derived
//! [`HostReport`] (utilization, barrier-wait fraction, slab imbalance,
//! tiles/s per worker).
//!
//! ## Two clock domains, one trace
//!
//! Every other track in the tracer carries *simulated* seconds from the
//! accel-sim scheduler; wall-clock tracks carry *real elapsed* seconds
//! since the profiler epoch. Both render in one Perfetto document — the
//! track label prefix (`wall worker N`) and a `clock=wall` arg on every
//! span mark the domain, so a reader never mistakes modeled time for
//! measured time. The timestamps are deliberately **not** aligned or
//! rescaled: the point of the calibration layer is to compare the two
//! domains, not to blend them.
//!
//! `TileBatch` instants are folded into counters and per-worker tile
//! totals rather than rendered as spans — a small run records tens of
//! thousands of them, which would drown the timeline.

use crate::registry::Histogram;
use crate::session::ObsSession;
use crate::span::{Span, SpanCat, Track};
use exec_host::prof::{phase_name, Event, EventKind, HostProfile};

const NS: f64 = 1e-9;

/// Per-worker-slot wall-clock statistics derived from one profile.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerStat {
    /// Thread slot in the profiler's registry.
    pub slot: u32,
    /// Slabs executed.
    pub slabs: u64,
    /// Grid rows executed.
    pub rows: u64,
    /// x-tiles executed.
    pub tiles: u64,
    /// Seconds inside slab bodies.
    pub busy_s: f64,
    /// Seconds the launching caller spent in the join barrier.
    pub barrier_wait_s: f64,
    /// Seconds of publish→pickup wake latency.
    pub wake_s: f64,
    /// Tiles per busy second (0 when never busy).
    pub tiles_per_s: f64,
}

/// Gang-level roll-up of one drained host profile.
#[derive(Debug, Clone, PartialEq)]
pub struct HostReport {
    /// Wall-clock extent of the profile (first event start → last end), s.
    pub wall_s: f64,
    /// Per-slot statistics, slot-ordered (slots that only recorded
    /// non-slab events still appear).
    pub workers: Vec<WorkerStat>,
    /// Σ busy / (slab-executing slots × wall): how much of the engaged
    /// threads' time went into slab bodies.
    pub utilization: f64,
    /// Σ barrier-wait / Σ sweep time: the fraction of launch wall time the
    /// caller spent waiting on stragglers.
    pub barrier_wait_frac: f64,
    /// Max slab-executing slot busy time / mean busy time (1.0 = perfectly
    /// balanced claims; 0 when no slabs ran).
    pub imbalance: f64,
    /// Wall seconds per phase: `[forward, backward, imaging]`. Imaging is
    /// nested inside backward.
    pub phases_s: [f64; 3],
    /// Gang launches observed.
    pub sweeps: u64,
    /// Slabs observed.
    pub slabs: u64,
    /// Tiles observed.
    pub tiles: u64,
    /// Events lost to full rings.
    pub dropped: u64,
    /// Events lost to thread-slot exhaustion.
    pub thread_overflow: u64,
}

impl HostReport {
    /// The report as a JSON object (the `host_profile.json` payload's
    /// `report` section).
    pub fn to_json(&self) -> serde_json::Value {
        let mut o = serde_json::Map::new();
        o.insert("wall_s", self.wall_s);
        o.insert("utilization", self.utilization);
        o.insert("barrier_wait_frac", self.barrier_wait_frac);
        o.insert("imbalance", self.imbalance);
        let mut phases = serde_json::Map::new();
        for (i, s) in self.phases_s.iter().enumerate() {
            phases.insert(phase_name(i as u32), *s);
        }
        o.insert("phases_s", phases);
        o.insert("sweeps", self.sweeps);
        o.insert("slabs", self.slabs);
        o.insert("tiles", self.tiles);
        o.insert("dropped", self.dropped);
        o.insert("thread_overflow", self.thread_overflow);
        o.insert(
            "workers",
            self.workers
                .iter()
                .map(|w| {
                    let mut m = serde_json::Map::new();
                    m.insert("slot", u64::from(w.slot));
                    m.insert("slabs", w.slabs);
                    m.insert("rows", w.rows);
                    m.insert("tiles", w.tiles);
                    m.insert("busy_s", w.busy_s);
                    m.insert("barrier_wait_s", w.barrier_wait_s);
                    m.insert("wake_s", w.wake_s);
                    m.insert("tiles_per_s", w.tiles_per_s);
                    serde_json::Value::Object(m)
                })
                .collect::<Vec<serde_json::Value>>(),
        );
        serde_json::Value::Object(o)
    }
}

/// Derive the gang-level report from a drained profile.
pub fn report(profile: &HostProfile) -> HostReport {
    let (lo_ns, hi_ns) = profile.time_bounds_ns();
    let wall_s = (hi_ns - lo_ns) as f64 * NS;
    let mut workers: Vec<WorkerStat> = profile
        .worker_summaries()
        .iter()
        .map(|w| {
            let busy_s = w.busy_ns as f64 * NS;
            WorkerStat {
                slot: w.slot,
                slabs: w.slabs,
                rows: w.rows,
                tiles: w.tiles,
                busy_s,
                barrier_wait_s: w.barrier_wait_ns as f64 * NS,
                wake_s: w.wake_ns as f64 * NS,
                tiles_per_s: if busy_s > 0.0 {
                    w.tiles as f64 / busy_s
                } else {
                    0.0
                },
            }
        })
        .collect();
    workers.sort_by_key(|w| w.slot);

    let engaged: Vec<&WorkerStat> = workers.iter().filter(|w| w.slabs > 0).collect();
    let busy_total: f64 = engaged.iter().map(|w| w.busy_s).sum();
    let utilization = if wall_s > 0.0 && !engaged.is_empty() {
        busy_total / (engaged.len() as f64 * wall_s)
    } else {
        0.0
    };
    let imbalance = if !engaged.is_empty() && busy_total > 0.0 {
        let max = engaged.iter().map(|w| w.busy_s).fold(0.0, f64::max);
        max / (busy_total / engaged.len() as f64)
    } else {
        0.0
    };

    let mut sweep_ns = 0u64;
    let mut barrier_ns = 0u64;
    let mut sweeps = 0u64;
    for s in &profile.slots {
        for e in &s.events {
            match e.kind {
                EventKind::Sweep => {
                    sweeps += 1;
                    sweep_ns += e.dur_ns();
                }
                EventKind::BarrierWait => barrier_ns += e.dur_ns(),
                _ => {}
            }
        }
    }
    let barrier_wait_frac = if sweep_ns > 0 {
        barrier_ns as f64 / sweep_ns as f64
    } else {
        0.0
    };
    let phase_ns = profile.phase_totals_ns();

    HostReport {
        wall_s,
        utilization,
        barrier_wait_frac,
        imbalance,
        phases_s: [
            phase_ns[0] as f64 * NS,
            phase_ns[1] as f64 * NS,
            phase_ns[2] as f64 * NS,
        ],
        sweeps,
        slabs: workers.iter().map(|w| w.slabs).sum(),
        tiles: workers.iter().map(|w| w.tiles).sum(),
        dropped: profile.dropped,
        thread_overflow: profile.thread_overflow,
        workers,
    }
}

fn span_for(slot: u32, e: &Event) -> Option<Span> {
    let (cat, name) = match e.kind {
        EventKind::Sweep => (SpanCat::Sweep, format!("sweep g{}", e.arg0)),
        EventKind::Slab => (SpanCat::Slab, format!("slab g{}", e.arg0)),
        EventKind::BarrierWait => (SpanCat::Barrier, "barrier".to_string()),
        EventKind::Wake => (SpanCat::Wake, "wake".to_string()),
        EventKind::Phase => (SpanCat::Phase, phase_name(e.arg0).to_string()),
        // Folded into counters — see module docs.
        EventKind::TileBatch => return None,
    };
    Some(
        Span::new(
            Track::WallWorker(slot),
            cat,
            name,
            e.start_ns as f64 * NS,
            e.dur_ns() as f64 * NS,
        )
        .with_arg("clock", "wall"),
    )
}

/// Ingest a drained profile into a session: spans onto `wall worker N`
/// tracks (tagged `clock=wall`), per-event-kind duration histograms
/// (`host_slab_s`, `host_sweep_s`, `host_barrier_wait_s`, `host_wake_s`),
/// counters (`host_sweeps`, `host_slabs`, `host_tiles`,
/// `host_prof_dropped`, `host_prof_thread_overflow`), and headline gauges
/// from the derived report. Returns that report.
pub fn ingest(profile: &HostProfile, session: &ObsSession) -> HostReport {
    let mut slab_h = Histogram::default();
    let mut sweep_h = Histogram::default();
    let mut barrier_h = Histogram::default();
    let mut wake_h = Histogram::default();
    for s in &profile.slots {
        for e in &s.events {
            let dur_s = e.dur_ns() as f64 * NS;
            match e.kind {
                EventKind::Slab => slab_h.observe(dur_s),
                EventKind::Sweep => sweep_h.observe(dur_s),
                EventKind::BarrierWait => barrier_h.observe(dur_s),
                EventKind::Wake => wake_h.observe(dur_s),
                EventKind::TileBatch | EventKind::Phase => {}
            }
            if let Some(span) = span_for(s.slot, e) {
                session.span(span);
            }
        }
    }
    session.registry.merge_histogram("host_slab_s", &slab_h);
    session.registry.merge_histogram("host_sweep_s", &sweep_h);
    session
        .registry
        .merge_histogram("host_barrier_wait_s", &barrier_h);
    session.registry.merge_histogram("host_wake_s", &wake_h);

    let rep = report(profile);
    session.registry.inc("host_sweeps", rep.sweeps);
    session.registry.inc("host_slabs", rep.slabs);
    session.registry.inc("host_tiles", rep.tiles);
    session.registry.inc("host_prof_dropped", rep.dropped);
    session
        .registry
        .inc("host_prof_thread_overflow", rep.thread_overflow);
    session
        .registry
        .set_gauge("host_utilization", rep.utilization);
    session
        .registry
        .set_gauge("host_barrier_wait_frac", rep.barrier_wait_frac);
    session.registry.set_gauge("host_imbalance", rep.imbalance);
    session.registry.set_gauge("host_wall_s", rep.wall_s);
    rep
}

/// Serialize one drained profile as the standalone `host_profile.json`
/// document: the derived report plus the raw per-slot event streams.
pub fn host_profile_json(profile: &HostProfile) -> String {
    let rep = report(profile);
    let mut doc = serde_json::Map::new();
    doc.insert("clock", "wall");
    doc.insert("report", rep.to_json());
    doc.insert(
        "slots",
        profile
            .slots
            .iter()
            .map(|s| {
                let mut m = serde_json::Map::new();
                m.insert("slot", u64::from(s.slot));
                m.insert(
                    "events",
                    s.events
                        .iter()
                        .map(|e| {
                            let mut ev = serde_json::Map::new();
                            ev.insert(
                                "kind",
                                match e.kind {
                                    EventKind::Sweep => "sweep",
                                    EventKind::Slab => "slab",
                                    EventKind::BarrierWait => "barrier_wait",
                                    EventKind::Wake => "wake",
                                    EventKind::TileBatch => "tile_batch",
                                    EventKind::Phase => "phase",
                                },
                            );
                            ev.insert("arg0", u64::from(e.arg0));
                            ev.insert("arg1", u64::from(e.arg1));
                            ev.insert("start_ns", e.start_ns);
                            ev.insert("end_ns", e.end_ns);
                            serde_json::Value::Object(ev)
                        })
                        .collect::<Vec<serde_json::Value>>(),
                );
                serde_json::Value::Object(m)
            })
            .collect::<Vec<serde_json::Value>>(),
    );
    serde_json::to_string_pretty(&serde_json::Value::Object(doc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use exec_host::prof::{SlotEvents, PHASE_BACKWARD, PHASE_FORWARD, PHASE_IMAGING};

    fn ev(kind: EventKind, arg0: u32, arg1: u32, start_ns: u64, end_ns: u64) -> Event {
        Event {
            kind,
            arg0,
            arg1,
            start_ns,
            end_ns,
        }
    }

    /// A hand-built profile: caller slot (sweep ⊇ slab + barrier, phases)
    /// and one worker slot (wake then slab).
    fn sample_profile() -> HostProfile {
        HostProfile {
            slots: vec![
                SlotEvents {
                    slot: 0,
                    events: vec![
                        ev(EventKind::Phase, PHASE_FORWARD, 0, 0, 10_000),
                        ev(EventKind::Sweep, 2, 64, 1_000, 9_000),
                        ev(EventKind::Slab, 0, 32, 1_200, 5_000),
                        ev(EventKind::BarrierWait, 2, 0, 5_100, 8_800),
                        ev(EventKind::Phase, PHASE_BACKWARD, 0, 10_000, 30_000),
                        ev(EventKind::Phase, PHASE_IMAGING, 0, 12_000, 14_000),
                    ],
                },
                SlotEvents {
                    slot: 1,
                    events: vec![
                        ev(EventKind::Wake, 1, 0, 1_050, 1_150),
                        ev(EventKind::Slab, 1, 32, 1_200, 8_700),
                        ev(EventKind::TileBatch, 5, 64, 1_300, 1_300),
                    ],
                },
            ],
            dropped: 2,
            thread_overflow: 0,
        }
    }

    #[test]
    fn report_derives_gang_metrics() {
        let rep = report(&sample_profile());
        assert_eq!(rep.sweeps, 1);
        assert_eq!(rep.slabs, 2);
        assert_eq!(rep.tiles, 5);
        assert_eq!(rep.dropped, 2);
        assert!((rep.wall_s - 30_000.0 * NS).abs() < 1e-12);
        // Phases: forward 10µs, backward 20µs, imaging 2µs.
        assert!((rep.phases_s[0] - 1e-5).abs() < 1e-12);
        assert!((rep.phases_s[1] - 2e-5).abs() < 1e-12);
        assert!((rep.phases_s[2] - 2e-6).abs() < 1e-12);
        // Barrier fraction = 3700 / 8000 of sweep time.
        assert!((rep.barrier_wait_frac - 3700.0 / 8000.0).abs() < 1e-9);
        // Two engaged slots; busy 3800ns and 7500ns → imbalance > 1.
        assert!(rep.imbalance > 1.0 && rep.imbalance < 2.0, "{rep:?}");
        assert!(rep.utilization > 0.0 && rep.utilization < 1.0);
        let w1 = rep.workers.iter().find(|w| w.slot == 1).unwrap();
        assert_eq!(w1.tiles, 5);
        assert!(w1.tiles_per_s > 0.0);
        assert!((w1.wake_s - 100.0 * NS).abs() < 1e-15);
    }

    #[test]
    fn ingest_lands_spans_metrics_and_validates() {
        let session = ObsSession::new();
        // A simulated-time span shares the trace with the wall tracks.
        session.span(Span::new(Track::Host, SpanCat::Phase, "forward", 0.0, 1.0));
        let rep = ingest(&sample_profile(), &session);
        assert!(rep.sweeps == 1);
        // Tile instants are not rendered as spans: 8 spans + 1 simulated.
        assert_eq!(session.tracer.len(), 10 - 1);
        // Both clock domains present, flame discipline holds per track.
        let tracks = session.tracer.tracks();
        assert!(tracks.contains(&Track::Host));
        assert!(tracks.contains(&Track::WallWorker(0)));
        assert!(tracks.contains(&Track::WallWorker(1)));
        session.tracer.validate_tracks().expect("nesting holds");
        // Every wall span carries the clock marker.
        for s in session.tracer.spans() {
            match s.track {
                Track::WallWorker(_) => {
                    assert!(s.args.iter().any(|(k, v)| k == "clock" && v == "wall"))
                }
                _ => assert!(!s.args.iter().any(|(k, _)| k == "clock")),
            }
        }
        // Registry got histograms, counters, and gauges.
        assert_eq!(session.registry.histogram("host_slab_s").unwrap().count, 2);
        assert_eq!(session.registry.histogram("host_wake_s").unwrap().count, 1);
        assert_eq!(session.registry.counter("host_slabs"), 2);
        assert_eq!(session.registry.counter("host_tiles"), 5);
        assert_eq!(session.registry.counter("host_prof_dropped"), 2);
        assert!(session.registry.gauge("host_utilization").unwrap() > 0.0);
    }

    #[test]
    fn host_profile_json_is_valid_and_complete() {
        let doc = host_profile_json(&sample_profile());
        let v = serde_json::from_str(&doc).expect("valid JSON");
        assert_eq!(v.get("clock").unwrap().as_str(), Some("wall"));
        let rep = v.get("report").unwrap();
        assert_eq!(rep.get("sweeps").unwrap().as_u64(), Some(1));
        assert_eq!(rep.get("slabs").unwrap().as_u64(), Some(2));
        assert!(rep.get("phases_s").unwrap().get("forward").is_some());
        let slots = v.get("slots").unwrap().as_array().unwrap();
        assert_eq!(slots.len(), 2);
        let ev0 = &slots[0].get("events").unwrap().as_array().unwrap()[0];
        assert_eq!(ev0.get("kind").unwrap().as_str(), Some("phase"));
        assert_eq!(ev0.get("end_ns").unwrap().as_u64(), Some(10_000));
    }

    #[test]
    fn empty_profile_is_benign() {
        let rep = report(&HostProfile::default());
        assert_eq!(rep.wall_s, 0.0);
        assert_eq!(rep.utilization, 0.0);
        assert_eq!(rep.imbalance, 0.0);
        assert!(rep.workers.is_empty());
        let session = ObsSession::new();
        ingest(&HostProfile::default(), &session);
        assert!(session.tracer.is_empty());
        let doc = host_profile_json(&HostProfile::default());
        assert!(serde_json::from_str(&doc).is_ok());
    }
}
