//! Span and track types for the simulated-time timeline.

use accel_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Which timeline row a span belongs to. Tracks render as separate rows in
/// Perfetto; within one track, spans are expected to be serial (the trace
/// validators enforce monotone, non-overlapping placement per track).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Track {
    /// Host (CPU) activity: directives, phases, host-side compute.
    Host,
    /// One device stream (kernels and the copies issued to it).
    DeviceStream(u32),
    /// One simulated MPI rank (halo exchanges, shot scheduling).
    MpiRank(u32),
    /// One fleet device of the job server (`acc-serve`): shot execution,
    /// backoff sleeps, and circuit-breaker transitions.
    Service(u32),
    /// One wall-clock host-engine thread slot (`exec-host::prof`). Unlike
    /// every other track, timestamps here are **real elapsed seconds**
    /// since the profiler epoch, not simulated time — the label and the
    /// `clock=wall` span arg mark the clock domain when both kinds share
    /// one trace.
    WallWorker(u32),
}

impl Track {
    /// Stable human-readable label — becomes the trace `tid`.
    pub fn label(&self) -> String {
        match self {
            Track::Host => "host".to_string(),
            Track::DeviceStream(s) => format!("stream {s}"),
            Track::MpiRank(r) => format!("rank {r}"),
            Track::Service(d) => format!("serve dev {d}"),
            Track::WallWorker(w) => format!("wall worker {w}"),
        }
    }
}

/// Span category — becomes the trace `cat`, used by Perfetto for filtering
/// and coloring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpanCat {
    /// OpenACC directive enter/exit (`parallel`, `kernels`, `data`).
    Directive,
    /// Device kernel execution.
    Kernel,
    /// Host→device transfer.
    MemcpyH2D,
    /// Device→host transfer.
    MemcpyD2H,
    /// Stream/queue wait.
    Wait,
    /// MPI halo exchange.
    Halo,
    /// RTM phase (per-shot forward/backward/imaging).
    Phase,
    /// Checkpoint write or restore.
    Checkpoint,
    /// Resilience event (retry backoff, blacklist, reschedule).
    Resilience,
    /// Job-server event (shot dispatch, shed, breaker transition).
    Service,
    /// Wall-clock gang launch (`par_slabs` end to end) on the host engine.
    Sweep,
    /// Wall-clock slab execution by one gang on the host engine.
    Slab,
    /// Wall-clock fork-join barrier wait on the host engine.
    Barrier,
    /// Wall-clock worker wake latency (job publish → pickup).
    Wake,
}

impl SpanCat {
    /// Stable category string for trace serialization.
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanCat::Directive => "directive",
            SpanCat::Kernel => "kernel",
            SpanCat::MemcpyH2D => "memcpy_h2d",
            SpanCat::MemcpyD2H => "memcpy_d2h",
            SpanCat::Wait => "wait",
            SpanCat::Halo => "halo",
            SpanCat::Phase => "phase",
            SpanCat::Checkpoint => "checkpoint",
            SpanCat::Resilience => "resilience",
            SpanCat::Service => "service",
            SpanCat::Sweep => "sweep",
            SpanCat::Slab => "slab",
            SpanCat::Barrier => "barrier",
            SpanCat::Wake => "wake",
        }
    }
}

/// One closed interval on the timeline, in simulated seconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Timeline row.
    pub track: Track,
    /// Category.
    pub cat: SpanCat,
    /// Event name (kernel name, `copyin:u`, `halo:north`, …).
    pub name: String,
    /// True simulated start, seconds — propagated from the scheduler that
    /// placed the underlying event, not reconstructed after the fact.
    pub start_s: SimTime,
    /// Duration, seconds.
    pub dur_s: SimTime,
    /// Payload bytes (transfers, halos, checkpoints; 0 = not applicable).
    pub bytes: u64,
    /// Extra key/value annotations (neighbor rank, attempt number, …).
    pub args: Vec<(String, String)>,
}

impl Span {
    /// Span with no byte payload or annotations.
    pub fn new(
        track: Track,
        cat: SpanCat,
        name: impl Into<String>,
        start_s: SimTime,
        dur_s: SimTime,
    ) -> Self {
        Self {
            track,
            cat,
            name: name.into(),
            start_s,
            dur_s,
            bytes: 0,
            args: Vec::new(),
        }
    }

    /// Attach a byte payload.
    pub fn with_bytes(mut self, bytes: u64) -> Self {
        self.bytes = bytes;
        self
    }

    /// Attach one key/value annotation.
    pub fn with_arg(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.args.push((key.into(), value.into()));
        self
    }

    /// End timestamp, seconds.
    pub fn end_s(&self) -> SimTime {
        self.start_s + self.dur_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn track_labels_are_distinct_and_stable() {
        assert_eq!(Track::Host.label(), "host");
        assert_eq!(Track::DeviceStream(3).label(), "stream 3");
        assert_eq!(Track::MpiRank(7).label(), "rank 7");
        assert_eq!(Track::Service(2).label(), "serve dev 2");
        assert_eq!(Track::WallWorker(5).label(), "wall worker 5");
    }

    #[test]
    fn span_builders_compose() {
        let s = Span::new(Track::MpiRank(1), SpanCat::Halo, "halo:up", 0.5, 0.01)
            .with_bytes(4096)
            .with_arg("neighbor", "2");
        assert_eq!(s.end_s(), 0.51);
        assert_eq!(s.bytes, 4096);
        assert_eq!(s.args[0].1, "2");
        assert_eq!(s.cat.as_str(), "halo");
    }
}
