//! # openacc-sim
//!
//! An OpenACC-style directive runtime over the simulated accelerator.
//!
//! The paper programs its GPUs exclusively through OpenACC 2.0 directives
//! compiled by PGI (13.7 / 14.3 / 14.6) and CRAY (8.2.6). This crate
//! reproduces that programming surface in Rust:
//!
//! * [`data`] — the device data environment: `enter data copyin`,
//!   `exit data delete`, `update host/device`, `present`, `create`, with
//!   real capacity accounting on the simulated card and every transfer
//!   priced through the PCIe model and recorded in the profiler,
//! * [`access`] — declared per-kernel read/write sets as affine
//!   `base + stride·i` descriptors: the checkable form of every directive
//!   claim, consumed by the `acc-verify` static analyzer and replayed by
//!   the Tier-2 sanitizer in [`exec`],
//! * [`construct`] — the compute constructs: `kernels` and `parallel` with
//!   loop scheduling clauses (`gang`/`worker`/`vector`, `collapse`,
//!   `independent`, `seq`, `async`),
//! * [`compiler`] — two mapping back-ends with the *different heuristics*
//!   the paper measured: `PgiLike` ("it was more efficient to use the
//!   kernels directive to allow the compiler to handle the existing
//!   worksharing") and `CrayLike` ("the more information you pass to the
//!   compiler, the better performance you get"), including the PGI
//!   14.3 / 14.6 CUDA-backend differences of Figures 6/7,
//! * [`exec`] — the host-side execution engine that actually runs the loop
//!   bodies (gangs = thread slabs over the z-range), so wavefields are
//!   computed for real while the time is simulated. Gang launches run on
//!   the persistent worker pool of the re-exported [`exec_host`] crate
//!   (parked threads + fork-join barrier) instead of spawning OS threads
//!   per launch,
//! * [`runtime`] — [`runtime::AccRuntime`] tying it all together: launches
//!   price a kernel via the compiler's [`compiler::KernelPlan`] and the
//!   roofline model, append to a stream queue, and advance the simulated
//!   clock; data directives move simulated bytes.

pub use exec_host;

pub mod access;
pub mod compiler;
pub mod construct;
pub mod data;
pub mod exec;
pub mod runtime;

pub use access::{AccessSet, AffineAccess, ReduceOp, ReductionAccess};
pub use compiler::{Compiler, KernelPlan, PgiVersion};
pub use construct::{Clause, ConstructKind, LoopNest, LoopSched};
pub use data::DataEnv;
pub use runtime::{AccRuntime, RuntimeError};
