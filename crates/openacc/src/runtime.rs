//! The OpenACC runtime: clock, launches, data movement, async queues.

use crate::access::AccessSet;
use crate::compiler::Compiler;
use crate::construct::{Clause, ConstructKind, LoopNest};
use crate::data::{DataEnv, DataError};
use acc_obs::{ObsSession, Span, SpanCat, Track};
use accel_sim::kernel::{roofline_terms, KernelProfile, KernelTiming};
use accel_sim::pcie::{HostAlloc, TransferKind};
use accel_sim::stream::{IssueMode, QueuedKernel, StreamSim};
use accel_sim::{DeviceSpec, EventKind, Profiler, SimTime};
use seismic_prop::desc::KernelDesc;
use std::sync::Arc;

/// Errors from runtime operations — the same vocabulary `acc-verify`
/// diagnoses statically, surfaced at execution time.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// A data-environment operation failed.
    Data(DataError),
    /// `wait` with no asynchronous work pending anywhere — almost always a
    /// doubled `wait` directive (the first drain already consumed the
    /// queues), surfaced explicitly instead of as a silent zero-time no-op.
    NothingPending,
    /// `wait(queue)` on a queue with nothing in flight.
    QueueEmpty(u32),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Data(e) => write!(f, "{e}"),
            RuntimeError::NothingPending => {
                write!(f, "wait with no async work pending (doubled wait?)")
            }
            RuntimeError::QueueEmpty(q) => write!(f, "wait on empty async queue {q}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<DataError> for RuntimeError {
    fn from(e: DataError) -> Self {
        RuntimeError::Data(e)
    }
}

/// A device context: simulated clock + data environment + async queues.
///
/// Drivers call [`AccRuntime::launch`] once per kernel per time step with
/// the propagator's static descriptor and the directives they would have
/// written in Fortran; the runtime lowers them through the configured
/// compiler, prices the launch, and advances the simulated clock.
pub struct AccRuntime {
    compiler: Compiler,
    data: DataEnv,
    profiler: Profiler,
    queue: StreamSim,
    clock: SimTime,
    /// Observability session, when attached: receives directive/kernel/
    /// transfer spans, per-kernel counters, and registry increments in
    /// addition to the profiler ledger. Never perturbs modeled timings.
    obs: Option<Arc<ObsSession>>,
    /// Global `-ta=nvidia,maxregcount:n` compile flag (the paper's best
    /// strategy pinned 64).
    pub default_maxregcount: Option<u32>,
}

impl AccRuntime {
    /// New runtime for a device/compiler pair with pinned host memory (the
    /// paper's best compile line uses `pin`).
    pub fn new(dev: DeviceSpec, compiler: Compiler) -> Self {
        Self {
            compiler,
            data: DataEnv::new(dev, HostAlloc::Pinned),
            profiler: Profiler::new(),
            queue: StreamSim::new(),
            clock: 0.0,
            obs: None,
            default_maxregcount: Some(64),
        }
    }

    /// Attach an observability session; subsequent launches, waits, and
    /// data directives record spans, counters, and metrics into it.
    pub fn attach_obs(&mut self, obs: Arc<ObsSession>) {
        self.obs = Some(obs);
    }

    /// The attached observability session, if any.
    pub fn obs(&self) -> Option<&Arc<ObsSession>> {
        self.obs.as_ref()
    }

    /// The device spec.
    pub fn device(&self) -> &DeviceSpec {
        self.data.device()
    }

    /// The configured compiler.
    pub fn compiler(&self) -> Compiler {
        self.compiler
    }

    /// The data environment.
    pub fn data(&mut self) -> &mut DataEnv {
        &mut self.data
    }

    /// The profiler ledger.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Simulated wall-clock so far.
    pub fn elapsed(&self) -> SimTime {
        self.clock
    }

    /// Add host-side simulated time (e.g. the CPU part of a driver step).
    pub fn advance_host(&mut self, dt: SimTime) {
        self.clock += dt;
    }

    /// Launch one kernel described by `desc` over `nest` under the given
    /// construct and clauses. Synchronous launches advance the clock
    /// immediately; async launches queue until [`AccRuntime::wait_async`].
    pub fn launch(
        &mut self,
        desc: &KernelDesc,
        nest: &LoopNest,
        kind: ConstructKind,
        clauses: &[Clause],
    ) -> KernelTiming {
        let plan = self
            .compiler
            .map(nest, kind, clauses, desc.divergence > 0.0);
        let dev = self.data.device();
        let rw = desc.reads + desc.writes;
        let profile = KernelProfile {
            name: desc.name.to_string(),
            points: nest.points(),
            flops_per_point: desc.flops,
            bytes_per_point: desc.bytes_per_point(),
            regs_needed: desc.regs,
            maxregcount: plan.maxregcount.or(self.default_maxregcount),
            coalesced: desc.coalesced && plan.coalesced,
            divergence: desc.divergence,
            vectorized: plan.vectorized,
            read_fraction: if rw > 0.0 { desc.reads / rw } else { 0.5 },
        };
        let terms = roofline_terms(dev, &profile);
        let exec_s = terms.exec_s * plan.quality;
        let timing = KernelTiming {
            total_s: exec_s + dev.launch_overhead_s,
            exec_s,
            memory_bound: terms.memory_bound,
            occupancy: terms.occupancy,
            spilled: terms.spilled,
        };
        if let Some(obs) = &self.obs {
            obs.record_kernel(dev, &profile, &terms, exec_s);
        }

        let stream = plan.async_stream.unwrap_or(0);
        match plan.async_stream {
            Some(q) => {
                // Async: the kernel's true start is only known once the
                // drain schedule runs, so profiler/tracer recording is
                // deferred to the wait (see `try_wait_async`).
                let capacity = f64::from(dev.sm_count) * f64::from(dev.max_threads_per_sm);
                self.queue.push(QueuedKernel {
                    name: desc.name.to_string(),
                    exec_s,
                    sm_fraction: ((nest.points() as f64) / capacity).min(1.0),
                    stream: q,
                });
            }
            None => {
                // Sync: the host pays the issue gap, the device the launch
                // overhead, then the kernel executes.
                let start = self.clock + dev.issue_gap_s + dev.launch_overhead_s;
                self.profiler
                    .record(EventKind::Kernel, desc.name, start, exec_s, stream);
                if let Some(obs) = &self.obs {
                    obs.span(Span::new(
                        Track::Host,
                        SpanCat::Directive,
                        format!("launch:{}", desc.name),
                        self.clock,
                        dev.issue_gap_s + dev.launch_overhead_s,
                    ));
                    obs.span(Span::new(
                        Track::DeviceStream(stream),
                        SpanCat::Kernel,
                        desc.name,
                        start,
                        exec_s,
                    ));
                }
                self.clock += dev.issue_gap_s + timing.total_s;
            }
        }
        timing
    }

    /// Launch with a declared access pattern: performs the `present` check
    /// the directive implies for every referenced array, marks written
    /// arrays device-dirty (feeding the stale-host-read detector), then
    /// launches as [`AccRuntime::launch`] does.
    pub fn launch_with_access(
        &mut self,
        desc: &KernelDesc,
        nest: &LoopNest,
        kind: ConstructKind,
        clauses: &[Clause],
        access: &AccessSet,
    ) -> Result<KernelTiming, RuntimeError> {
        for array in access.arrays() {
            self.data.present(array)?;
        }
        for array in access.written_arrays() {
            self.data.mark_device_write(array);
        }
        Ok(self.launch(desc, nest, kind, clauses))
    }

    /// `!$acc wait` — drain all async queues, advancing the clock by the
    /// overlapped makespan.
    ///
    /// A `wait` with nothing pending is the OpenACC-spec no-op and returns
    /// `0.0`; use [`AccRuntime::try_wait_async`] when a doubled wait should
    /// be an error instead.
    pub fn wait_async(&mut self) -> SimTime {
        self.try_wait_async().unwrap_or(0.0)
    }

    /// `!$acc wait`, strict form: draining with no async work pending
    /// returns [`RuntimeError::NothingPending`] rather than silently doing
    /// nothing. This is the semantics `acc-verify`'s sanitizer runs under —
    /// a doubled `wait` in a directive sequence is almost always a logic
    /// error (the barrier the author expects is not where they think).
    pub fn try_wait_async(&mut self) -> Result<SimTime, RuntimeError> {
        if self.queue.is_empty() {
            return Err(RuntimeError::NothingPending);
        }
        let dev = self.data.device().clone();
        let sched = self.queue.drain_schedule(&dev, IssueMode::AsyncStreams);
        self.record_drained(&sched, "wait");
        self.clock += sched.makespan_s;
        Ok(sched.makespan_s)
    }

    /// `!$acc wait(queue)` — drain one async queue only; `0.0` when the
    /// queue is empty (spec no-op, see [`AccRuntime::try_wait_queue`]).
    pub fn wait_queue(&mut self, queue: u32) -> SimTime {
        self.try_wait_queue(queue).unwrap_or(0.0)
    }

    /// `!$acc wait(queue)`, strict form: an empty queue returns
    /// [`RuntimeError::QueueEmpty`].
    pub fn try_wait_queue(&mut self, queue: u32) -> Result<SimTime, RuntimeError> {
        if !self.queue.has_queue(queue) {
            return Err(RuntimeError::QueueEmpty(queue));
        }
        let dev = self.data.device().clone();
        let sched = self.queue.drain_queue_schedule(&dev, queue);
        self.record_drained(&sched, &format!("wait({queue})"));
        self.clock += sched.makespan_s;
        Ok(sched.makespan_s)
    }

    /// Deferred recording of async work at its wait: the drain schedule
    /// fixed each kernel's true start (relative to the wait, i.e. the
    /// current clock), so the profiler ledger and the trace carry real
    /// timestamps instead of a serial-per-stream approximation.
    fn record_drained(&mut self, sched: &accel_sim::DrainSchedule, wait_name: &str) {
        let base = self.clock;
        for k in &sched.kernels {
            self.profiler.record(
                EventKind::Kernel,
                k.name.clone(),
                base + k.start_s,
                k.exec_s,
                k.stream,
            );
        }
        if let Some(obs) = &self.obs {
            for k in &sched.kernels {
                obs.span(Span::new(
                    Track::DeviceStream(k.stream),
                    SpanCat::Kernel,
                    k.name.clone(),
                    base + k.start_s,
                    k.exec_s,
                ));
            }
            obs.span(Span::new(
                Track::Host,
                SpanCat::Wait,
                wait_name,
                base,
                sched.makespan_s,
            ));
        }
    }

    /// A structured `!$acc data copyin(...)` region: maps every listed
    /// variable, runs `body`, then unmaps them in reverse order — the
    /// structured counterpart of the enter/exit pairs, guaranteeing no
    /// leaks on early return.
    pub fn data_region<T>(
        &mut self,
        vars: &[(&str, u64)],
        body: impl FnOnce(&mut Self) -> T,
    ) -> Result<T, DataError> {
        let mut mapped: Vec<String> = Vec::with_capacity(vars.len());
        for (name, bytes) in vars {
            if let Err(e) = self.enter_data_copyin(name, *bytes) {
                self.unmap_region(&mapped)?;
                return Err(e);
            }
            mapped.push((*name).to_string());
        }
        let out = body(self);
        self.unmap_region(&mapped)?;
        Ok(out)
    }

    /// Unmap a structured region's variables in reverse order. The names
    /// were mapped by this region, so a delete failure means the body
    /// deleted one itself — surfaced as the typed error rather than a
    /// panic, after the remaining names are still cleaned up.
    fn unmap_region(&mut self, mapped: &[String]) -> Result<(), DataError> {
        let mut first_err = None;
        for done in mapped.iter().rev() {
            if let Err(e) = self.exit_data_delete(done) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Data directive: `enter data copyin`, advancing the clock.
    pub fn enter_data_copyin(&mut self, name: &str, bytes: u64) -> Result<(), DataError> {
        let now = self.clock;
        let t = self
            .data
            .enter_data_copyin(name, bytes, now, &self.profiler)?;
        if let Some(obs) = &self.obs {
            obs.span(
                Span::new(
                    Track::DeviceStream(0),
                    SpanCat::MemcpyH2D,
                    format!("copyin:{name}"),
                    now,
                    t,
                )
                .with_bytes(bytes),
            );
            obs.registry.inc("bytes_h2d", bytes);
        }
        self.clock += t;
        Ok(())
    }

    /// Data directive: `enter data create` (no transfer).
    pub fn enter_data_create(&mut self, name: &str, bytes: u64) -> Result<(), DataError> {
        let t = self.data.enter_data_create(name, bytes)?;
        self.clock += t;
        Ok(())
    }

    /// Data directive: `exit data delete`.
    pub fn exit_data_delete(&mut self, name: &str) -> Result<(), DataError> {
        self.data.exit_data_delete(name)?;
        if let Some(obs) = &self.obs {
            obs.span(Span::new(
                Track::DeviceStream(0),
                SpanCat::Directive,
                format!("delete:{name}"),
                self.clock,
                0.0,
            ));
        }
        Ok(())
    }

    /// `update host`, advancing the clock.
    pub fn update_host(
        &mut self,
        name: &str,
        bytes: Option<u64>,
        kind: TransferKind,
    ) -> Result<SimTime, DataError> {
        let now = self.clock;
        let moved = self.moved_bytes(name, bytes);
        let t = self
            .data
            .update_host(name, bytes, kind, now, &self.profiler)?;
        if let Some(obs) = &self.obs {
            obs.span(
                Span::new(
                    Track::DeviceStream(0),
                    SpanCat::MemcpyD2H,
                    format!("update_host:{name}"),
                    now,
                    t,
                )
                .with_bytes(moved),
            );
            obs.registry.inc("bytes_d2h", moved);
        }
        self.clock += t;
        Ok(t)
    }

    /// `update device`, advancing the clock.
    pub fn update_device(
        &mut self,
        name: &str,
        bytes: Option<u64>,
        kind: TransferKind,
    ) -> Result<SimTime, DataError> {
        let now = self.clock;
        let moved = self.moved_bytes(name, bytes);
        let t = self
            .data
            .update_device(name, bytes, kind, now, &self.profiler)?;
        if let Some(obs) = &self.obs {
            obs.span(
                Span::new(
                    Track::DeviceStream(0),
                    SpanCat::MemcpyH2D,
                    format!("update_device:{name}"),
                    now,
                    t,
                )
                .with_bytes(moved),
            );
            obs.registry.inc("bytes_h2d", moved);
        }
        self.clock += t;
        Ok(t)
    }

    /// Bytes a ranged `update` of `name` actually moves.
    fn moved_bytes(&self, name: &str, bytes: Option<u64>) -> u64 {
        let mapped = self.data.mapped_bytes(name).unwrap_or(0);
        bytes.unwrap_or(mapped).min(mapped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::PgiVersion;
    use seismic_prop::desc::KernelDesc;

    fn desc() -> KernelDesc {
        KernelDesc {
            name: "test_kernel",
            flops: 58.0,
            reads: 4.6,
            writes: 1.0,
            regs: 52,
            coalesced: true,
            divergence: 0.0,
        }
    }

    fn rt() -> AccRuntime {
        AccRuntime::new(DeviceSpec::k40(), Compiler::Pgi(PgiVersion::V14_6))
    }

    #[test]
    fn sync_launch_advances_clock() {
        let mut r = rt();
        let nest = LoopNest::new(&[128, 128, 128]);
        let t0 = r.elapsed();
        let timing = r.launch(
            &desc(),
            &nest,
            ConstructKind::Kernels,
            &[Clause::Independent],
        );
        assert!(r.elapsed() > t0);
        assert!(timing.exec_s > 0.0);
        assert_eq!(r.profiler().len(), 1);
    }

    #[test]
    fn async_launches_wait_for_drain() {
        let mut r = AccRuntime::new(DeviceSpec::k40(), Compiler::Cray);
        let nest = LoopNest::new(&[64, 64]);
        let before = r.elapsed();
        for q in 0..4 {
            r.launch(&desc(), &nest, ConstructKind::Parallel, &[Clause::Async(q)]);
        }
        // Async launches do not advance the clock until the wait.
        assert_eq!(r.elapsed(), before);
        let t = r.wait_async();
        assert!(t > 0.0);
        assert_eq!(r.elapsed(), before + t);
        // Second wait is a no-op.
        assert_eq!(r.wait_async(), 0.0);
    }

    /// The paper's async contrast: under CRAY, issuing the independent
    /// kernels on async streams beats synchronous issue of the *same*
    /// kernels (reduced launch lag); under PGI the clause changes nothing
    /// because it lands everything on one queue.
    #[test]
    fn cray_async_beats_cray_sync_pgi_unchanged() {
        let nest = LoopNest::new(&[512, 512]);
        let run = |compiler: Compiler, use_async: bool| {
            let mut r = AccRuntime::new(DeviceSpec::k40(), compiler);
            for q in 0..4u32 {
                let mut clauses = Vec::new();
                if use_async {
                    clauses.push(Clause::Async(q));
                }
                r.launch(&desc(), &nest, ConstructKind::Parallel, &clauses);
            }
            r.wait_async();
            r.elapsed()
        };
        let cray_sync = run(Compiler::Cray, false);
        let cray_async = run(Compiler::Cray, true);
        assert!(
            cray_async < cray_sync,
            "async {cray_async} vs sync {cray_sync}"
        );
        let pgi_sync = run(Compiler::Pgi(PgiVersion::V14_6), false);
        let pgi_async = run(Compiler::Pgi(PgiVersion::V14_6), true);
        assert!((pgi_sync - pgi_async).abs() < 1e-12, "PGI ignores async");
    }

    #[test]
    fn data_directives_roundtrip() {
        let mut r = rt();
        r.enter_data_copyin("u", 1 << 20).unwrap();
        let t = r
            .update_host("u", Some(1 << 10), TransferKind::Contiguous)
            .unwrap();
        assert!(t > 0.0);
        r.exit_data_delete("u").unwrap();
        assert!(r
            .update_device("u", None, TransferKind::Contiguous)
            .is_err());
    }

    #[test]
    fn maxregcount_default_applies() {
        let mut r = rt();
        r.default_maxregcount = Some(32);
        let mut d = desc();
        d.regs = 80; // above the cap → spills
        let nest = LoopNest::new(&[256, 256]);
        let t = r.launch(&d, &nest, ConstructKind::Kernels, &[]);
        assert!(t.spilled > 0);
        // Explicit clause overrides the default.
        let t2 = r.launch(
            &d,
            &nest,
            ConstructKind::Kernels,
            &[Clause::MaxRegCount(128)],
        );
        assert_eq!(t2.spilled, 0);
    }

    #[test]
    fn wait_queue_is_selective() {
        let mut r = AccRuntime::new(DeviceSpec::k40(), Compiler::Cray);
        let nest = LoopNest::new(&[128, 128]);
        r.launch(&desc(), &nest, ConstructKind::Parallel, &[Clause::Async(0)]);
        r.launch(&desc(), &nest, ConstructKind::Parallel, &[Clause::Async(1)]);
        let t0 = r.wait_queue(0);
        assert!(t0 > 0.0);
        // Queue 1 still pending: the global wait drains it.
        let t1 = r.wait_async();
        assert!(t1 > 0.0);
        assert_eq!(r.wait_async(), 0.0);
    }

    #[test]
    fn data_region_maps_and_unmaps() {
        let mut r = rt();
        let out = r
            .data_region(&[("u", 1 << 20), ("v", 1 << 20)], |rt| {
                assert!(rt.data.present("u").is_ok());
                assert!(rt.data.present("v").is_ok());
                42
            })
            .unwrap();
        assert_eq!(out, 42);
        assert!(r.data.present("u").is_err(), "unmapped at region exit");
        assert!(r.data.present("v").is_err());
    }

    #[test]
    fn data_region_unwinds_on_oom() {
        // 6 GB card: the second variable cannot fit; the first must be
        // unmapped by the failed-region cleanup.
        let mut r = AccRuntime::new(DeviceSpec::m2090(), Compiler::Cray);
        let e = r.data_region(&[("a", 4 << 30), ("b", 4 << 30)], |_| ());
        assert!(e.is_err());
        assert_eq!(r.data().device_bytes_in_use(), 0, "no leak after OOM");
    }

    #[test]
    fn host_time_accumulates() {
        let mut r = rt();
        r.advance_host(1.5);
        assert_eq!(r.elapsed(), 1.5);
    }

    /// Doubled waits are typed errors in strict form, spec no-ops in the
    /// permissive form.
    #[test]
    fn double_wait_is_typed() {
        let mut r = AccRuntime::new(DeviceSpec::k40(), Compiler::Cray);
        let nest = LoopNest::new(&[64, 64]);
        r.launch(&desc(), &nest, ConstructKind::Parallel, &[Clause::Async(2)]);
        assert!(r.try_wait_async().is_ok());
        assert_eq!(r.try_wait_async(), Err(RuntimeError::NothingPending));
        assert_eq!(r.wait_async(), 0.0, "permissive form stays a no-op");
        assert_eq!(r.try_wait_queue(7), Err(RuntimeError::QueueEmpty(7)));
        assert_eq!(r.wait_queue(7), 0.0);
    }

    #[test]
    fn launch_with_access_checks_presence_and_marks_dirty() {
        use crate::access::AccessSet;
        let mut r = rt();
        let nest = LoopNest::new(&[128, 128]);
        let acc = AccessSet::stencil(nest.points(), "u", 1 << 20, 0, 4, 128);
        // Not mapped yet: the implied present check fails.
        let err = r
            .launch_with_access(&desc(), &nest, ConstructKind::Kernels, &[], &acc)
            .unwrap_err();
        assert!(matches!(err, RuntimeError::Data(DataError::NotPresent(_))));
        r.enter_data_copyin("u", 8 << 20).unwrap();
        r.launch_with_access(&desc(), &nest, ConstructKind::Kernels, &[], &acc)
            .unwrap();
        // The write set left the device copy dirty: a host read must fail
        // until update_host.
        assert!(matches!(
            r.data().host_read("u"),
            Err(DataError::StaleHostRead(_))
        ));
        r.update_host("u", None, TransferKind::Contiguous).unwrap();
        assert!(r.data().host_read("u").is_ok());
    }

    /// Async kernels are recorded at their wait with the drain schedule's
    /// true timestamps; sync kernels at launch. Totals are unchanged by
    /// the deferral.
    #[test]
    fn deferred_async_recording_has_true_starts() {
        let mut r = AccRuntime::new(DeviceSpec::k40(), Compiler::Cray);
        let nest = LoopNest::new(&[64, 64]);
        for q in 0..3 {
            r.launch(&desc(), &nest, ConstructKind::Parallel, &[Clause::Async(q)]);
        }
        assert!(
            r.profiler().is_empty(),
            "async events defer until the wait fixes their start"
        );
        let base = r.elapsed();
        let t = r.wait_async();
        let events = r.profiler().events();
        assert_eq!(events.len(), 3);
        for e in &events {
            assert!(e.start_s >= base, "starts inside the drain window");
            assert!(e.start_s + e.duration_s <= base + t + 1e-12);
        }
    }

    #[test]
    fn obs_session_records_spans_metrics_registry() {
        let mut r = AccRuntime::new(DeviceSpec::k40(), Compiler::Cray);
        let obs = Arc::new(ObsSession::new());
        r.attach_obs(obs.clone());
        let nest = LoopNest::new(&[256, 256]);
        r.enter_data_copyin("u", 1 << 20).unwrap();
        r.launch(&desc(), &nest, ConstructKind::Kernels, &[]);
        r.launch(&desc(), &nest, ConstructKind::Parallel, &[Clause::Async(1)]);
        r.wait_async();
        r.update_host("u", Some(1 << 10), TransferKind::Contiguous)
            .unwrap();
        r.exit_data_delete("u").unwrap();
        assert_eq!(obs.registry.counter("kernels_launched"), 2);
        assert_eq!(obs.registry.counter("bytes_h2d"), 1 << 20);
        assert_eq!(obs.registry.counter("bytes_d2h"), 1 << 10);
        assert_eq!(obs.metrics().get("test_kernel").unwrap().invocations, 2);
        let tracks = obs.tracer.tracks();
        assert!(tracks.contains(&acc_obs::Track::Host));
        assert!(tracks.contains(&acc_obs::Track::DeviceStream(0)));
        assert!(tracks.contains(&acc_obs::Track::DeviceStream(1)));
        // Kernel spans mirror the profiler ledger exactly.
        let kernel_spans: Vec<_> = obs
            .tracer
            .spans()
            .into_iter()
            .filter(|s| s.cat == acc_obs::SpanCat::Kernel)
            .collect();
        assert_eq!(kernel_spans.len(), 2);
        let total_span: f64 = kernel_spans.iter().map(|s| s.dur_s).sum();
        assert!((total_span - r.profiler().compute_time()).abs() < 1e-15);
    }

    /// Attaching observability must not change modeled timings.
    #[test]
    fn obs_does_not_perturb_clock() {
        let run = |observed: bool| {
            let mut r = AccRuntime::new(DeviceSpec::k40(), Compiler::Cray);
            if observed {
                r.attach_obs(Arc::new(ObsSession::new()));
            }
            let nest = LoopNest::new(&[512, 512]);
            r.enter_data_copyin("u", 8 << 20).unwrap();
            r.launch(&desc(), &nest, ConstructKind::Kernels, &[]);
            for q in 0..4 {
                r.launch(&desc(), &nest, ConstructKind::Parallel, &[Clause::Async(q)]);
            }
            r.wait_async();
            r.update_host("u", None, TransferKind::Contiguous).unwrap();
            r.elapsed()
        };
        assert_eq!(run(false), run(true));
    }

    /// A body that deletes a region variable itself surfaces the typed
    /// double-delete instead of panicking, and the region still unmaps the
    /// rest.
    #[test]
    fn data_region_reports_body_deletes() {
        let mut r = rt();
        let out = r.data_region(&[("a", 1 << 20), ("b", 1 << 20)], |rt| {
            rt.exit_data_delete("b").unwrap();
        });
        assert!(matches!(out, Err(DataError::AlreadyDeleted(_))));
        assert_eq!(r.data().device_bytes_in_use(), 0, "region still cleaned");
    }
}
