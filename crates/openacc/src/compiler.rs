//! Compiler mapping heuristics: `PgiLike` and `CrayLike`.
//!
//! Section 5.2 of the paper is a study of how two compilers lower the same
//! directives differently:
//!
//! * **PGI** — "it was more efficient to use the kernels directive to allow
//!   the compiler to handle the existing worksharing"; `independent`
//!   triggers gridification, 2D gridification needs perfectly nested loops;
//!   PGI 14.3 (CUDA 5.0 back-end) and 14.6 (CUDA 5.5) generate different
//!   code for branchy kernels (Figures 6/7); PGI ignores multi-stream
//!   `async` ("PGI compilers gave a worst performance ... when async was
//!   used to overlap GPU kernels").
//! * **CRAY** — "the more information you pass to the compiler, the better
//!   performance you get"; explicit `parallel gang/worker/vector` with the
//!   innermost loop vectorized wins; plain `kernels` is conservative
//!   (Figures 8/9); `async` is honored and the compiler even defaults to
//!   `auto_async_kernels`.

use crate::construct::{Clause, ConstructKind, LoopNest, LoopSched};
use serde::{Deserialize, Serialize};

/// PGI compiler release (each bundles a different CUDA back-end).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PgiVersion {
    /// PGI 13.7 — earliest release used in the paper.
    V13_7,
    /// PGI 14.3 — CUDA 5.0 back-end.
    V14_3,
    /// PGI 14.6 — CUDA 5.5 back-end.
    V14_6,
}

/// A directive-to-device mapping back-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Compiler {
    /// PGI-style heuristics.
    Pgi(PgiVersion),
    /// CRAY-style heuristics.
    Cray,
}

/// The lowering decision for one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelPlan {
    /// Innermost loop mapped to vector lanes.
    pub vectorized: bool,
    /// Vector-lane accesses walk contiguous memory.
    pub coalesced: bool,
    /// Multiplicative codegen-quality penalty (≥ 1.0; 1.0 = best code).
    pub quality: f64,
    /// Register cap forwarded from `maxregcount`.
    pub maxregcount: Option<u32>,
    /// Async queue the launch lands on (None = the sync queue; set only
    /// when the compiler actually honors the clause).
    pub async_stream: Option<u32>,
}

impl Compiler {
    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            Compiler::Pgi(PgiVersion::V13_7) => "PGI 13.7",
            Compiler::Pgi(PgiVersion::V14_3) => "PGI 14.3 (CUDA 5.0)",
            Compiler::Pgi(PgiVersion::V14_6) => "PGI 14.6 (CUDA 5.5)",
            Compiler::Cray => "CRAY 8.2.6",
        }
    }

    /// Lower a loop nest under a compute construct into a [`KernelPlan`].
    ///
    /// `body_divergent` marks bodies with interior branches (the isotropic
    /// PML `if`s) that break perfect nesting.
    pub fn map(
        &self,
        nest: &LoopNest,
        kind: ConstructKind,
        clauses: &[Clause],
        body_divergent: bool,
    ) -> KernelPlan {
        let independent = clauses.iter().any(|c| matches!(c, Clause::Independent));
        let collapse = clauses
            .iter()
            .find_map(|c| match c {
                Clause::Collapse(n) => Some(*n),
                _ => None,
            })
            .unwrap_or(1);
        let maxregcount = clauses.iter().find_map(|c| match c {
            Clause::MaxRegCount(n) => Some(*n),
            _ => None,
        });
        let async_req = clauses.iter().find_map(|c| match c {
            Clause::Async(q) => Some(*q),
            _ => None,
        });
        // A dependence the programmer did not refute forces the innermost
        // loop sequential on both compilers.
        let inner_seq_forced = nest.innermost_dependence && !independent;
        let explicit_inner_vector = matches!(nest.sched.last(), Some(LoopSched::Vector(_)));
        let explicit_inner_seq = matches!(nest.sched.last(), Some(LoopSched::Seq));

        match self {
            Compiler::Pgi(version) => {
                let mut quality = match kind {
                    // PGI's sweet spot: kernels + compiler-owned worksharing.
                    ConstructKind::Kernels => 1.0,
                    // Hand-scheduled parallel is slightly worse under PGI.
                    ConstructKind::Parallel => 1.12,
                };
                quality *= match version {
                    PgiVersion::V13_7 => 1.10,
                    PgiVersion::V14_3 | PgiVersion::V14_6 => 1.0,
                };
                // Figure 6/7 mechanism: 14.3's CUDA 5.0 back-end fails to
                // gridify imperfectly-nested (branchy) bodies — it falls
                // back to a 1-D mapping with far fewer threads in flight.
                if body_divergent && *version == PgiVersion::V14_3 {
                    quality *= 1.45;
                }
                // "Our 3D loop nest case led to the collapsing of the 2
                // innermost loops to generate a 2D grid of hardware
                // accelerator threads": deep nests need `independent` (which
                // triggers gridification) or an explicit `collapse` to get a
                // multi-dimensional grid; otherwise only the outer loop
                // feeds the grid.
                if nest.depth() >= 3 && !independent && collapse < 2 {
                    quality *= 1.15;
                }
                let vectorized = !(inner_seq_forced || explicit_inner_seq);
                KernelPlan {
                    vectorized,
                    coalesced: vectorized && nest.innermost_contiguous,
                    quality,
                    maxregcount,
                    // "PGI compilers gave a worst performance on both Fermi
                    // and Kepler when async was used": the clause is
                    // accepted but everything lands on one queue, with a
                    // little bookkeeping overhead.
                    async_stream: None,
                }
            }
            Compiler::Cray => {
                // "The execution time obtained while using PGI was lower
                // than that obtained with CRAY ... Our GPU CRAY
                // implementation can still be optimized though" — a flat
                // codegen-maturity penalty, larger for the conservative
                // kernels-construct mapping (Figures 8/9).
                let mut quality = match kind {
                    ConstructKind::Kernels => 1.55,
                    ConstructKind::Parallel => 1.18,
                };
                let mut vectorized = !(inner_seq_forced || explicit_inner_seq);
                let mut coalesced = vectorized && nest.innermost_contiguous;
                if kind == ConstructKind::Parallel && !explicit_inner_vector && vectorized {
                    // No explicit vector clause: the compiler "analyzes the
                    // j and k loops to determine which loop looks most
                    // profitable" — and does not always pick the contiguous
                    // one. Model the miss as a strided vector loop.
                    if nest.depth() >= 3 {
                        coalesced = false;
                        quality *= 1.08;
                    } else {
                        quality *= 1.05;
                    }
                }
                if matches!(nest.sched.last(), Some(LoopSched::Vector(len)) if *len > 0 && !len.is_power_of_two())
                {
                    // Odd vector lengths waste lanes at warp granularity.
                    quality *= 1.1;
                }
                if explicit_inner_seq {
                    vectorized = false;
                    coalesced = false;
                }
                KernelPlan {
                    vectorized,
                    coalesced,
                    quality,
                    maxregcount,
                    async_stream: async_req,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nest3() -> LoopNest {
        LoopNest::new(&[200, 200, 200])
    }

    /// The paper's headline compiler asymmetry: PGI prefers `kernels`,
    /// CRAY prefers explicit `parallel`.
    #[test]
    fn construct_preference_flips_between_compilers() {
        let nest =
            nest3().with_sched(&[LoopSched::Gang, LoopSched::Worker, LoopSched::Vector(128)]);
        let pgi = Compiler::Pgi(PgiVersion::V14_6);
        let pk = pgi.map(&nest, ConstructKind::Kernels, &[Clause::Independent], false);
        let pp = pgi.map(&nest, ConstructKind::Parallel, &[], false);
        assert!(pk.quality < pp.quality, "PGI: kernels must beat parallel");
        let cray = Compiler::Cray;
        let ck = cray.map(&nest, ConstructKind::Kernels, &[], false);
        let cp = cray.map(&nest, ConstructKind::Parallel, &[], false);
        assert!(cp.quality < ck.quality, "CRAY: parallel must beat kernels");
    }

    /// Figure 6/7: branchy bodies only hurt PGI 14.3 (CUDA 5.0 back-end).
    #[test]
    fn pgi_143_punishes_divergent_bodies() {
        let nest = nest3();
        let clauses = [Clause::Independent];
        let a = Compiler::Pgi(PgiVersion::V14_3).map(&nest, ConstructKind::Kernels, &clauses, true);
        let b = Compiler::Pgi(PgiVersion::V14_6).map(&nest, ConstructKind::Kernels, &clauses, true);
        assert!(a.quality > 1.3);
        assert!((b.quality - 1.0).abs() < 1e-9);
    }

    /// Explicit innermost vector clause fixes CRAY's loop-pick miss on 3D
    /// nests ("vectorizing the innermost loop explicitly improved mapping").
    #[test]
    fn cray_needs_explicit_vector_on_3d() {
        let auto = Compiler::Cray.map(&nest3(), ConstructKind::Parallel, &[], false);
        let explicit = Compiler::Cray.map(
            &nest3().with_sched(&[LoopSched::Gang, LoopSched::Auto, LoopSched::Vector(128)]),
            ConstructKind::Parallel,
            &[],
            false,
        );
        assert!(!auto.coalesced);
        assert!(explicit.coalesced);
        assert!(explicit.quality < auto.quality);
    }

    /// Loop-carried dependence forces a sequential inner loop unless the
    /// programmer asserts `independent` (the Figure 13 situation).
    #[test]
    fn dependence_blocks_vectorization() {
        let nest = LoopNest::new(&[1000, 1000]).with_dependence();
        for c in [Compiler::Pgi(PgiVersion::V14_6), Compiler::Cray] {
            let p = c.map(&nest, ConstructKind::Kernels, &[], false);
            assert!(!p.vectorized && !p.coalesced, "{c:?}");
            let forced = c.map(&nest, ConstructKind::Kernels, &[Clause::Independent], false);
            assert!(forced.vectorized, "{c:?} with independent");
        }
    }

    /// Only CRAY honors async queues.
    #[test]
    fn async_honored_by_cray_only() {
        let nest = nest3();
        let cray = Compiler::Cray.map(&nest, ConstructKind::Parallel, &[Clause::Async(3)], false);
        assert_eq!(cray.async_stream, Some(3));
        let pgi = Compiler::Pgi(PgiVersion::V14_6).map(
            &nest,
            ConstructKind::Kernels,
            &[Clause::Async(3)],
            false,
        );
        assert_eq!(pgi.async_stream, None);
    }

    #[test]
    fn maxregcount_passes_through() {
        let p = Compiler::Pgi(PgiVersion::V14_6).map(
            &nest3(),
            ConstructKind::Kernels,
            &[Clause::MaxRegCount(64)],
            false,
        );
        assert_eq!(p.maxregcount, Some(64));
    }

    /// Deep nests on PGI need `independent` or `collapse` to gridify.
    #[test]
    fn pgi_deep_nests_need_collapse_or_independent() {
        let pgi = Compiler::Pgi(PgiVersion::V14_6);
        let bare = pgi.map(&nest3(), ConstructKind::Kernels, &[], false);
        let collapsed = pgi.map(
            &nest3(),
            ConstructKind::Kernels,
            &[Clause::Collapse(2)],
            false,
        );
        let indep = pgi.map(
            &nest3(),
            ConstructKind::Kernels,
            &[Clause::Independent],
            false,
        );
        assert!(bare.quality > collapsed.quality);
        assert!((collapsed.quality - indep.quality).abs() < 1e-12);
        // 2D nests gridify fine without help.
        let flat = pgi.map(
            &LoopNest::new(&[512, 512]),
            ConstructKind::Kernels,
            &[],
            false,
        );
        assert!((flat.quality - 1.0).abs() < 1e-12);
    }

    #[test]
    fn old_pgi_is_uniformly_slower() {
        let old =
            Compiler::Pgi(PgiVersion::V13_7).map(&nest3(), ConstructKind::Kernels, &[], false);
        let new =
            Compiler::Pgi(PgiVersion::V14_6).map(&nest3(), ConstructKind::Kernels, &[], false);
        assert!(old.quality > new.quality);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> = [
            Compiler::Pgi(PgiVersion::V13_7),
            Compiler::Pgi(PgiVersion::V14_3),
            Compiler::Pgi(PgiVersion::V14_6),
            Compiler::Cray,
        ]
        .iter()
        .map(|c| c.label())
        .collect();
        assert_eq!(labels.len(), 4);
    }
}
