//! Declared per-kernel access patterns.
//!
//! OpenACC directives are *claims*: `independent` claims no iteration of
//! the parallelized loop touches an element another iteration writes,
//! `async` claims no other queue is working on the same data, and the data
//! clauses claim host/device coherence. The compiler trusts all of them.
//! To make those claims checkable, every kernel declares its memory
//! footprint as a set of affine references `array[offset + stride·i]` over
//! the linearized iteration index `i ∈ [0, trip)`. The `acc-verify` crate
//! runs dependence, data-environment, and async-hazard analyses over these
//! declarations; the Tier-2 sanitizer in [`crate::exec`] replays them on
//! small grids to confirm or refute the static verdicts.

use serde::{Deserialize, Serialize};

/// One affine reference: the element `offset + stride·i` of a named array,
/// touched once per iteration `i` of the declared loop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AffineAccess {
    /// Name of the accessed array (a data-environment mapping name).
    pub array: String,
    /// Constant element offset (sub-field base within a mapped block).
    pub offset: i64,
    /// Elements advanced per iteration (0 = every iteration hits the same
    /// element, 1 = unit stride, `row` = strided sweep).
    pub stride: i64,
}

impl AffineAccess {
    /// A new reference.
    pub fn new(array: impl Into<String>, offset: i64, stride: i64) -> Self {
        Self {
            array: array.into(),
            offset,
            stride,
        }
    }

    /// Element touched at iteration `i`.
    pub fn at(&self, i: u64) -> i64 {
        self.offset + self.stride * i as i64
    }

    /// Inclusive element range touched over `trip` iterations, or `None`
    /// for an empty loop.
    pub fn extent(&self, trip: u64) -> Option<(i64, i64)> {
        if trip == 0 {
            return None;
        }
        let last = self.at(trip - 1);
        Some((self.offset.min(last), self.offset.max(last)))
    }
}

/// The combining operator of a declared reduction.
///
/// Only the operators the propagator kernels actually use are modeled.
/// `Sum` and `Prod` are floating-point non-associative under rounding, so
/// vectorizing them reassociates the combine tree; `Min`/`Max` are exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReduceOp {
    /// `reduction(+:x)` — FP addition, reassociation changes rounding.
    Sum,
    /// `reduction(*:x)` — FP multiplication, reassociation changes rounding.
    Prod,
    /// `reduction(min:x)` — exact under any association.
    Min,
    /// `reduction(max:x)` — exact under any association.
    Max,
}

impl ReduceOp {
    /// Does reassociating this operator change the rounded result?
    pub fn reassociation_sensitive(self) -> bool {
        matches!(self, ReduceOp::Sum | ReduceOp::Prod)
    }

    /// The OpenACC clause spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            ReduceOp::Sum => "+",
            ReduceOp::Prod => "*",
            ReduceOp::Min => "min",
            ReduceOp::Max => "max",
        }
    }
}

/// A declared `reduction(op:array[offset])` cell: every iteration combines
/// into the same element through `op`. Unlike a plain stride-0 write this
/// is *not* a race — the runtime gives each lane/gang a private partial
/// and combines them — but vectorizing it reassociates the combine order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReductionAccess {
    /// Name of the accumulated array (a data-environment mapping name).
    pub array: String,
    /// Element the reduction lands in.
    pub offset: i64,
    /// Combining operator.
    pub op: ReduceOp,
}

/// The declared read/write footprint of one kernel launch over a
/// linearized iteration space of `trip` iterations.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessSet {
    /// Iterations of the (parallelized) loop the references range over.
    pub trip: u64,
    /// Elements read each iteration.
    pub reads: Vec<AffineAccess>,
    /// Elements written each iteration.
    pub writes: Vec<AffineAccess>,
    /// Declared reduction cells combined into each iteration.
    #[serde(default)]
    pub reductions: Vec<ReductionAccess>,
}

impl AccessSet {
    /// An empty footprint over `trip` iterations.
    pub fn new(trip: u64) -> Self {
        Self {
            trip,
            reads: Vec::new(),
            writes: Vec::new(),
            reductions: Vec::new(),
        }
    }

    /// Builder: add a read reference.
    pub fn read(mut self, array: impl Into<String>, offset: i64, stride: i64) -> Self {
        self.reads.push(AffineAccess::new(array, offset, stride));
        self
    }

    /// Builder: add a write reference.
    pub fn write(mut self, array: impl Into<String>, offset: i64, stride: i64) -> Self {
        self.writes.push(AffineAccess::new(array, offset, stride));
        self
    }

    /// Builder: declare a reduction cell.
    pub fn reduce(mut self, array: impl Into<String>, offset: i64, op: ReduceOp) -> Self {
        self.reductions.push(ReductionAccess {
            array: array.into(),
            offset,
            op,
        });
        self
    }

    /// A correct out-of-place stencil: writes `out[base_out + i]`, reads
    /// `inp[base_in + i ± k]` and `inp[base_in + i ± k·row]` for
    /// `k ≤ halo` — the FD star of the propagator kernels. Writes and
    /// reads target different sub-fields, so the loop is truly
    /// `independent`.
    pub fn stencil(
        trip: u64,
        array: impl Into<String>,
        base_out: i64,
        base_in: i64,
        halo: i64,
        row: i64,
    ) -> Self {
        let array = array.into();
        let mut s = Self::new(trip).write(array.clone(), base_out, 1);
        s.reads.push(AffineAccess::new(array.clone(), base_in, 1));
        for k in 1..=halo {
            for d in [k, -k, k * row, -(k * row)] {
                s.reads
                    .push(AffineAccess::new(array.clone(), base_in + d, 1));
            }
        }
        s
    }

    /// An *in-place* stencil: same as [`AccessSet::stencil`] but reading
    /// and writing the same sub-field — the classic false-`independent`
    /// mutation (iteration `i` reads elements iteration `i ± k` writes).
    pub fn stencil_inplace(
        trip: u64,
        array: impl Into<String>,
        base: i64,
        halo: i64,
        row: i64,
    ) -> Self {
        Self::stencil(trip, array, base, base, halo, row)
    }

    /// Every array name referenced, deduplicated. Reduction cells count:
    /// the combine both reads and writes its landing element.
    pub fn arrays(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self
            .reads
            .iter()
            .chain(self.writes.iter())
            .map(|a| a.array.as_str())
            .chain(self.reductions.iter().map(|r| r.array.as_str()))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Arrays written, deduplicated. A reduction writes its landing cell.
    pub fn written_arrays(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self
            .writes
            .iter()
            .map(|a| a.array.as_str())
            .chain(self.reductions.iter().map(|r| r.array.as_str()))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Rename every reference to `from` so it targets `to` — used when one
    /// launch schedule runs against differently named data environments
    /// (the forward/backward phases of RTM map the same kernels onto
    /// different device blocks).
    pub fn rename_array(mut self, from: &str, to: &str) -> Self {
        for a in self.reads.iter_mut().chain(self.writes.iter_mut()) {
            if a.array == from {
                a.array = to.to_string();
            }
        }
        for r in self.reductions.iter_mut() {
            if r.array == from {
                r.array = to.to_string();
            }
        }
        self
    }

    /// Inclusive element range this set touches on `array` (reads, writes,
    /// and reduction cells combined), or `None` if never referenced.
    pub fn extent_on(&self, array: &str) -> Option<(i64, i64)> {
        let base = self.range_over(array, self.reads.iter().chain(self.writes.iter()));
        merge_ranges(base, self.reduction_range(array))
    }

    /// Inclusive element range this set *writes* on `array` (reduction
    /// landing cells included).
    pub fn write_extent_on(&self, array: &str) -> Option<(i64, i64)> {
        let base = self.range_over(array, self.writes.iter());
        merge_ranges(base, self.reduction_range(array))
    }

    fn range_over<'a>(
        &self,
        array: &str,
        refs: impl Iterator<Item = &'a AffineAccess>,
    ) -> Option<(i64, i64)> {
        refs.filter(|a| a.array == array)
            .filter_map(|a| a.extent(self.trip))
            .reduce(|(lo1, hi1), (lo2, hi2)| (lo1.min(lo2), hi1.max(hi2)))
    }

    fn reduction_range(&self, array: &str) -> Option<(i64, i64)> {
        if self.trip == 0 {
            return None;
        }
        self.reductions
            .iter()
            .filter(|r| r.array == array)
            .map(|r| (r.offset, r.offset))
            .reduce(|(lo1, hi1), (lo2, hi2)| (lo1.min(lo2), hi1.max(hi2)))
    }
}

fn merge_ranges(a: Option<(i64, i64)>, b: Option<(i64, i64)>) -> Option<(i64, i64)> {
    match (a, b) {
        (Some((lo1, hi1)), Some((lo2, hi2))) => Some((lo1.min(lo2), hi1.max(hi2))),
        (Some(r), None) | (None, Some(r)) => Some(r),
        (None, None) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_at_and_extent() {
        let a = AffineAccess::new("u", 10, 2);
        assert_eq!(a.at(0), 10);
        assert_eq!(a.at(5), 20);
        assert_eq!(a.extent(6), Some((10, 20)));
        assert_eq!(a.extent(0), None);
        let neg = AffineAccess::new("u", 0, -3);
        assert_eq!(neg.extent(4), Some((-9, 0)));
    }

    #[test]
    fn stencil_reads_cover_star() {
        let s = AccessSet::stencil(100, "fields", 1000, 0, 4, 50);
        assert_eq!(s.writes.len(), 1);
        // Centre + 4 taps per direction per axis.
        assert_eq!(s.reads.len(), 1 + 4 * 4);
        assert_eq!(s.arrays(), vec!["fields"]);
        assert_eq!(s.write_extent_on("fields"), Some((1000, 1099)));
        // Reads stay below the write base: out-of-place.
        let (lo, hi) = s.extent_on("fields").unwrap();
        assert_eq!(lo, -4 * 50);
        assert_eq!(hi, 1099);
    }

    #[test]
    fn inplace_overlaps_itself() {
        let s = AccessSet::stencil_inplace(100, "u", 0, 2, 10);
        let w = s.write_extent_on("u").unwrap();
        let r = s
            .reads
            .iter()
            .filter_map(|a| a.extent(s.trip))
            .reduce(|(l1, h1), (l2, h2)| (l1.min(l2), h1.max(h2)))
            .unwrap();
        assert!(w.0 <= r.1 && r.0 <= w.1, "in-place ranges must overlap");
    }

    #[test]
    fn rename_targets_only_named_array() {
        let s = AccessSet::new(10)
            .read("a", 0, 1)
            .read("b", 0, 1)
            .write("a", 100, 1)
            .rename_array("a", "forward");
        assert_eq!(s.arrays(), vec!["b", "forward"]);
        assert_eq!(s.written_arrays(), vec!["forward"]);
    }

    #[test]
    fn reductions_count_as_writes_in_footprints() {
        let s = AccessSet::new(64)
            .read("u", 0, 1)
            .reduce("qc", 5, ReduceOp::Sum)
            .rename_array("qc", "fields");
        assert_eq!(s.arrays(), vec!["fields", "u"]);
        assert_eq!(s.written_arrays(), vec!["fields"]);
        assert_eq!(s.extent_on("fields"), Some((5, 5)));
        assert_eq!(s.write_extent_on("fields"), Some((5, 5)));
        assert!(ReduceOp::Sum.reassociation_sensitive());
        assert!(!ReduceOp::Max.reassociation_sensitive());
        assert_eq!(ReduceOp::Sum.symbol(), "+");
    }
}
