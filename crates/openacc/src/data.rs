//! The device data environment.
//!
//! Implements the OpenACC 2.0 structured/unstructured data directives the
//! paper's Section 5.4 relies on: `ENTER DATA COPYIN` / `EXIT DATA DELETE`
//! for persistence across kernel launches, `UPDATE HOST` / `UPDATE DEVICE`
//! for explicit refreshes, `CREATE` for device-only scratch (the Figure 13
//! transposition temporaries), and the `PRESENT` check every kernel uses.

use accel_sim::memory::DeviceBuffer;
use accel_sim::pcie::{transfer_time, HostAlloc, TransferKind};
use accel_sim::{DeviceMemory, DeviceSpec, EventKind, OutOfMemory, Profiler, SimTime};
use std::collections::{HashMap, HashSet};

/// Errors from data-environment operations.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// Allocation exceeded device memory.
    Oom(OutOfMemory),
    /// `present` check failed — the variable was never mapped (the runtime
    /// error OpenACC raises when a kernel touches unmapped data).
    NotPresent(String),
    /// Double mapping of the same name.
    AlreadyPresent(String),
    /// `exit data delete` on a variable that was *already deleted* — the
    /// double-free of the directive world, distinguished from
    /// [`DataError::NotPresent`] (never mapped at all) so callers can tell
    /// a stale directive sequence from a typo'd name.
    AlreadyDeleted(String),
    /// The host read a variable whose last write happened on the device
    /// with no `update host` in between — the wrong-answer hazard the
    /// paper's Section 5.4 consistency updates exist to prevent.
    StaleHostRead(String),
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::Oom(e) => write!(f, "{e}"),
            DataError::NotPresent(n) => write!(f, "variable '{n}' not present on device"),
            DataError::AlreadyPresent(n) => write!(f, "variable '{n}' already present on device"),
            DataError::AlreadyDeleted(n) => {
                write!(f, "variable '{n}' already deleted from the device")
            }
            DataError::StaleHostRead(n) => write!(
                f,
                "host read of '{n}' whose last write was on the device (missing `update host`)"
            ),
        }
    }
}

impl std::error::Error for DataError {}

struct Mapping {
    #[allow(dead_code)] // held for its Drop (frees device bytes)
    buffer: DeviceBuffer,
    bytes: u64,
    /// Device copy holds writes the host has not seen (`update host` clears).
    device_dirty: bool,
    /// Host copy holds writes the device has not seen (`update device` clears).
    host_dirty: bool,
}

/// The data environment of one device context.
///
/// Besides capacity accounting, the environment keeps a *dirty bit* per
/// mapped array in each direction: kernels report their writes through
/// [`DataEnv::mark_device_write`], hosts report theirs through
/// [`DataEnv::mark_host_write`], and [`DataEnv::host_read`] /
/// [`DataEnv::device_read_check`] turn a read of stale data into a typed
/// error instead of a silent wrong answer.
pub struct DataEnv {
    dev: DeviceSpec,
    mem: DeviceMemory,
    host_alloc: HostAlloc,
    mapped: HashMap<String, Mapping>,
    /// Names that were mapped once and have since been deleted
    /// (distinguishes double-delete from never-mapped).
    freed: HashSet<String>,
    transfer_s: SimTime,
}

impl DataEnv {
    /// New environment on a device, with the given host allocation policy
    /// (the PGI `pin` option of the paper's best compile line).
    pub fn new(dev: DeviceSpec, host_alloc: HostAlloc) -> Self {
        let mem = DeviceMemory::new(dev.global_mem_bytes);
        Self {
            dev,
            mem,
            host_alloc,
            mapped: HashMap::new(),
            freed: HashSet::new(),
            transfer_s: 0.0,
        }
    }

    /// `!$acc enter data copyin(name)` — allocate and upload. `now` is the
    /// simulated timestamp the transfer starts at (the runtime clock),
    /// recorded with the event so traces carry true start times.
    pub fn enter_data_copyin(
        &mut self,
        name: &str,
        bytes: u64,
        now: SimTime,
        prof: &Profiler,
    ) -> Result<SimTime, DataError> {
        let t = self.map(name, bytes)?;
        let dt = transfer_time(&self.dev, bytes, self.host_alloc, TransferKind::Contiguous);
        prof.record_bytes(
            EventKind::MemcpyH2D,
            format!("copyin:{name}"),
            now,
            dt,
            0,
            bytes,
        );
        self.transfer_s += dt;
        Ok(t + dt)
    }

    /// `!$acc enter data create(name)` — allocate without upload (device
    /// scratch, e.g. transposition temporaries).
    pub fn enter_data_create(&mut self, name: &str, bytes: u64) -> Result<SimTime, DataError> {
        self.map(name, bytes)
    }

    fn map(&mut self, name: &str, bytes: u64) -> Result<SimTime, DataError> {
        if self.mapped.contains_key(name) {
            return Err(DataError::AlreadyPresent(name.to_string()));
        }
        let buffer = self.mem.alloc(bytes).map_err(DataError::Oom)?;
        self.freed.remove(name);
        self.mapped.insert(
            name.to_string(),
            Mapping {
                buffer,
                bytes,
                device_dirty: false,
                host_dirty: false,
            },
        );
        Ok(0.0)
    }

    /// `!$acc exit data delete(name)` — free device memory.
    ///
    /// Chosen semantics (documented because the OpenACC spec makes absent
    /// deletes a silent no-op, which hides real directive-sequence bugs):
    /// deleting a variable that is not mapped is an *error*, typed as
    /// [`DataError::AlreadyDeleted`] when the name was mapped earlier in
    /// this environment's lifetime (a double delete) and
    /// [`DataError::NotPresent`] when it never was (a typo'd name).
    pub fn exit_data_delete(&mut self, name: &str) -> Result<(), DataError> {
        match self.mapped.remove(name) {
            Some(_) => {
                self.freed.insert(name.to_string());
                Ok(())
            }
            None if self.freed.contains(name) => Err(DataError::AlreadyDeleted(name.to_string())),
            None => Err(DataError::NotPresent(name.to_string())),
        }
    }

    /// `!$acc update host(name[range])` — download `bytes` (None = all),
    /// starting at simulated time `now`.
    pub fn update_host(
        &mut self,
        name: &str,
        bytes: Option<u64>,
        kind: TransferKind,
        now: SimTime,
        prof: &Profiler,
    ) -> Result<SimTime, DataError> {
        let m = self
            .mapped
            .get_mut(name)
            .ok_or_else(|| DataError::NotPresent(name.to_string()))?;
        let n = bytes.unwrap_or(m.bytes).min(m.bytes);
        m.device_dirty = false;
        let dt = transfer_time(&self.dev, n, self.host_alloc, kind);
        prof.record_bytes(
            EventKind::MemcpyD2H,
            format!("update_host:{name}"),
            now,
            dt,
            0,
            n,
        );
        self.transfer_s += dt;
        Ok(dt)
    }

    /// `!$acc update device(name[range])` — upload `bytes` (None = all),
    /// starting at simulated time `now`.
    pub fn update_device(
        &mut self,
        name: &str,
        bytes: Option<u64>,
        kind: TransferKind,
        now: SimTime,
        prof: &Profiler,
    ) -> Result<SimTime, DataError> {
        let m = self
            .mapped
            .get_mut(name)
            .ok_or_else(|| DataError::NotPresent(name.to_string()))?;
        let n = bytes.unwrap_or(m.bytes).min(m.bytes);
        m.host_dirty = false;
        let dt = transfer_time(&self.dev, n, self.host_alloc, kind);
        prof.record_bytes(
            EventKind::MemcpyH2D,
            format!("update_device:{name}"),
            now,
            dt,
            0,
            n,
        );
        self.transfer_s += dt;
        Ok(dt)
    }

    /// The `present(name)` clause: error when not mapped.
    pub fn present(&self, name: &str) -> Result<(), DataError> {
        if self.mapped.contains_key(name) {
            Ok(())
        } else {
            Err(DataError::NotPresent(name.to_string()))
        }
    }

    /// Record a device-side write of `name` (a kernel launch listing it in
    /// its write set). Sets the device dirty bit; a no-op on unmapped names
    /// (the launch-side `present` check reports those).
    pub fn mark_device_write(&mut self, name: &str) {
        if let Some(m) = self.mapped.get_mut(name) {
            m.device_dirty = true;
        }
    }

    /// Record a host-side write of `name` (the driver refreshed its copy
    /// before an `update device`). Sets the host dirty bit.
    pub fn mark_host_write(&mut self, name: &str) {
        if let Some(m) = self.mapped.get_mut(name) {
            m.host_dirty = true;
        }
    }

    /// The stale-host-read detector: a host read of a mapped array whose
    /// last write happened on the device (no `update host` since) returns
    /// [`DataError::StaleHostRead`]. Reads of unmapped or coherent arrays
    /// are fine.
    pub fn host_read(&self, name: &str) -> Result<(), DataError> {
        match self.mapped.get(name) {
            Some(m) if m.device_dirty => Err(DataError::StaleHostRead(name.to_string())),
            _ => Ok(()),
        }
    }

    /// The dual check: true when a device read of `name` would observe a
    /// host copy not yet uploaded (`update device` missing after a host
    /// write).
    pub fn device_copy_stale(&self, name: &str) -> bool {
        self.mapped.get(name).is_some_and(|m| m.host_dirty)
    }

    /// Whether the device copy of `name` carries writes the host has not
    /// downloaded.
    pub fn device_dirty(&self, name: &str) -> bool {
        self.mapped.get(name).is_some_and(|m| m.device_dirty)
    }

    /// Mapped size of `name`, if present (observability: lets callers
    /// compute the actual bytes a ranged `update` will move).
    pub fn mapped_bytes(&self, name: &str) -> Option<u64> {
        self.mapped.get(name).map(|m| m.bytes)
    }

    /// Bytes currently resident (what `nvidia-smi` guided in Section 5.1).
    pub fn device_bytes_in_use(&self) -> u64 {
        self.mem.in_use()
    }

    /// Total simulated PCIe time so far.
    pub fn transfer_time(&self) -> SimTime {
        self.transfer_s
    }

    /// The underlying device spec.
    pub fn device(&self) -> &DeviceSpec {
        &self.dev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> (DataEnv, Profiler) {
        (
            DataEnv::new(DeviceSpec::m2090(), HostAlloc::Pinned),
            Profiler::new(),
        )
    }

    #[test]
    fn copyin_maps_and_prices_transfer() {
        let (mut e, p) = env();
        let t = e.enter_data_copyin("u", 1 << 20, 0.0, &p).unwrap();
        assert!(t > 0.0);
        assert_eq!(e.device_bytes_in_use(), 1 << 20);
        assert!(e.present("u").is_ok());
        assert_eq!(p.len(), 1);
        e.exit_data_delete("u").unwrap();
        assert_eq!(e.device_bytes_in_use(), 0);
        assert!(e.present("u").is_err());
    }

    #[test]
    fn create_is_free_of_transfers() {
        let (mut e, p) = env();
        let t = e.enter_data_create("tmp", 1 << 20).unwrap();
        assert_eq!(t, 0.0);
        assert!(p.is_empty());
        assert_eq!(e.transfer_time(), 0.0);
    }

    #[test]
    fn double_map_rejected() {
        let (mut e, p) = env();
        e.enter_data_copyin("u", 100, 0.0, &p).unwrap();
        let err = e.enter_data_copyin("u", 100, 0.0, &p).unwrap_err();
        assert!(matches!(err, DataError::AlreadyPresent(_)));
    }

    #[test]
    fn oom_surfaces_capacity() {
        let (mut e, p) = env();
        // 6 GB card: a 7 GB request must fail.
        let err = e.enter_data_copyin("big", 7 << 30, 0.0, &p).unwrap_err();
        match err {
            DataError::Oom(o) => assert_eq!(o.capacity, 6 << 30),
            other => panic!("expected OOM, got {other}"),
        }
    }

    #[test]
    fn update_host_partial_and_errors() {
        let (mut e, p) = env();
        e.enter_data_copyin("u", 1 << 24, 0.0, &p).unwrap();
        let full = e
            .update_host("u", None, TransferKind::Contiguous, 0.0, &p)
            .unwrap();
        let part = e
            .update_host("u", Some(1 << 12), TransferKind::Contiguous, 0.0, &p)
            .unwrap();
        assert!(part < full);
        assert!(e
            .update_host("ghost", None, TransferKind::Contiguous, 0.0, &p)
            .is_err());
        // Partial ghost updates pay a strided penalty.
        let strided = e
            .update_host(
                "u",
                Some(1 << 12),
                TransferKind::Strided {
                    chunks: 64,
                    chunk_bytes: 64,
                },
                0.0,
                &p,
            )
            .unwrap();
        assert!(strided > part);
    }

    #[test]
    fn transfer_time_accumulates() {
        let (mut e, p) = env();
        e.enter_data_copyin("a", 1 << 20, 0.0, &p).unwrap();
        let t1 = e.transfer_time();
        e.update_device("a", None, TransferKind::Contiguous, 0.0, &p)
            .unwrap();
        assert!(e.transfer_time() > t1);
    }

    #[test]
    fn double_delete_vs_never_mapped_are_distinct_errors() {
        let (mut e, p) = env();
        e.enter_data_copyin("u", 100, 0.0, &p).unwrap();
        e.exit_data_delete("u").unwrap();
        assert!(matches!(
            e.exit_data_delete("u"),
            Err(DataError::AlreadyDeleted(_))
        ));
        assert!(matches!(
            e.exit_data_delete("ghost"),
            Err(DataError::NotPresent(_))
        ));
        // Remapping clears the tombstone: the next delete succeeds again.
        e.enter_data_copyin("u", 100, 0.0, &p).unwrap();
        assert!(e.exit_data_delete("u").is_ok());
    }

    #[test]
    fn dirty_bits_catch_stale_host_reads() {
        let (mut e, p) = env();
        e.enter_data_copyin("u", 1 << 20, 0.0, &p).unwrap();
        // Fresh copyin is coherent.
        assert!(e.host_read("u").is_ok());
        e.mark_device_write("u");
        assert!(e.device_dirty("u"));
        assert!(matches!(e.host_read("u"), Err(DataError::StaleHostRead(_))));
        e.update_host("u", None, TransferKind::Contiguous, 0.0, &p)
            .unwrap();
        assert!(e.host_read("u").is_ok());
        // Unmapped names never trip the detector (host-only data).
        assert!(e.host_read("host_only").is_ok());
    }

    #[test]
    fn host_dirty_cleared_by_update_device() {
        let (mut e, p) = env();
        e.enter_data_copyin("u", 1 << 20, 0.0, &p).unwrap();
        assert!(!e.device_copy_stale("u"));
        e.mark_host_write("u");
        assert!(e.device_copy_stale("u"));
        e.update_device("u", None, TransferKind::Contiguous, 0.0, &p)
            .unwrap();
        assert!(!e.device_copy_stale("u"));
    }

    #[test]
    fn freeing_restores_capacity_for_phase_swap() {
        // The paper's offload-forward/upload-backward dance: a second phase
        // that would not co-fit must fit after exit data.
        let (mut e, p) = env();
        e.enter_data_copyin("forward", 4 << 30, 0.0, &p).unwrap();
        assert!(e.enter_data_copyin("backward", 4 << 30, 0.0, &p).is_err());
        e.exit_data_delete("forward").unwrap();
        assert!(e.enter_data_copyin("backward", 4 << 30, 0.0, &p).is_ok());
    }
}
