//! The device data environment.
//!
//! Implements the OpenACC 2.0 structured/unstructured data directives the
//! paper's Section 5.4 relies on: `ENTER DATA COPYIN` / `EXIT DATA DELETE`
//! for persistence across kernel launches, `UPDATE HOST` / `UPDATE DEVICE`
//! for explicit refreshes, `CREATE` for device-only scratch (the Figure 13
//! transposition temporaries), and the `PRESENT` check every kernel uses.

use accel_sim::memory::DeviceBuffer;
use accel_sim::pcie::{transfer_time, HostAlloc, TransferKind};
use accel_sim::{DeviceMemory, DeviceSpec, EventKind, OutOfMemory, Profiler, SimTime};
use std::collections::HashMap;

/// Errors from data-environment operations.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// Allocation exceeded device memory.
    Oom(OutOfMemory),
    /// `present` check failed — the variable was never mapped (the runtime
    /// error OpenACC raises when a kernel touches unmapped data).
    NotPresent(String),
    /// Double mapping of the same name.
    AlreadyPresent(String),
}

impl std::fmt::Display for DataError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataError::Oom(e) => write!(f, "{e}"),
            DataError::NotPresent(n) => write!(f, "variable '{n}' not present on device"),
            DataError::AlreadyPresent(n) => write!(f, "variable '{n}' already present on device"),
        }
    }
}

impl std::error::Error for DataError {}

struct Mapping {
    #[allow(dead_code)] // held for its Drop (frees device bytes)
    buffer: DeviceBuffer,
    bytes: u64,
}

/// The data environment of one device context.
pub struct DataEnv {
    dev: DeviceSpec,
    mem: DeviceMemory,
    host_alloc: HostAlloc,
    mapped: HashMap<String, Mapping>,
    transfer_s: SimTime,
}

impl DataEnv {
    /// New environment on a device, with the given host allocation policy
    /// (the PGI `pin` option of the paper's best compile line).
    pub fn new(dev: DeviceSpec, host_alloc: HostAlloc) -> Self {
        let mem = DeviceMemory::new(dev.global_mem_bytes);
        Self {
            dev,
            mem,
            host_alloc,
            mapped: HashMap::new(),
            transfer_s: 0.0,
        }
    }

    /// `!$acc enter data copyin(name)` — allocate and upload.
    pub fn enter_data_copyin(
        &mut self,
        name: &str,
        bytes: u64,
        prof: &Profiler,
    ) -> Result<SimTime, DataError> {
        let t = self.map(name, bytes)?;
        let dt = transfer_time(&self.dev, bytes, self.host_alloc, TransferKind::Contiguous);
        prof.record(EventKind::MemcpyH2D, format!("copyin:{name}"), dt, 0);
        self.transfer_s += dt;
        Ok(t + dt)
    }

    /// `!$acc enter data create(name)` — allocate without upload (device
    /// scratch, e.g. transposition temporaries).
    pub fn enter_data_create(&mut self, name: &str, bytes: u64) -> Result<SimTime, DataError> {
        self.map(name, bytes)
    }

    fn map(&mut self, name: &str, bytes: u64) -> Result<SimTime, DataError> {
        if self.mapped.contains_key(name) {
            return Err(DataError::AlreadyPresent(name.to_string()));
        }
        let buffer = self.mem.alloc(bytes).map_err(DataError::Oom)?;
        self.mapped
            .insert(name.to_string(), Mapping { buffer, bytes });
        Ok(0.0)
    }

    /// `!$acc exit data delete(name)` — free device memory.
    pub fn exit_data_delete(&mut self, name: &str) -> Result<(), DataError> {
        self.mapped
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| DataError::NotPresent(name.to_string()))
    }

    /// `!$acc update host(name[range])` — download `bytes` (None = all).
    pub fn update_host(
        &mut self,
        name: &str,
        bytes: Option<u64>,
        kind: TransferKind,
        prof: &Profiler,
    ) -> Result<SimTime, DataError> {
        let m = self
            .mapped
            .get(name)
            .ok_or_else(|| DataError::NotPresent(name.to_string()))?;
        let n = bytes.unwrap_or(m.bytes).min(m.bytes);
        let dt = transfer_time(&self.dev, n, self.host_alloc, kind);
        prof.record(EventKind::MemcpyD2H, format!("update_host:{name}"), dt, 0);
        self.transfer_s += dt;
        Ok(dt)
    }

    /// `!$acc update device(name[range])` — upload `bytes` (None = all).
    pub fn update_device(
        &mut self,
        name: &str,
        bytes: Option<u64>,
        kind: TransferKind,
        prof: &Profiler,
    ) -> Result<SimTime, DataError> {
        let m = self
            .mapped
            .get(name)
            .ok_or_else(|| DataError::NotPresent(name.to_string()))?;
        let n = bytes.unwrap_or(m.bytes).min(m.bytes);
        let dt = transfer_time(&self.dev, n, self.host_alloc, kind);
        prof.record(EventKind::MemcpyH2D, format!("update_device:{name}"), dt, 0);
        self.transfer_s += dt;
        Ok(dt)
    }

    /// The `present(name)` clause: error when not mapped.
    pub fn present(&self, name: &str) -> Result<(), DataError> {
        if self.mapped.contains_key(name) {
            Ok(())
        } else {
            Err(DataError::NotPresent(name.to_string()))
        }
    }

    /// Bytes currently resident (what `nvidia-smi` guided in Section 5.1).
    pub fn device_bytes_in_use(&self) -> u64 {
        self.mem.in_use()
    }

    /// Total simulated PCIe time so far.
    pub fn transfer_time(&self) -> SimTime {
        self.transfer_s
    }

    /// The underlying device spec.
    pub fn device(&self) -> &DeviceSpec {
        &self.dev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> (DataEnv, Profiler) {
        (
            DataEnv::new(DeviceSpec::m2090(), HostAlloc::Pinned),
            Profiler::new(),
        )
    }

    #[test]
    fn copyin_maps_and_prices_transfer() {
        let (mut e, p) = env();
        let t = e.enter_data_copyin("u", 1 << 20, &p).unwrap();
        assert!(t > 0.0);
        assert_eq!(e.device_bytes_in_use(), 1 << 20);
        assert!(e.present("u").is_ok());
        assert_eq!(p.len(), 1);
        e.exit_data_delete("u").unwrap();
        assert_eq!(e.device_bytes_in_use(), 0);
        assert!(e.present("u").is_err());
    }

    #[test]
    fn create_is_free_of_transfers() {
        let (mut e, p) = env();
        let t = e.enter_data_create("tmp", 1 << 20).unwrap();
        assert_eq!(t, 0.0);
        assert!(p.is_empty());
        assert_eq!(e.transfer_time(), 0.0);
    }

    #[test]
    fn double_map_rejected() {
        let (mut e, p) = env();
        e.enter_data_copyin("u", 100, &p).unwrap();
        let err = e.enter_data_copyin("u", 100, &p).unwrap_err();
        assert!(matches!(err, DataError::AlreadyPresent(_)));
    }

    #[test]
    fn oom_surfaces_capacity() {
        let (mut e, p) = env();
        // 6 GB card: a 7 GB request must fail.
        let err = e.enter_data_copyin("big", 7 << 30, &p).unwrap_err();
        match err {
            DataError::Oom(o) => assert_eq!(o.capacity, 6 << 30),
            other => panic!("expected OOM, got {other}"),
        }
    }

    #[test]
    fn update_host_partial_and_errors() {
        let (mut e, p) = env();
        e.enter_data_copyin("u", 1 << 24, &p).unwrap();
        let full = e
            .update_host("u", None, TransferKind::Contiguous, &p)
            .unwrap();
        let part = e
            .update_host("u", Some(1 << 12), TransferKind::Contiguous, &p)
            .unwrap();
        assert!(part < full);
        assert!(e
            .update_host("ghost", None, TransferKind::Contiguous, &p)
            .is_err());
        // Partial ghost updates pay a strided penalty.
        let strided = e
            .update_host(
                "u",
                Some(1 << 12),
                TransferKind::Strided {
                    chunks: 64,
                    chunk_bytes: 64,
                },
                &p,
            )
            .unwrap();
        assert!(strided > part);
    }

    #[test]
    fn transfer_time_accumulates() {
        let (mut e, p) = env();
        e.enter_data_copyin("a", 1 << 20, &p).unwrap();
        let t1 = e.transfer_time();
        e.update_device("a", None, TransferKind::Contiguous, &p)
            .unwrap();
        assert!(e.transfer_time() > t1);
    }

    #[test]
    fn freeing_restores_capacity_for_phase_swap() {
        // The paper's offload-forward/upload-backward dance: a second phase
        // that would not co-fit must fit after exit data.
        let (mut e, p) = env();
        e.enter_data_copyin("forward", 4 << 30, &p).unwrap();
        assert!(e.enter_data_copyin("backward", 4 << 30, &p).is_err());
        e.exit_data_delete("forward").unwrap();
        assert!(e.enter_data_copyin("backward", 4 << 30, &p).is_ok());
    }
}
