//! Compute constructs and loop-scheduling clauses.

use serde::{Deserialize, Serialize};

/// The two OpenACC compute constructs (Section 4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConstructKind {
    /// `!$acc kernels` — "produces a sequence of accelerator kernels, where
    /// each loop nest becomes a kernel"; the compiler owns the mapping.
    Kernels,
    /// `!$acc parallel` — gang-redundant unless loop directives distribute
    /// work; the programmer owns the mapping.
    Parallel,
}

/// Per-loop scheduling clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoopSched {
    /// Distribute across gangs (thread blocks / SMs).
    Gang,
    /// Distribute across workers (warps).
    Worker,
    /// Map to vector lanes with the given length (0 = compiler default).
    Vector(u32),
    /// Execute sequentially inside each thread.
    Seq,
    /// Let the compiler decide.
    Auto,
}

/// Additional clauses on the construct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Clause {
    /// `collapse(n)` — fuse the n innermost loops into one iteration space.
    Collapse(u32),
    /// `independent` — assert no loop-carried dependences.
    Independent,
    /// `async(queue)` — issue on an async queue.
    Async(u32),
    /// Compiler flag `maxregcount:n` (PGI `-ta=nvidia,maxregcount:n`).
    MaxRegCount(u32),
}

/// A loop nest handed to a compute construct: sizes from outermost to
/// innermost, plus whether the innermost loop walks the contiguous axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopNest {
    /// Iteration counts, outermost first (e.g. `[nz, ny, nx]`).
    pub sizes: Vec<u64>,
    /// True when the innermost loop strides by 1 in memory. The transposed
    /// acoustic-2D kernel of Figure 13 flips this from `false` to `true`.
    pub innermost_contiguous: bool,
    /// True when the innermost loop carries (or the compiler must assume it
    /// carries) a dependence — the paper's acoustic 2D backward kernel "is
    /// not parallelized due to loop carried dependencies".
    pub innermost_dependence: bool,
    /// Scheduling clause per loop (defaults to all-`Auto` when shorter).
    pub sched: Vec<LoopSched>,
}

impl LoopNest {
    /// A clean nest with `Auto` scheduling everywhere.
    pub fn new(sizes: &[u64]) -> Self {
        Self {
            sizes: sizes.to_vec(),
            innermost_contiguous: true,
            innermost_dependence: false,
            sched: vec![LoopSched::Auto; sizes.len()],
        }
    }

    /// Total iterations (grid points).
    pub fn points(&self) -> u64 {
        self.sizes.iter().product()
    }

    /// Number of nested loops.
    pub fn depth(&self) -> usize {
        self.sizes.len()
    }

    /// Builder: set per-loop schedules (outermost first).
    pub fn with_sched(mut self, sched: &[LoopSched]) -> Self {
        assert_eq!(sched.len(), self.sizes.len(), "one clause per loop");
        self.sched = sched.to_vec();
        self
    }

    /// Builder: mark the innermost loop non-contiguous (strided sweep).
    pub fn strided(mut self) -> Self {
        self.innermost_contiguous = false;
        self
    }

    /// Builder: mark an (apparent) innermost loop-carried dependence.
    pub fn with_dependence(mut self) -> Self {
        self.innermost_dependence = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nest_accessors() {
        let n = LoopNest::new(&[100, 200, 300]);
        assert_eq!(n.points(), 100 * 200 * 300);
        assert_eq!(n.depth(), 3);
        assert!(n.innermost_contiguous);
        assert!(!n.innermost_dependence);
    }

    #[test]
    fn builders_compose() {
        let n = LoopNest::new(&[64, 64])
            .with_sched(&[LoopSched::Gang, LoopSched::Vector(128)])
            .strided()
            .with_dependence();
        assert!(!n.innermost_contiguous);
        assert!(n.innermost_dependence);
        assert_eq!(n.sched[1], LoopSched::Vector(128));
    }

    #[test]
    #[should_panic(expected = "one clause per loop")]
    fn sched_arity_checked() {
        LoopNest::new(&[10, 10]).with_sched(&[LoopSched::Gang]);
    }
}
