//! Host-side gang execution.
//!
//! OpenACC semantics on the simulated device; *numerics* on the host. A
//! compute construct's gang dimension maps to a pool of host threads, each
//! executing the kernel body over a disjoint z-slab — identical results to
//! the sequential sweep (the propagator test-suites verify bit equality),
//! so the simulation produces real wavefields while the clock runs on the
//! model.

/// Number of host worker threads to use for gang execution.
pub fn default_gangs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(1, 16)
}

/// Run `body(z0, z1)` over `gangs` contiguous chunks of `[0, n)` in
/// parallel. The body must only write state owned by its chunk (the
/// `SyncSlice` discipline of `seismic-grid`).
pub fn par_slabs<F>(n: usize, gangs: usize, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    assert!(gangs > 0, "need at least one gang");
    if n == 0 {
        return;
    }
    let gangs = gangs.min(n);
    if gangs == 1 {
        body(0, n);
        return;
    }
    let base = n / gangs;
    let rem = n % gangs;
    std::thread::scope(|s| {
        let body = &body;
        let mut z = 0usize;
        for g in 0..gangs {
            let rows = base + usize::from(g < rem);
            let (z0, z1) = (z, z + rows);
            z = z1;
            s.spawn(move || body(z0, z1));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn covers_range_exactly_once() {
        let n = 103;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        par_slabs(n, 7, |z0, z1| {
            for h in &hits[z0..z1] {
                h.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn single_gang_and_empty_range() {
        let count = AtomicUsize::new(0);
        par_slabs(10, 1, |z0, z1| {
            assert_eq!((z0, z1), (0, 10));
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 1);
        par_slabs(0, 4, |_, _| panic!("must not run"));
    }

    #[test]
    fn more_gangs_than_rows_clamps() {
        let count = AtomicUsize::new(0);
        par_slabs(3, 16, |z0, z1| {
            assert_eq!(z1 - z0, 1);
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn default_gangs_sane() {
        let g = default_gangs();
        assert!((1..=16).contains(&g));
    }
}
