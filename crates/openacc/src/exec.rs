//! Host-side gang execution, plus the Tier-2 sanitizer.
//!
//! OpenACC semantics on the simulated device; *numerics* on the host. A
//! compute construct's gang dimension maps to a pool of host threads, each
//! executing the kernel body over a disjoint z-slab — identical results to
//! the sequential sweep (the propagator test-suites verify bit equality),
//! so the simulation produces real wavefields while the clock runs on the
//! model.
//!
//! The sanitizer half of this module ([`par_slabs_logged`] /
//! [`replay_access_set`]) is the dynamic tier of `acc-verify`: behind a
//! `sanitize` flag, every gang records the elements it touches into a
//! shadow log during real host execution on a small grid, and
//! [`ShadowLog::conflicts`] reports any element written by one iteration
//! and touched by another — confirming or refuting a static
//! `independent`-race verdict with an actual witness.

use crate::access::AccessSet;
use std::collections::HashMap;

/// Number of host worker threads to use for gang execution.
pub fn default_gangs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .clamp(1, 16)
}

/// Run `body(z0, z1)` over `gangs` contiguous chunks of `[0, n)` in
/// parallel. The body must only write state owned by its chunk (the
/// `SyncSlice` discipline of `seismic-grid`).
pub fn par_slabs<F>(n: usize, gangs: usize, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    assert!(gangs > 0, "need at least one gang");
    if n == 0 {
        return;
    }
    let gangs = gangs.min(n);
    if gangs == 1 {
        body(0, n);
        return;
    }
    let base = n / gangs;
    let rem = n % gangs;
    std::thread::scope(|s| {
        let body = &body;
        let mut z = 0usize;
        for g in 0..gangs {
            let rows = base + usize::from(g < rem);
            let (z0, z1) = (z, z + rows);
            z = z1;
            s.spawn(move || body(z0, z1));
        }
    });
}

/// One recorded memory event: iteration `iter` touched element `elem` of
/// the array with local id `array` (resolved through [`GangLog::names`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AccessEvent {
    iter: u64,
    array: u16,
    elem: i64,
    write: bool,
}

/// The shadow log one gang fills while executing its slab.
#[derive(Debug, Default)]
pub struct GangLog {
    enabled: bool,
    names: Vec<String>,
    events: Vec<AccessEvent>,
}

impl GangLog {
    fn new(enabled: bool) -> Self {
        Self {
            enabled,
            names: Vec::new(),
            events: Vec::new(),
        }
    }

    fn array_id(&mut self, name: &str) -> u16 {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return i as u16;
        }
        self.names.push(name.to_string());
        (self.names.len() - 1) as u16
    }

    /// Record a read of `array[elem]` by iteration `iter`. No-op unless the
    /// sanitize flag is on.
    pub fn read(&mut self, array: &str, elem: i64, iter: u64) {
        if self.enabled {
            let array = self.array_id(array);
            self.events.push(AccessEvent {
                iter,
                array,
                elem,
                write: false,
            });
        }
    }

    /// Record a write of `array[elem]` by iteration `iter`. No-op unless
    /// the sanitize flag is on.
    pub fn write(&mut self, array: &str, elem: i64, iter: u64) {
        if self.enabled {
            let array = self.array_id(array);
            self.events.push(AccessEvent {
                iter,
                array,
                elem,
                write: true,
            });
        }
    }
}

/// A cross-iteration conflict witnessed during sanitized execution: two
/// distinct iterations touched the same element with at least one write —
/// exactly what a true `independent` clause rules out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementConflict {
    /// Array touched.
    pub array: String,
    /// Conflicting element index.
    pub elem: i64,
    /// The iteration that wrote it.
    pub write_iter: u64,
    /// Another iteration that read or wrote the same element.
    pub other_iter: u64,
    /// True when both accesses were writes (WAW rather than RAW/WAR).
    pub write_write: bool,
}

/// The inclusive write interval one gang produced on one array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GangWriteInterval {
    /// Gang index.
    pub gang: usize,
    /// Array written.
    pub array: String,
    /// Lowest element written.
    pub lo: i64,
    /// Highest element written.
    pub hi: i64,
}

/// The merged shadow logs of one sanitized execution.
#[derive(Debug, Default)]
pub struct ShadowLog {
    per_gang: Vec<GangLog>,
}

impl ShadowLog {
    /// Per-gang inclusive write intervals, one entry per (gang, array) with
    /// at least one write — the coarse summary used to cross-check slab
    /// ownership (disjoint intervals ⇒ no inter-gang WAW).
    pub fn gang_write_intervals(&self) -> Vec<GangWriteInterval> {
        let mut out = Vec::new();
        for (g, log) in self.per_gang.iter().enumerate() {
            let mut ranges: HashMap<u16, (i64, i64)> = HashMap::new();
            for e in log.events.iter().filter(|e| e.write) {
                let r = ranges.entry(e.array).or_insert((e.elem, e.elem));
                r.0 = r.0.min(e.elem);
                r.1 = r.1.max(e.elem);
            }
            let mut rs: Vec<_> = ranges.into_iter().collect();
            rs.sort_unstable_by_key(|(id, _)| *id);
            for (id, (lo, hi)) in rs {
                out.push(GangWriteInterval {
                    gang: g,
                    array: log.names[id as usize].clone(),
                    lo,
                    hi,
                });
            }
        }
        out
    }

    /// Every cross-iteration element conflict in the merged logs, sorted by
    /// (array, element). Empty ⇔ the executed pattern really was
    /// `independent`.
    pub fn conflicts(&self) -> Vec<ElementConflict> {
        // element -> (a write iter if any, an iter touching it, any second
        // distinct iter with a write involved)
        let mut writes: HashMap<(&str, i64), u64> = HashMap::new();
        let mut touches: HashMap<(&str, i64), u64> = HashMap::new();
        let mut out = Vec::new();
        let all = self.per_gang.iter().flat_map(|log| {
            log.events
                .iter()
                .map(move |e| (log.names[e.array as usize].as_str(), e))
        });
        for (name, e) in all.clone() {
            if e.write {
                writes.entry((name, e.elem)).or_insert(e.iter);
            }
            touches.entry((name, e.elem)).or_insert(e.iter);
        }
        let mut seen: HashMap<(&str, i64), bool> = HashMap::new();
        for (name, e) in all {
            let Some(&w) = writes.get(&(name, e.elem)) else {
                continue;
            };
            if e.iter != w && !seen.contains_key(&(name, e.elem)) {
                seen.insert((name, e.elem), true);
                out.push(ElementConflict {
                    array: name.to_string(),
                    elem: e.elem,
                    write_iter: w,
                    other_iter: e.iter,
                    write_write: e.write,
                });
            }
        }
        out.sort_unstable_by(|a, b| (&a.array, a.elem).cmp(&(&b.array, b.elem)));
        out
    }

    /// True when no conflict was witnessed.
    pub fn clean(&self) -> bool {
        self.conflicts().is_empty()
    }
}

/// [`par_slabs`] with shadow logging: each gang additionally receives its
/// own [`GangLog`] (live only when `sanitize` is true — the flag makes the
/// tracker free in production runs). Returns the merged log.
pub fn par_slabs_logged<F>(n: usize, gangs: usize, sanitize: bool, body: F) -> ShadowLog
where
    F: Fn(usize, usize, &mut GangLog) + Sync,
{
    assert!(gangs > 0, "need at least one gang");
    if n == 0 {
        return ShadowLog::default();
    }
    let gangs = gangs.min(n);
    let base = n / gangs;
    let rem = n % gangs;
    let per_gang = std::thread::scope(|s| {
        let body = &body;
        let mut handles = Vec::with_capacity(gangs);
        let mut z = 0usize;
        for g in 0..gangs {
            let rows = base + usize::from(g < rem);
            let (z0, z1) = (z, z + rows);
            z = z1;
            handles.push(s.spawn(move || {
                let mut log = GangLog::new(sanitize);
                body(z0, z1, &mut log);
                log
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("gang panicked"))
            .collect::<Vec<_>>()
    });
    ShadowLog { per_gang }
}

/// Execute a declared [`AccessSet`] for real through the gang engine with
/// the sanitizer on: iteration `i` performs exactly the reads and writes
/// the descriptor claims, and the shadow log says whether any two
/// iterations actually collided. This is how Tier 2 confirms or refutes a
/// static race verdict on a small grid.
pub fn replay_access_set(access: &AccessSet, gangs: usize) -> ShadowLog {
    par_slabs_logged(access.trip as usize, gangs.max(1), true, |z0, z1, log| {
        for i in z0..z1 {
            let i = i as u64;
            for r in &access.reads {
                log.read(&r.array, r.at(i), i);
            }
            for w in &access.writes {
                log.write(&w.array, w.at(i), i);
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn covers_range_exactly_once() {
        let n = 103;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        par_slabs(n, 7, |z0, z1| {
            for h in &hits[z0..z1] {
                h.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn single_gang_and_empty_range() {
        let count = AtomicUsize::new(0);
        par_slabs(10, 1, |z0, z1| {
            assert_eq!((z0, z1), (0, 10));
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 1);
        par_slabs(0, 4, |_, _| panic!("must not run"));
    }

    #[test]
    fn more_gangs_than_rows_clamps() {
        let count = AtomicUsize::new(0);
        par_slabs(3, 16, |z0, z1| {
            assert_eq!(z1 - z0, 1);
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn default_gangs_sane() {
        let g = default_gangs();
        assert!((1..=16).contains(&g));
    }

    /// An out-of-place stencil replays clean: no element is written by one
    /// iteration and touched by another.
    #[test]
    fn sanitizer_confirms_independent_stencil() {
        let acc = AccessSet::stencil(64, "fields", 1000, 0, 4, 8);
        let log = replay_access_set(&acc, 4);
        assert!(log.clean(), "conflicts: {:?}", log.conflicts());
        // Gang write intervals are disjoint and ordered.
        let iv = log.gang_write_intervals();
        assert_eq!(iv.len(), 4);
        for w in iv.windows(2) {
            assert!(w[0].hi < w[1].lo, "gang slabs must not overlap");
        }
    }

    /// The in-place mutation is caught with a concrete witness pair.
    #[test]
    fn sanitizer_catches_inplace_stencil() {
        let acc = AccessSet::stencil_inplace(64, "u", 0, 2, 8);
        let log = replay_access_set(&acc, 4);
        let conflicts = log.conflicts();
        assert!(!conflicts.is_empty());
        let c = &conflicts[0];
        assert_eq!(c.array, "u");
        assert_ne!(c.write_iter, c.other_iter);
        // The witness element really is produced by both iterations.
        let hits = |iter: u64| {
            acc.reads
                .iter()
                .chain(acc.writes.iter())
                .any(|a| a.at(iter) == c.elem)
        };
        assert!(hits(c.write_iter) && hits(c.other_iter));
    }

    /// Two iterations writing the same element (stride 0) is a WAW
    /// conflict even with no reads at all.
    #[test]
    fn sanitizer_flags_waw() {
        let acc = AccessSet::new(16).write("img", 7, 0);
        let conflicts = replay_access_set(&acc, 3).conflicts();
        assert_eq!(conflicts.len(), 1);
        assert!(conflicts[0].write_write);
        assert_eq!(conflicts[0].elem, 7);
    }

    /// The sanitize flag gates logging: disabled execution records nothing.
    #[test]
    fn sanitize_flag_gates_logging() {
        let log = par_slabs_logged(32, 4, false, |z0, z1, l| {
            for i in z0..z1 {
                l.write("u", i as i64, i as u64);
                l.read("u", i as i64 + 1, i as u64);
            }
        });
        assert!(log.conflicts().is_empty());
        assert!(log.gang_write_intervals().is_empty());
        // Same body with the flag on sees the overlap.
        let log = par_slabs_logged(32, 4, true, |z0, z1, l| {
            for i in z0..z1 {
                l.write("u", i as i64, i as u64);
                l.read("u", i as i64 + 1, i as u64);
            }
        });
        assert!(!log.conflicts().is_empty());
    }

    #[test]
    fn empty_replay_is_clean() {
        let acc = AccessSet::new(0).write("u", 0, 1);
        let log = replay_access_set(&acc, 4);
        assert!(log.clean());
    }
}
