//! Host-side gang execution, plus the Tier-2 sanitizer.
//!
//! OpenACC semantics on the simulated device; *numerics* on the host. A
//! compute construct's gang dimension maps to a pool of host threads, each
//! executing the kernel body over a disjoint z-slab — identical results to
//! the sequential sweep (the propagator test-suites verify bit equality),
//! so the simulation produces real wavefields while the clock runs on the
//! model.
//!
//! The sanitizer half of this module ([`par_slabs_logged`] /
//! [`replay_access_set`]) is the dynamic tier of `acc-verify`: behind a
//! `sanitize` flag, every gang records the elements it touches into a
//! shadow log during real host execution on a small grid, and
//! [`ShadowLog::conflicts`] reports any element written by one iteration
//! and touched by another — confirming or refuting a static
//! `independent`-race verdict with an actual witness.

use crate::access::AccessSet;
use exec_host::{slab_bounds, GangPool};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};

/// Upper bound on the gang count — matches the paper's launch
/// configurations and keeps slab overhead bounded on small grids.
pub const MAX_GANGS: usize = 16;

/// A rejected `ACC_GANGS` environment value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GangEnvError {
    /// The raw value that was rejected.
    pub value: String,
    /// Why it was rejected.
    pub reason: GangEnvErrorKind,
}

/// The ways an `ACC_GANGS` value can be invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GangEnvErrorKind {
    /// Not a base-10 unsigned integer.
    NotANumber,
    /// Parsed, but outside `1..=MAX_GANGS`.
    OutOfRange,
}

impl std::fmt::Display for GangEnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.reason {
            GangEnvErrorKind::NotANumber => {
                write!(f, "ACC_GANGS={:?} is not an unsigned integer", self.value)
            }
            GangEnvErrorKind::OutOfRange => write!(
                f,
                "ACC_GANGS={:?} is outside the supported range 1..={MAX_GANGS}",
                self.value
            ),
        }
    }
}

impl std::error::Error for GangEnvError {}

/// Parse an `ACC_GANGS` value: a base-10 integer in `1..=`[`MAX_GANGS`].
pub fn parse_gangs(raw: &str) -> Result<usize, GangEnvError> {
    let n: usize = raw.trim().parse().map_err(|_| GangEnvError {
        value: raw.to_string(),
        reason: GangEnvErrorKind::NotANumber,
    })?;
    if (1..=MAX_GANGS).contains(&n) {
        Ok(n)
    } else {
        Err(GangEnvError {
            value: raw.to_string(),
            reason: GangEnvErrorKind::OutOfRange,
        })
    }
}

/// Gang count from the environment or the hardware: an `ACC_GANGS` env var
/// wins when set (garbage is a typed [`GangEnvError`], never silently
/// ignored); otherwise one gang per available core, clamped to
/// `1..=`[`MAX_GANGS`].
pub fn try_default_gangs() -> Result<usize, GangEnvError> {
    match std::env::var("ACC_GANGS") {
        Ok(raw) => parse_gangs(&raw),
        Err(_) => Ok(std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(1, MAX_GANGS)),
    }
}

/// Number of host worker threads to use for gang execution. Panics with
/// the [`GangEnvError`] message if `ACC_GANGS` is set to garbage; use
/// [`try_default_gangs`] to handle that case.
pub fn default_gangs() -> usize {
    try_default_gangs().unwrap_or_else(|e| panic!("{e}"))
}

/// Which host engine executes gang launches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The persistent worker pool (`exec_host::GangPool`) — the default.
    Pooled,
    /// Per-launch `std::thread::scope` spawns — the legacy engine, kept so
    /// benches can measure the pool's win through unchanged drivers.
    Scoped,
}

static ENGINE: AtomicU8 = AtomicU8::new(0);

/// Select the gang execution engine process-wide (used by benches; both
/// engines produce bit-identical results).
pub fn set_engine(e: Engine) {
    ENGINE.store(e as u8, Ordering::Relaxed);
}

/// The currently selected gang execution engine.
pub fn engine() -> Engine {
    match ENGINE.load(Ordering::Relaxed) {
        0 => Engine::Pooled,
        _ => Engine::Scoped,
    }
}

/// Execute one gang launch on the selected engine.
fn dispatch(n: usize, gangs: usize, body: &(dyn Fn(usize, usize, usize) + Sync)) {
    match engine() {
        Engine::Pooled => GangPool::global().run(n, gangs, body),
        Engine::Scoped => scoped_run(n, gangs, body),
    }
}

/// The legacy engine: spawn and join one OS thread per gang, every launch.
fn scoped_run(n: usize, gangs: usize, body: &(dyn Fn(usize, usize, usize) + Sync)) {
    std::thread::scope(|s| {
        for g in 0..gangs {
            let (z0, z1) = slab_bounds(n, gangs, g);
            s.spawn(move || body(g, z0, z1));
        }
    });
}

/// Run `body(z0, z1)` over `gangs` contiguous chunks of `[0, n)` in
/// parallel. The body must only write state owned by its chunk (the
/// `SyncSlice` discipline of `seismic-grid`).
///
/// Launches go through the persistent [`exec_host::GangPool`] (no threads
/// are spawned per launch, and the steady state allocates nothing); slab
/// partitioning is the same pure function of `(n, gangs, g)` on every
/// engine, so results are bit-identical to the sequential sweep.
pub fn par_slabs<F>(n: usize, gangs: usize, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    assert!(gangs > 0, "need at least one gang");
    if n == 0 {
        return;
    }
    let gangs = gangs.min(n);
    // Wall-clock sweep span: one per launch, on the launching thread,
    // covering the single-gang shortcut too.
    let t_sweep = exec_host::prof::begin();
    if gangs == 1 {
        body(0, n);
    } else {
        dispatch(n, gangs, &|_g, z0, z1| body(z0, z1));
    }
    exec_host::prof::end(
        t_sweep,
        exec_host::prof::EventKind::Sweep,
        gangs as u32,
        n.min(u32::MAX as usize) as u32,
    );
}

/// [`par_slabs`] forced onto the legacy per-launch `thread::scope` engine,
/// regardless of the process-wide [`engine`] selection. Benchmarks use
/// this as the A/B baseline.
pub fn par_slabs_scoped<F>(n: usize, gangs: usize, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    assert!(gangs > 0, "need at least one gang");
    if n == 0 {
        return;
    }
    let gangs = gangs.min(n);
    let t_sweep = exec_host::prof::begin();
    if gangs == 1 {
        body(0, n);
    } else {
        scoped_run(n, gangs, &|_g, z0, z1| body(z0, z1));
    }
    exec_host::prof::end(
        t_sweep,
        exec_host::prof::EventKind::Sweep,
        gangs as u32,
        n.min(u32::MAX as usize) as u32,
    );
}

/// One recorded memory event: iteration `iter` touched element `elem` of
/// the array with local id `array` (resolved through [`GangLog::names`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AccessEvent {
    iter: u64,
    array: u16,
    elem: i64,
    write: bool,
}

/// The shadow log one gang fills while executing its slab.
#[derive(Debug, Default)]
pub struct GangLog {
    enabled: bool,
    names: Vec<String>,
    events: Vec<AccessEvent>,
}

impl GangLog {
    fn new(enabled: bool) -> Self {
        Self {
            enabled,
            names: Vec::new(),
            events: Vec::new(),
        }
    }

    fn array_id(&mut self, name: &str) -> u16 {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return i as u16;
        }
        self.names.push(name.to_string());
        (self.names.len() - 1) as u16
    }

    /// Record a read of `array[elem]` by iteration `iter`. No-op unless the
    /// sanitize flag is on.
    pub fn read(&mut self, array: &str, elem: i64, iter: u64) {
        if self.enabled {
            let array = self.array_id(array);
            self.events.push(AccessEvent {
                iter,
                array,
                elem,
                write: false,
            });
        }
    }

    /// Record a write of `array[elem]` by iteration `iter`. No-op unless
    /// the sanitize flag is on.
    pub fn write(&mut self, array: &str, elem: i64, iter: u64) {
        if self.enabled {
            let array = self.array_id(array);
            self.events.push(AccessEvent {
                iter,
                array,
                elem,
                write: true,
            });
        }
    }
}

/// A cross-iteration conflict witnessed during sanitized execution: two
/// distinct iterations touched the same element with at least one write —
/// exactly what a true `independent` clause rules out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementConflict {
    /// Array touched.
    pub array: String,
    /// Conflicting element index.
    pub elem: i64,
    /// The iteration that wrote it.
    pub write_iter: u64,
    /// Another iteration that read or wrote the same element.
    pub other_iter: u64,
    /// True when both accesses were writes (WAW rather than RAW/WAR).
    pub write_write: bool,
}

/// The inclusive write interval one gang produced on one array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GangWriteInterval {
    /// Gang index.
    pub gang: usize,
    /// Array written.
    pub array: String,
    /// Lowest element written.
    pub lo: i64,
    /// Highest element written.
    pub hi: i64,
}

/// The merged shadow logs of one sanitized execution.
#[derive(Debug, Default)]
pub struct ShadowLog {
    per_gang: Vec<GangLog>,
}

impl ShadowLog {
    /// Per-gang inclusive write intervals, one entry per (gang, array) with
    /// at least one write — the coarse summary used to cross-check slab
    /// ownership (disjoint intervals ⇒ no inter-gang WAW).
    pub fn gang_write_intervals(&self) -> Vec<GangWriteInterval> {
        let mut out = Vec::new();
        for (g, log) in self.per_gang.iter().enumerate() {
            let mut ranges: HashMap<u16, (i64, i64)> = HashMap::new();
            for e in log.events.iter().filter(|e| e.write) {
                let r = ranges.entry(e.array).or_insert((e.elem, e.elem));
                r.0 = r.0.min(e.elem);
                r.1 = r.1.max(e.elem);
            }
            let mut rs: Vec<_> = ranges.into_iter().collect();
            rs.sort_unstable_by_key(|(id, _)| *id);
            for (id, (lo, hi)) in rs {
                out.push(GangWriteInterval {
                    gang: g,
                    array: log.names[id as usize].clone(),
                    lo,
                    hi,
                });
            }
        }
        out
    }

    /// Every cross-iteration element conflict in the merged logs, sorted by
    /// (array, element). Empty ⇔ the executed pattern really was
    /// `independent`.
    pub fn conflicts(&self) -> Vec<ElementConflict> {
        // element -> (a write iter if any, an iter touching it, any second
        // distinct iter with a write involved)
        let mut writes: HashMap<(&str, i64), u64> = HashMap::new();
        let mut touches: HashMap<(&str, i64), u64> = HashMap::new();
        let mut out = Vec::new();
        let all = self.per_gang.iter().flat_map(|log| {
            log.events
                .iter()
                .map(move |e| (log.names[e.array as usize].as_str(), e))
        });
        for (name, e) in all.clone() {
            if e.write {
                writes.entry((name, e.elem)).or_insert(e.iter);
            }
            touches.entry((name, e.elem)).or_insert(e.iter);
        }
        let mut seen: HashMap<(&str, i64), bool> = HashMap::new();
        for (name, e) in all {
            let Some(&w) = writes.get(&(name, e.elem)) else {
                continue;
            };
            if e.iter != w && !seen.contains_key(&(name, e.elem)) {
                seen.insert((name, e.elem), true);
                out.push(ElementConflict {
                    array: name.to_string(),
                    elem: e.elem,
                    write_iter: w,
                    other_iter: e.iter,
                    write_write: e.write,
                });
            }
        }
        out.sort_unstable_by(|a, b| (&a.array, a.elem).cmp(&(&b.array, b.elem)));
        out
    }

    /// True when no conflict was witnessed.
    pub fn clean(&self) -> bool {
        self.conflicts().is_empty()
    }
}

/// [`par_slabs`] with shadow logging: each gang additionally receives its
/// own [`GangLog`] (live only when `sanitize` is true — the flag makes the
/// tracker free in production runs). Returns the merged log.
pub fn par_slabs_logged<F>(n: usize, gangs: usize, sanitize: bool, body: F) -> ShadowLog
where
    F: Fn(usize, usize, &mut GangLog) + Sync,
{
    assert!(gangs > 0, "need at least one gang");
    if n == 0 {
        return ShadowLog::default();
    }
    let gangs = gangs.min(n);
    // Each gang index is executed exactly once per launch, so each mutex is
    // uncontended; it only exists to hand the pool a `Sync` body.
    let logs: Vec<std::sync::Mutex<GangLog>> = (0..gangs)
        .map(|_| std::sync::Mutex::new(GangLog::new(sanitize)))
        .collect();
    let t_sweep = exec_host::prof::begin();
    dispatch(n, gangs, &|g, z0, z1| {
        let mut log = logs[g].lock().expect("gang log poisoned");
        body(z0, z1, &mut log);
    });
    exec_host::prof::end(
        t_sweep,
        exec_host::prof::EventKind::Sweep,
        gangs as u32,
        n.min(u32::MAX as usize) as u32,
    );
    ShadowLog {
        per_gang: logs
            .into_iter()
            .map(|m| m.into_inner().expect("gang log poisoned"))
            .collect(),
    }
}

/// Execute a declared [`AccessSet`] for real through the gang engine with
/// the sanitizer on: iteration `i` performs exactly the reads and writes
/// the descriptor claims, and the shadow log says whether any two
/// iterations actually collided. This is how Tier 2 confirms or refutes a
/// static race verdict on a small grid.
pub fn replay_access_set(access: &AccessSet, gangs: usize) -> ShadowLog {
    par_slabs_logged(access.trip as usize, gangs.max(1), true, |z0, z1, log| {
        for i in z0..z1 {
            let i = i as u64;
            for r in &access.reads {
                log.read(&r.array, r.at(i), i);
            }
            for w in &access.writes {
                log.write(&w.array, w.at(i), i);
            }
        }
    })
}

/// A conflict between two lanes of the *same* SIMD chunk witnessed during
/// lane replay: both iterations would execute simultaneously in one vector
/// instruction, so an element shared with a write involved makes the
/// `vector(width)` mapping illegal. Cross-chunk sharing is fine — chunks
/// retire in iteration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneConflict {
    /// Array touched.
    pub array: String,
    /// Conflicting element index.
    pub elem: i64,
    /// Chunk (vector-instruction index) both lanes belong to.
    pub chunk: u64,
    /// Iteration performing the write.
    pub write_iter: u64,
    /// Distinct iteration in the same chunk touching the same element.
    pub other_iter: u64,
    /// True when both lane accesses were writes.
    pub write_write: bool,
}

/// What the lane replay measured about one declared access stream, from
/// the addresses it actually touched (not from the descriptor fields).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservedLaneAccess {
    /// Array touched.
    pub array: String,
    /// True for the write stream.
    pub write: bool,
    /// Element lane 0 of chunk 0 touched.
    pub first_elem: i64,
    /// Constant element delta between adjacent lanes, when every adjacent
    /// pair in every replayed chunk agreed; `None` means the stream is not
    /// an arithmetic lane progression (a gather).
    pub lane_delta: Option<i64>,
    /// `first_elem mod width` — the alignment residue of the stream base.
    pub residue: i64,
}

/// The record of one lane-granularity replay: the declared access set
/// executed in `width`-wide chunks, sequentially chunk by chunk, with
/// every intra-chunk element collision logged.
#[derive(Debug, Clone, Default)]
pub struct LaneReplay {
    /// Lane width replayed at.
    pub width: u32,
    /// Iterations replayed.
    pub trip: u64,
    /// Intra-chunk conflicts (empty ⇔ the mapping is lane-safe).
    pub conflicts: Vec<LaneConflict>,
    /// Per-stream stride/alignment measurements.
    pub observed: Vec<ObservedLaneAccess>,
}

impl LaneReplay {
    /// True when no two lanes of any chunk collided — the dynamic analogue
    /// of "minimum carried dependence distance ≥ width".
    pub fn lane_safe(&self) -> bool {
        self.conflicts.is_empty()
    }

    /// True when every stream advanced by exactly ±1 element per lane
    /// (stride-0 broadcast reads are allowed — they don't consume
    /// bandwidth per lane).
    pub fn unit_stride(&self) -> bool {
        self.observed
            .iter()
            .all(|o| matches!(o.lane_delta, Some(-1..=1)))
    }

    /// The alignment residue of each written stream's base, one entry per
    /// write in declaration order.
    pub fn write_residues(&self) -> Vec<(String, i64)> {
        self.observed
            .iter()
            .filter(|o| o.write)
            .map(|o| (o.array.clone(), o.residue))
            .collect()
    }
}

/// Replay a declared [`AccessSet`] through `width`-wide SIMD chunks:
/// chunk `c` executes iterations `[c·width, (c+1)·width)` as simultaneous
/// lanes, chunks retire strictly in order. Any element touched by two
/// distinct lanes of the *same* chunk with a write involved is recorded as
/// a [`LaneConflict`]. Declared reduction cells replay lane-private (each
/// lane owns a partial, combined after the loop) and are exempt.
///
/// This is the dynamic tier of the vectorization verifier: the static
/// claim "no carried dependence shorter than `width`" must be equivalent
/// to this replay finding no conflict, on the same trip count.
pub fn replay_lanes(access: &AccessSet, width: u32) -> LaneReplay {
    assert!(width >= 1, "lane width must be positive");
    let w = width as u64;
    let trip = access.trip;
    let mut conflicts = Vec::new();
    // (array id, elem) -> (iter, wrote) for the current chunk only.
    let mut chunk_map: HashMap<(usize, i64), (u64, bool)> = HashMap::new();
    let names: Vec<&str> = access
        .writes
        .iter()
        .chain(access.reads.iter())
        .map(|a| a.array.as_str())
        .collect();
    let streams: Vec<(&crate::access::AffineAccess, bool)> = access
        .writes
        .iter()
        .map(|a| (a, true))
        .chain(access.reads.iter().map(|a| (a, false)))
        .collect();
    let mut chunk = 0u64;
    let mut i = 0u64;
    while i < trip {
        let end = (i + w).min(trip);
        chunk_map.clear();
        for iter in i..end {
            for (sid, (a, write)) in streams.iter().enumerate() {
                let elem = a.at(iter);
                match chunk_map.get_mut(&(sid_array(&names, sid), elem)) {
                    Some((prev, wrote)) => {
                        let pw = *wrote;
                        if *prev != iter && (pw || *write) {
                            let (wi, oi, ww) = if *write {
                                (iter, *prev, pw)
                            } else {
                                (*prev, iter, false)
                            };
                            conflicts.push(LaneConflict {
                                array: a.array.clone(),
                                elem,
                                chunk,
                                write_iter: wi,
                                other_iter: oi,
                                write_write: ww,
                            });
                        }
                        *wrote = pw || *write;
                    }
                    None => {
                        chunk_map.insert((sid_array(&names, sid), elem), (iter, *write));
                    }
                }
            }
        }
        chunk += 1;
        i = end;
    }
    conflicts
        .sort_unstable_by(|a, b| (a.chunk, &a.array, a.elem).cmp(&(b.chunk, &b.array, b.elem)));
    conflicts.dedup();

    // Measure each stream's lane progression from the replayed addresses.
    let mut observed = Vec::with_capacity(streams.len());
    for (a, write) in &streams {
        let first_elem = a.at(0);
        let mut lane_delta = None;
        let mut consistent = true;
        let mut i = 0u64;
        while i < trip && consistent {
            let end = (i + w).min(trip);
            for iter in i + 1..end {
                let d = a.at(iter) - a.at(iter - 1);
                match lane_delta {
                    None => lane_delta = Some(d),
                    Some(prev) if prev != d => {
                        consistent = false;
                        break;
                    }
                    Some(_) => {}
                }
            }
            i = end;
        }
        observed.push(ObservedLaneAccess {
            array: a.array.clone(),
            write: *write,
            first_elem,
            lane_delta: if consistent { lane_delta } else { None },
            residue: first_elem.rem_euclid(w as i64),
        });
    }
    LaneReplay {
        width,
        trip,
        conflicts,
        observed,
    }
}

/// Canonical array key for the chunk map: index of the first stream naming
/// this array, so streams over the same array share a key.
fn sid_array(names: &[&str], sid: usize) -> usize {
    let name = names[sid];
    names.iter().position(|n| *n == name).unwrap_or(sid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn covers_range_exactly_once() {
        let n = 103;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        par_slabs(n, 7, |z0, z1| {
            for h in &hits[z0..z1] {
                h.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn single_gang_and_empty_range() {
        let count = AtomicUsize::new(0);
        par_slabs(10, 1, |z0, z1| {
            assert_eq!((z0, z1), (0, 10));
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 1);
        par_slabs(0, 4, |_, _| panic!("must not run"));
    }

    #[test]
    fn more_gangs_than_rows_clamps() {
        let count = AtomicUsize::new(0);
        par_slabs(3, 16, |z0, z1| {
            assert_eq!(z1 - z0, 1);
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn default_gangs_sane() {
        let g = default_gangs();
        assert!((1..=16).contains(&g));
    }

    #[test]
    fn parse_gangs_accepts_valid_values() {
        assert_eq!(parse_gangs("1"), Ok(1));
        assert_eq!(parse_gangs("8"), Ok(8));
        assert_eq!(parse_gangs(" 16 "), Ok(16));
    }

    #[test]
    fn parse_gangs_rejects_garbage_with_typed_error() {
        for raw in ["", "zero", "4.5", "-2", "0x8"] {
            let err = parse_gangs(raw).unwrap_err();
            assert_eq!(err.value, raw);
            assert_eq!(err.reason, GangEnvErrorKind::NotANumber);
            assert!(err.to_string().contains("not an unsigned integer"));
        }
        for raw in ["0", "17", "4096"] {
            let err = parse_gangs(raw).unwrap_err();
            assert_eq!(err.reason, GangEnvErrorKind::OutOfRange);
            assert!(err.to_string().contains("1..=16"));
        }
    }

    /// `ACC_GANGS` overrides the hardware-derived default. The test only
    /// ever sets in-range values so the concurrent `default_gangs_sane`
    /// test keeps passing whatever interleaving the runner picks.
    #[test]
    fn acc_gangs_env_overrides_default() {
        std::env::set_var("ACC_GANGS", "7");
        let got = try_default_gangs();
        std::env::remove_var("ACC_GANGS");
        assert_eq!(got, Ok(7));
        let hw = try_default_gangs().expect("unset env must use hardware");
        assert!((1..=MAX_GANGS).contains(&hw));
    }

    /// The legacy engine and the pooled engine produce identical bits.
    #[test]
    #[allow(clippy::type_complexity)]
    fn scoped_and_pooled_agree() {
        let n = 97usize;
        let fill = |slabs: &dyn Fn(usize, usize, &(dyn Fn(usize, usize) + Sync))| {
            let out: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            slabs(n, 5, &|z0, z1| {
                for (i, o) in out.iter().enumerate().take(z1).skip(z0) {
                    o.store(i * 31 + 7, Ordering::Relaxed);
                }
            });
            out.into_iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect::<Vec<_>>()
        };
        let pooled = fill(&|n, g, b| par_slabs(n, g, b));
        let scoped = fill(&|n, g, b| par_slabs_scoped(n, g, b));
        assert_eq!(pooled, scoped);
    }

    /// An out-of-place stencil replays clean: no element is written by one
    /// iteration and touched by another.
    #[test]
    fn sanitizer_confirms_independent_stencil() {
        let acc = AccessSet::stencil(64, "fields", 1000, 0, 4, 8);
        let log = replay_access_set(&acc, 4);
        assert!(log.clean(), "conflicts: {:?}", log.conflicts());
        // Gang write intervals are disjoint and ordered.
        let iv = log.gang_write_intervals();
        assert_eq!(iv.len(), 4);
        for w in iv.windows(2) {
            assert!(w[0].hi < w[1].lo, "gang slabs must not overlap");
        }
    }

    /// The in-place mutation is caught with a concrete witness pair.
    #[test]
    fn sanitizer_catches_inplace_stencil() {
        let acc = AccessSet::stencil_inplace(64, "u", 0, 2, 8);
        let log = replay_access_set(&acc, 4);
        let conflicts = log.conflicts();
        assert!(!conflicts.is_empty());
        let c = &conflicts[0];
        assert_eq!(c.array, "u");
        assert_ne!(c.write_iter, c.other_iter);
        // The witness element really is produced by both iterations.
        let hits = |iter: u64| {
            acc.reads
                .iter()
                .chain(acc.writes.iter())
                .any(|a| a.at(iter) == c.elem)
        };
        assert!(hits(c.write_iter) && hits(c.other_iter));
    }

    /// Two iterations writing the same element (stride 0) is a WAW
    /// conflict even with no reads at all.
    #[test]
    fn sanitizer_flags_waw() {
        let acc = AccessSet::new(16).write("img", 7, 0);
        let conflicts = replay_access_set(&acc, 3).conflicts();
        assert_eq!(conflicts.len(), 1);
        assert!(conflicts[0].write_write);
        assert_eq!(conflicts[0].elem, 7);
    }

    /// The sanitize flag gates logging: disabled execution records nothing.
    #[test]
    fn sanitize_flag_gates_logging() {
        let log = par_slabs_logged(32, 4, false, |z0, z1, l| {
            for i in z0..z1 {
                l.write("u", i as i64, i as u64);
                l.read("u", i as i64 + 1, i as u64);
            }
        });
        assert!(log.conflicts().is_empty());
        assert!(log.gang_write_intervals().is_empty());
        // Same body with the flag on sees the overlap.
        let log = par_slabs_logged(32, 4, true, |z0, z1, l| {
            for i in z0..z1 {
                l.write("u", i as i64, i as u64);
                l.read("u", i as i64 + 1, i as u64);
            }
        });
        assert!(!log.conflicts().is_empty());
    }

    #[test]
    fn empty_replay_is_clean() {
        let acc = AccessSet::new(0).write("u", 0, 1);
        let log = replay_access_set(&acc, 4);
        assert!(log.clean());
    }

    /// An out-of-place stencil has no carried dependence at all: every
    /// chunk's lanes touch distinct elements, any width.
    #[test]
    fn lanes_clean_on_out_of_place_stencil() {
        let acc = AccessSet::stencil(64, "fields", 10_000, 0, 4, 8);
        for width in [2u32, 4, 8] {
            let r = replay_lanes(&acc, width);
            assert!(r.lane_safe(), "width {width}: {:?}", r.conflicts);
            assert!(r.unit_stride());
        }
    }

    /// A distance-1 recurrence (write u[i], read u[i-1]) collides inside
    /// every chunk at width ≥ 2 but is trivially safe at width 1.
    #[test]
    fn lanes_catch_distance_one_recurrence() {
        let acc = AccessSet::new(64).write("u", 0, 1).read("u", -1, 1);
        assert!(replay_lanes(&acc, 1).lane_safe());
        for width in [2u32, 4, 8] {
            let r = replay_lanes(&acc, width);
            assert!(!r.lane_safe(), "width {width} must conflict");
            let c = &r.conflicts[0];
            assert_eq!(c.other_iter, c.write_iter + 1);
            assert_eq!(c.write_iter / width as u64, c.other_iter / width as u64);
        }
    }

    /// A distance-4 dependence is lane-safe at widths ≤ 4 and illegal at 8:
    /// the dynamic tier resolves the exact legality threshold.
    #[test]
    fn lanes_resolve_distance_threshold() {
        let acc = AccessSet::new(64).write("u", 0, 1).read("u", -4, 1);
        assert!(replay_lanes(&acc, 2).lane_safe());
        assert!(replay_lanes(&acc, 4).lane_safe());
        assert!(!replay_lanes(&acc, 8).lane_safe());
    }

    /// Declared reductions replay lane-private: a stride-0 Sum cell is not
    /// a lane conflict, but the same cell as a plain write is.
    #[test]
    fn lanes_exempt_declared_reductions() {
        use crate::access::ReduceOp;
        let reduced = AccessSet::new(64)
            .read("u", 0, 1)
            .reduce("qc", 0, ReduceOp::Sum);
        assert!(replay_lanes(&reduced, 8).lane_safe());
        let raced = AccessSet::new(64).read("u", 0, 1).write("qc", 0, 0);
        assert!(!replay_lanes(&raced, 8).lane_safe());
    }

    /// Observed lane measurements come from replayed addresses: deltas,
    /// base elements, and alignment residues.
    #[test]
    fn lanes_measure_stride_and_residue() {
        let acc = AccessSet::new(64)
            .write("u", 3, 1)
            .read("u", -8, 1)
            .read("r", 1, 7)
            .read("c", 5, 0);
        let r = replay_lanes(&acc, 8);
        assert_eq!(r.observed.len(), 4);
        let w = &r.observed[0];
        assert!(w.write);
        assert_eq!(w.first_elem, 3);
        assert_eq!(w.lane_delta, Some(1));
        assert_eq!(w.residue, 3);
        assert_eq!(r.observed[1].residue, 0); // -8 mod 8
        assert_eq!(r.observed[2].lane_delta, Some(7));
        assert_eq!(r.observed[3].lane_delta, Some(0));
        assert!(!r.unit_stride()); // the stride-7 stream
        assert_eq!(r.write_residues(), vec![("u".to_string(), 3)]);
    }
}
