//! Cross-crate integration tests for Reverse Time Migration: end-to-end
//! imaging correctness on structures beyond the unit-test flat layer.

use rtm_core::case::OptimizationConfig;
use rtm_core::modeling::Medium2;
use rtm_core::rtm::{depth_profile, laplacian_filter, run_rtm};
use seismic_grid::cfl::stable_dt;
use seismic_grid::Field2;
use seismic_model::builder::{acoustic2_layered, acoustic2_wedge, Layer};
use seismic_model::{extent2, Geometry};
use seismic_pml::CpmlAxis;
use seismic_source::{Acquisition2, Wavelet};

fn two_layer(n: usize, z_if: usize) -> Medium2 {
    let e = extent2(n, n);
    let h = 10.0;
    let dt = stable_dt(8, 2, 3000.0, h, 0.6);
    let layers = [
        Layer {
            z_top: 0,
            vp: 1500.0,
            vs: 0.0,
            rho: 1000.0,
        },
        Layer {
            z_top: z_if,
            vp: 3000.0,
            vs: 0.0,
            rho: 2400.0,
        },
    ];
    let model = acoustic2_layered(e, &layers, Geometry::uniform(h, dt));
    let c = CpmlAxis::new(n, e.halo, 12, dt, 3000.0, h, 1e-4);
    Medium2::Acoustic {
        model,
        cpml: [c.clone(), c],
    }
}

/// A dipping reflector images at the correct depth under each shot point —
/// the wedge scenario of the `rtm_imaging` example, asserted.
#[test]
fn wedge_images_follow_the_dip() {
    let n = 128;
    let (z_left, z_right) = (52, 76);
    let e = extent2(n, n);
    let h = 10.0;
    let dt = stable_dt(8, 2, 3000.0, h, 0.6);
    let model = acoustic2_wedge(e, 1500.0, 3000.0, z_left, z_right, Geometry::uniform(h, dt));
    let c = CpmlAxis::new(n, e.halo, 12, dt, 3000.0, h, 1e-4);
    let medium = Medium2::Acoustic {
        model,
        cpml: [c.clone(), c],
    };
    let cfg = OptimizationConfig::default();
    let w = Wavelet::ricker(18.0);

    let mut stack = Field2::zeros(e);
    for src_x in [n / 4, n / 2, 3 * n / 4] {
        let acq = Acquisition2::surface_line(n, src_x, 6, 6, 2);
        let r = run_rtm(&medium, &acq, &w, &cfg, 1100, 3, 6);
        for (dst, src) in stack.as_mut_slice().iter_mut().zip(r.image.as_slice()) {
            *dst += *src;
        }
    }
    let img = laplacian_filter(&stack, h, h);
    // Below each probe column the image must peak near the local interface
    // depth (interpolated along the dip).
    for ix in [n / 4, n / 2, 3 * n / 4] {
        let expect = z_left as f32 + (ix as f32 / (n - 1) as f32) * (z_right - z_left) as f32;
        let mut best = (0usize, 0.0f32);
        for iz in 30..n - 30 {
            let v = img.get(ix, iz).abs();
            if v > best.1 {
                best = (iz, v);
            }
        }
        assert!(
            (best.0 as f32 - expect).abs() <= 7.0,
            "x = {ix}: peak at z = {}, expected ~{expect}",
            best.0
        );
    }
}

/// Migrating with more shots sharpens the image: the stacked reflector
/// amplitude grows faster than the off-reflector background.
#[test]
fn stacking_improves_signal_to_artifact_ratio() {
    let n = 112;
    let z_if = 56;
    let medium = two_layer(n, z_if);
    let cfg = OptimizationConfig::default();
    let w = Wavelet::ricker(18.0);
    let steps = 950;

    let shot = |src_x: usize| {
        let acq = Acquisition2::surface_line(n, src_x, 6, 6, 2);
        run_rtm(&medium, &acq, &w, &cfg, steps, 3, 6).image
    };
    let one = shot(n / 2);
    let mut stacked = shot(n / 3);
    for (d, s) in stacked.as_mut_slice().iter_mut().zip(one.as_slice()) {
        *d += *s;
    }
    let snr = |raw: &Field2| {
        let img = laplacian_filter(raw, 10.0, 10.0);
        let band = |lo: usize, hi: usize| {
            let mut s = 0.0f64;
            for iz in lo..hi {
                for ix in 25..n - 25 {
                    s += (img.get(ix, iz) as f64).powi(2);
                }
            }
            s / (hi - lo) as f64
        };
        band(z_if - 5, z_if + 5) / band(30, 45).max(1e-30)
    };
    let snr1 = snr(&one);
    let snr2 = snr(&stacked);
    assert!(snr1 > 1.0, "single shot must already image: snr {snr1}");
    assert!(snr2 > snr1, "stacking must not degrade: {snr2} vs {snr1}");
}

/// The imaged reflector depth tracks the true interface as it moves.
#[test]
fn image_depth_tracks_interface() {
    let n = 112;
    let cfg = OptimizationConfig::default();
    let w = Wavelet::ricker(18.0);
    let mut peaks = Vec::new();
    for z_if in [48usize, 64] {
        let medium = two_layer(n, z_if);
        let acq = Acquisition2::surface_line(n, n / 2, 6, 6, 2);
        let r = run_rtm(&medium, &acq, &w, &cfg, 1000, 3, 6);
        let img = laplacian_filter(&r.image, 10.0, 10.0);
        let prof = depth_profile(&img);
        let (z_peak, _) = prof
            .iter()
            .enumerate()
            .skip(25)
            .take(n - 50)
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        assert!(
            (z_peak as isize - z_if as isize).unsigned_abs() <= 6,
            "interface {z_if}: imaged at {z_peak}"
        );
        peaks.push(z_peak);
    }
    assert!(peaks[1] > peaks[0], "deeper interface images deeper");
}

/// RTM through the drivers is bitwise deterministic across gang counts —
/// the imaging loop inherits the propagators' determinism.
#[test]
fn rtm_image_gang_invariant() {
    let n = 80;
    let medium = two_layer(n, 40);
    let acq = Acquisition2::surface_line(n, n / 2, 5, 5, 4);
    let cfg = OptimizationConfig::default();
    let w = Wavelet::ricker(20.0);
    let a = run_rtm(&medium, &acq, &w, &cfg, 300, 4, 2);
    let b = run_rtm(&medium, &acq, &w, &cfg, 300, 4, 5);
    assert_eq!(a.image, b.image);
    assert_eq!(a.seismogram, b.seismogram);
}

/// Elastic RTM through the generic driver: stays finite and concentrates
/// image energy above the basement (smoke-level; elastic imaging quality
/// needs mode separation beyond the paper's scope).
#[test]
fn elastic_rtm_smoke() {
    use seismic_model::builder::{elastic2_layered, Layer};
    let n = 80;
    let e = extent2(n, n);
    let h = 10.0;
    let dt = stable_dt(8, 2, 3000.0, h, 0.45);
    let layers = [
        Layer {
            z_top: 0,
            vp: 1800.0,
            vs: 900.0,
            rho: 1800.0,
        },
        Layer {
            z_top: n / 2,
            vp: 3000.0,
            vs: 1700.0,
            rho: 2400.0,
        },
    ];
    let model = elastic2_layered(e, &layers, Geometry::uniform(h, dt));
    let c = CpmlAxis::new(n, e.halo, 10, dt, 3000.0, h, 1e-4);
    let medium = Medium2::Elastic {
        model,
        cpml: [c.clone(), c],
    };
    let acq = Acquisition2::surface_line(n, n / 2, 6, 6, 4);
    let r = run_rtm(
        &medium,
        &acq,
        &Wavelet::ricker(16.0),
        &OptimizationConfig::default(),
        700,
        4,
        4,
    );
    let m = r.image.max_abs();
    assert!(m.is_finite() && m > 0.0, "image finite: {m}");
    assert!(r.seismogram.rms().is_finite());
    assert!(r.snapshots_saved > 100);
}

/// The source-normalised imaging condition plugs into the same pipeline
/// and still places the reflector correctly.
#[test]
fn normalized_condition_images_reflector() {
    use rtm_core::modeling::run_modeling;
    use rtm_core::rtm::{migrate_shot_with, mute_direct, ImagingCondition};
    let n = 112;
    let z_if = 56;
    let medium = two_layer(n, z_if);
    let acq = Acquisition2::surface_line(n, n / 2, 6, 6, 2);
    let cfg = OptimizationConfig::default();
    let w = Wavelet::ricker(18.0);
    let steps = 950;
    let fwd = run_modeling(&medium, &acq, &w, &cfg, steps, 3, 4);
    let muted = mute_direct(&fwd.seismogram, &acq, 10.0, 1500.0, medium.dt(), 2.4 / 18.0);
    let r = migrate_shot_with(
        &medium,
        &acq,
        &muted,
        &fwd.snapshots,
        &cfg,
        steps,
        3,
        4,
        ImagingCondition::SourceNormalized,
    );
    let img = laplacian_filter(&r.image, 10.0, 10.0);
    let prof = depth_profile(&img);
    let (z_peak, _) = prof
        .iter()
        .enumerate()
        .skip(25)
        .take(n - 50)
        .max_by(|a, b| a.1.total_cmp(b.1))
        .unwrap();
    assert!(
        (z_peak as isize - z_if as isize).unsigned_abs() <= 6,
        "normalised image peak at {z_peak}, reflector at {z_if}"
    );
}
