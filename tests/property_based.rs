//! Property-based tests (proptest) on the core data structures and
//! invariants of the workspace.

use proptest::prelude::*;
use seismic_grid::cfl::{courant_limit, stable_dt};
use seismic_grid::{Extent2, Extent3, Field2, SyncSlice};
use seismic_pml::{CpmlAxis, DampProfile};
use seismic_source::{ricker, Seismogram};

proptest! {
    /// Interior indexing is a bijection into the allocated buffer: distinct
    /// coordinates map to distinct flat indices, all in range.
    #[test]
    fn extent2_indexing_bijective(nx in 1usize..40, nz in 1usize..40, halo in 0usize..6) {
        let e = Extent2::new(nx, nz, halo);
        let mut seen = std::collections::HashSet::new();
        for iz in 0..nz {
            for ix in 0..nx {
                let i = e.idx(ix, iz);
                prop_assert!(i < e.len());
                prop_assert!(seen.insert(i), "duplicate index {i}");
            }
        }
    }

    /// 3D interior indexing stays in range and respects the x-fastest order.
    #[test]
    fn extent3_strides(nx in 2usize..16, ny in 2usize..16, nz in 2usize..16, halo in 0usize..5) {
        let e = Extent3::new(nx, ny, nz, halo);
        prop_assert_eq!(e.idx(0, 0, 0) + 1, e.idx(1, 0, 0));
        prop_assert_eq!(e.idx(0, 0, 0) + e.full_nx(), e.idx(0, 1, 0));
        prop_assert_eq!(
            e.idx(nx - 1, ny - 1, nz - 1),
            e.raw_idx(nx - 1 + halo, ny - 1 + halo, nz - 1 + halo)
        );
        prop_assert!(e.idx(nx - 1, ny - 1, nz - 1) < e.len());
    }

    /// Transposition is an involution and preserves every value.
    #[test]
    fn field2_transpose_involution(nx in 1usize..24, nz in 1usize..24, seed in any::<u32>()) {
        let e = Extent2::new(nx, nz, 3);
        let f = Field2::from_fn(e, |ix, iz| {
            let h = ix.wrapping_mul(31).wrapping_add(iz.wrapping_mul(17)).wrapping_add(seed as usize);
            (h % 1000) as f32 - 500.0
        });
        let t = f.transposed();
        prop_assert_eq!(t.extent().nx, e.nz);
        for iz in 0..e.nz {
            for ix in 0..e.nx {
                prop_assert_eq!(t.get(iz, ix), f.get(ix, iz));
            }
        }
        prop_assert_eq!(t.transposed(), f);
    }

    /// Seismogram byte serialization round-trips arbitrary contents.
    #[test]
    fn seismogram_bytes_roundtrip(
        n_rcv in 1usize..12,
        nt in 1usize..50,
        vals in prop::collection::vec(-1e12f32..1e12, 1..600),
    ) {
        let mut s = Seismogram::zeros(n_rcv, nt);
        for (i, v) in vals.iter().enumerate().take(n_rcv * nt) {
            s.record(i / nt, i % nt, *v);
        }
        let back = Seismogram::from_bytes(s.to_bytes()).unwrap();
        prop_assert_eq!(back, s);
    }

    /// CFL: the stable dt scales linearly in h and inversely in v, and
    /// higher dimensionality is always more restrictive.
    #[test]
    fn cfl_scaling(v in 300.0f32..8000.0, h in 1.0f32..100.0) {
        let d2 = stable_dt(8, 2, v, h, 0.9);
        let d3 = stable_dt(8, 3, v, h, 0.9);
        prop_assert!(d3 < d2);
        let d2b = stable_dt(8, 2, v, 2.0 * h, 0.9);
        prop_assert!((d2b / d2 - 2.0).abs() < 1e-3);
        prop_assert!(courant_limit(8, 2) > 0.0);
    }

    /// C-PML coefficients are bounded for arbitrary valid parameters:
    /// b ∈ (0, 1], 1/κ ∈ (0, 1], a ≤ 0, and the interior is exactly
    /// transparent.
    #[test]
    fn cpml_coefficients_bounded(
        n in 30usize..200,
        width_frac in 0.05f64..0.4,
        dt in 1e-5f32..1e-2,
        vmax in 500.0f32..6000.0,
        h in 2.0f32..50.0,
    ) {
        let width = ((n as f64 * width_frac) as usize).max(1).min(n / 2);
        let ax = CpmlAxis::new(n, 4, width, dt, vmax, h, 1e-4);
        for i in 0..n {
            let (a, b, ik) = ax.coeffs(i);
            prop_assert!(b > 0.0 && b <= 1.0, "b = {b}");
            prop_assert!(ik > 0.0 && ik <= 1.0, "1/k = {ik}");
            prop_assert!(a <= 0.0, "a = {a}");
            if !ax.in_layer(i) {
                prop_assert_eq!(a, 0.0);
                prop_assert_eq!(b, 1.0);
                prop_assert_eq!(ik, 1.0);
            }
        }
    }

    /// Damping-profile windows agree with the global profile for arbitrary
    /// slab splits (the MPI-decomposition invariant).
    #[test]
    fn damp_window_consistency(
        n in 60usize..160,
        cut1 in 0.2f64..0.45,
        cut2 in 0.55f64..0.8,
    ) {
        let g = DampProfile::new(n, 4, 12, 3000.0, 10.0, 1e-4);
        let c1 = (n as f64 * cut1) as usize;
        let c2 = (n as f64 * cut2) as usize;
        for (z0, nz) in [(0, c1), (c1, c2 - c1), (c2, n - c2)] {
            if nz == 0 { continue; }
            let wdw = g.window(z0, nz);
            for i in 0..nz {
                prop_assert_eq!(wdw.sigma(i), g.sigma(z0 + i));
                prop_assert_eq!(wdw.in_layer(i), g.in_layer(z0 + i));
            }
        }
    }

    /// The Ricker wavelet is bounded by 1, even, and integrates to ~0.
    #[test]
    fn ricker_properties(f in 5.0f32..60.0, t in -0.5f32..0.5) {
        let v = ricker(f, t);
        prop_assert!((-0.5..=1.0 + 1e-6).contains(&v));
        prop_assert!((v - ricker(f, -t)).abs() < 1e-5);
    }

    /// Disjoint parallel writes through SyncSlice reconstruct exactly the
    /// sequential result for arbitrary chunkings.
    #[test]
    fn sync_slice_arbitrary_chunking(
        n in 1usize..2000,
        chunks in 1usize..9,
    ) {
        let mut seq = vec![0.0f32; n];
        for (i, v) in seq.iter_mut().enumerate() {
            *v = (i as f32).sin();
        }
        let mut par = vec![0.0f32; n];
        {
            let s = SyncSlice::new(&mut par);
            std::thread::scope(|scope| {
                let per = n.div_ceil(chunks);
                for c in 0..chunks {
                    let lo = (c * per).min(n);
                    let hi = ((c + 1) * per).min(n);
                    scope.spawn(move || {
                        for i in lo..hi {
                            // Safety: ranges are disjoint by construction.
                            unsafe { s.set(i, (i as f32).sin()) };
                        }
                    });
                }
            });
        }
        prop_assert_eq!(par, seq);
    }
}

/// Slab decomposition covers every row exactly once for arbitrary sizes.
#[test]
fn slab_decomp_partition_property() {
    proptest!(|(nz in 8usize..500, ranks in 1usize..8)| {
        prop_assume!(nz >= ranks * 4);
        let d = mpi_sim::SlabDecomp::new(nz, ranks, 4);
        let mut covered = vec![0u8; nz];
        for r in 0..ranks {
            let s = d.slab(r);
            for c in &mut covered[s.z0..s.z1] {
                *c += 1;
            }
            prop_assert_eq!(d.owner(s.z0), r);
        }
        prop_assert!(covered.iter().all(|&c| c == 1));
    });
}

proptest! {
    /// Any CFL-safe random layered model propagates without NaN/Inf for a
    /// short run (robustness of the acoustic kernels to arbitrary
    /// admissible media).
    #[test]
    fn random_layered_models_stay_finite(
        v1 in 1450.0f32..2500.0,
        v2 in 1450.0f32..4500.0,
        v3 in 1450.0f32..4500.0,
        r1 in 1000.0f32..2600.0,
        r2 in 1000.0f32..2600.0,
        src_x in 10usize..50,
    ) {
        use rtm_core::case::OptimizationConfig;
        use rtm_core::modeling::{run_modeling, Medium2};
        use seismic_model::builder::{acoustic2_layered, Layer};
        use seismic_model::{extent2, Geometry};
        use seismic_source::{Acquisition2, Wavelet};

        let n = 60;
        let e = extent2(n, n);
        let h = 10.0;
        let vmax = v1.max(v2).max(v3);
        let dt = stable_dt(8, 2, vmax, h, 0.5);
        let layers = [
            Layer { z_top: 0, vp: v1, vs: 0.0, rho: r1 },
            Layer { z_top: 20, vp: v2, vs: 0.0, rho: r2 },
            Layer { z_top: 40, vp: v3, vs: 0.0, rho: 2200.0 },
        ];
        let model = acoustic2_layered(e, &layers, Geometry::uniform(h, dt));
        let c = CpmlAxis::new(n, e.halo, 10, dt, vmax, h, 1e-4);
        let medium = Medium2::Acoustic { model, cpml: [c.clone(), c] };
        let acq = Acquisition2::surface_line(n, src_x, 5, 4, 10);
        let r = run_modeling(
            &medium,
            &acq,
            &Wavelet::ricker(20.0),
            &OptimizationConfig::default(),
            60,
            30,
            2,
        );
        let m = r.snapshots.last().unwrap().max_abs();
        prop_assert!(m.is_finite(), "max = {m}");
        prop_assert!(r.seismogram.rms().is_finite());
    }

    /// Checkpoint schedules partition sanely for arbitrary sizes: sorted,
    /// unique, starting at 0, within range, and never more than slots.
    #[test]
    fn checkpoint_plan_properties(steps in 1usize..5000, slots in 1usize..64) {
        let cps = rtm_core::checkpoint::plan_checkpoints(steps, slots).unwrap();
        prop_assert!(!cps.is_empty());
        prop_assert_eq!(cps[0], 0);
        prop_assert!(cps.len() <= slots);
        prop_assert!(cps.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(cps.iter().all(|&c| c < steps));
        // Peak memory bound is positive and no worse than dense storage+slots.
        let peak = rtm_core::checkpoint::peak_states(steps, slots, 4).unwrap();
        prop_assert!(peak >= 1);
        prop_assert!(peak <= slots + steps.div_ceil(4) + 1);
    }

    /// The FD dispersion curve is monotone: more points per wavelength
    /// never increases the phase-velocity error.
    #[test]
    fn dispersion_error_monotone(order_idx in 0usize..4, ppw in 3.0f64..40.0) {
        let order = [2usize, 4, 6, 8][order_idx];
        let e1 = (1.0 - seismic_grid::dispersion::phase_velocity_ratio(order, ppw)).abs();
        let e2 = (1.0 - seismic_grid::dispersion::phase_velocity_ratio(order, ppw * 1.5)).abs();
        prop_assert!(e2 <= e1 + 1e-12, "order {order} ppw {ppw}: {e2} vs {e1}");
    }

    /// Muting is idempotent and only ever zeroes samples.
    #[test]
    fn mute_is_idempotent_projection(
        nt in 30usize..200,
        taper_ms in 1.0f32..80.0,
    ) {
        use rtm_core::rtm::mute_direct;
        use seismic_source::{Acquisition2, Seismogram};
        let acq = Acquisition2::surface_line(40, 20, 3, 3, 5);
        let mut s = Seismogram::zeros(acq.n_receivers(), nt);
        for r in 0..acq.n_receivers() {
            for t in 0..nt {
                s.record(r, t, ((r + 1) * (t + 1)) as f32 % 7.0 - 3.0);
            }
        }
        let dt = 1e-3;
        let m1 = mute_direct(&s, &acq, 10.0, 1500.0, dt, taper_ms * 1e-3);
        let m2 = mute_direct(&m1, &acq, 10.0, 1500.0, dt, taper_ms * 1e-3);
        // Projection up to the (deterministic) ramp weights: applying the
        // ramp twice squares it, so only compare the fully-kept region and
        // the zeroed region.
        for r in 0..s.n_receivers() {
            for t in 0..nt {
                if m1.get(r, t) == 0.0 {
                    prop_assert_eq!(m2.get(r, t), 0.0);
                } else if m1.get(r, t) == s.get(r, t) {
                    // Fully kept sample stays fully kept.
                    prop_assert_eq!(m2.get(r, t), m1.get(r, t));
                }
                prop_assert!(m1.get(r, t).abs() <= s.get(r, t).abs() + 1e-6);
            }
        }
    }
}

proptest! {
    /// A fault plan is a pure function of its seed: the event schedule and
    /// every per-operation query answer identically across regenerations,
    /// and a different seed (almost always) changes the schedule.
    #[test]
    fn fault_plans_are_reproducible_from_seed(
        seed in 0u64..10_000,
        devices in 1usize..6,
        horizon in 50.0f64..500.0,
    ) {
        use accel_sim::fault::{FaultPlan, FaultRates};
        let rates = FaultRates::harsh(horizon / 3.0);
        let a = FaultPlan::generate(seed, devices, horizon, rates);
        let b = FaultPlan::generate(seed, devices, horizon, rates);
        prop_assert_eq!(a.events(), b.events());
        for d in 0..devices {
            prop_assert_eq!(a.device_lost_at(d), b.device_lost_at(d));
            for q in 0..32u64 {
                prop_assert_eq!(a.transfer_fails(d, q), b.transfer_fails(d, q));
                prop_assert_eq!(a.alloc_fails(d, q), b.alloc_fails(d, q));
                let t = horizon * (q as f64 / 32.0);
                prop_assert!(a.slowdown(d, t) == b.slowdown(d, t));
            }
        }
        // Events are time-sorted and inside the horizon.
        prop_assert!(a.events().windows(2).all(|w| w[0].t_s <= w[1].t_s));
        prop_assert!(a.events().iter().all(|e| e.t_s >= 0.0 && e.t_s < horizon));
    }

    /// Backoff delays are deterministic, strictly positive, bounded by the
    /// cap, and monotone non-decreasing in the attempt number.
    #[test]
    fn backoff_is_monotone_and_bounded(
        seed in any::<u64>(),
        base_ms in 1.0f64..2000.0,
        cap_s in 1.0f64..600.0,
    ) {
        use rtm_core::resilient::RetryPolicy;
        let p = RetryPolicy {
            max_retries: 16,
            base_delay_s: base_ms * 1e-3,
            max_delay_s: cap_s,
        };
        let mut prev = 0.0f64;
        for attempt in 0..20u32 {
            let d = p.backoff_delay(seed, attempt);
            prop_assert_eq!(d, p.backoff_delay(seed, attempt));
            prop_assert!(d > 0.0);
            prop_assert!(d <= p.max_delay_s + 1e-12, "attempt {attempt}: {d}");
            prop_assert!(d >= prev, "attempt {attempt}: {d} < {prev}");
            prev = d;
        }
    }

    /// Any seeded in-place mutation of any case's directive program — the
    /// classic false-`independent` bug — is flagged statically as a race at
    /// the mutated op, and Tier 2's shadow-memory replay on a small grid
    /// witnesses the same conflict, so the two tiers agree.
    #[test]
    fn seeded_inplace_mutation_caught_by_both_tiers(
        case_idx in 0usize..6,
        rtm in any::<bool>(),
        pick in any::<u64>(),
        gangs in 2usize..8,
    ) {
        use acc_verify::{sanitize, Op, Rule, VerifyContext};
        use openacc_sim::{Compiler, PgiVersion};
        use rtm_core::case::{Cluster, OptimizationConfig, SeismicCase};
        use rtm_core::gpu_time::test_workload;
        use rtm_core::verify::{break_kernel_inplace, breakable_launches, case_programs};

        let case = SeismicCase::all()[case_idx];
        let w = test_workload(case.dims);
        let compiler = Compiler::Pgi(PgiVersion::V14_6);
        let programs = case_programs(&case, &OptimizationConfig::default(), compiler, &w);
        let mut prog = programs.into_iter().nth(usize::from(rtm)).unwrap();

        let eligible = breakable_launches(&prog);
        prop_assert!(eligible > 0, "{}: no breakable launch", prog.name);
        let nth = (pick % eligible as u64) as usize;
        let mutated = break_kernel_inplace(&mut prog, nth);
        prop_assert!(mutated.is_some());
        let mutated = mutated.unwrap();

        // Tier 1: the static dependence test pins the race on the mutated op.
        let ctx = VerifyContext {
            compiler,
            device: Cluster::CrayXc30.device(),
        };
        let diags = acc_verify::verify_program(&prog, &ctx);
        prop_assert!(
            diags
                .iter()
                .any(|d| d.rule == Rule::IndependentRace && d.span.op == mutated),
            "{}: no race at op {mutated}: {diags:?}",
            prog.name
        );

        // Tier 2: the threaded replay confirms it, for any gang count.
        let Op::Launch(l) = &prog.ops[mutated] else {
            return Err("mutated op is not a launch".into());
        };
        let cc = sanitize::crosscheck(l);
        prop_assert!(cc.static_race, "{}: static tier missed the race", l.name);
        prop_assert!(cc.dynamic.is_race(), "{}: replay missed the race", l.name);
        prop_assert!(cc.agree());
        let scaled = sanitize::scaled(&l.access, sanitize::SANITIZE_TRIP);
        prop_assert!(
            sanitize::replay_verdict(&scaled, gangs).is_race(),
            "{}: replay with {gangs} gangs missed the race",
            l.name
        );
    }

    /// The twelve paper programs verify clean under the best configuration
    /// no matter the seed, and Tier 2 agrees: a seed-chosen launch of a
    /// seed-chosen program replays conflict-free at any gang count.
    #[test]
    fn clean_verdicts_stable_across_seeds(
        report_pick in any::<u64>(),
        launch_pick in any::<u64>(),
        gangs in 2usize..8,
    ) {
        use acc_verify::{sanitize, Severity};
        use repro::verify::verify_all_cases;
        use rtm_core::case::{OptimizationConfig, SeismicCase};
        use rtm_core::verify::case_programs;

        let reports = verify_all_cases(&OptimizationConfig::default());
        prop_assert_eq!(reports.len(), 12);
        for r in &reports {
            prop_assert_eq!(r.count(Severity::Error), 0, "{}", r.program);
            prop_assert_eq!(r.count(Severity::Warning), 0, "{}", r.program);
            prop_assert!(!r.fails(true), "{}", r.program);
        }

        // Replay one arbitrary launch of one arbitrary program: clean
        // programs stay conflict-free under the dynamic tier too.
        let case = SeismicCase::all()[(report_pick % 6) as usize];
        let w = repro::cases::table_workload(&case);
        let programs = case_programs(
            &case,
            &OptimizationConfig::default(),
            repro::verify::table_context().compiler,
            &w,
        );
        let prog = &programs[(report_pick % 2) as usize];
        let launches: Vec<_> = prog.launches().collect();
        prop_assert!(!launches.is_empty());
        let (_, l) = launches[(launch_pick % launches.len() as u64) as usize];
        let scaled = sanitize::scaled(&l.access, sanitize::SANITIZE_TRIP);
        let verdict = sanitize::replay_verdict(&scaled, gangs);
        prop_assert!(
            !verdict.is_race(),
            "{} / {}: spurious dynamic race with {gangs} gangs",
            prog.name,
            l.name
        );
    }

    /// Resilient scheduling places every shot exactly once whenever at
    /// least one rank survives, no matter which ranks the plan kills; with
    /// every rank dead it fails with the typed error instead of looping.
    #[test]
    fn resilient_schedule_covers_every_shot_exactly_once(
        seed in 0u64..5_000,
        n_shots in 1usize..40,
        ranks in 1usize..6,
        mtti in 5.0f64..400.0,
    ) {
        use accel_sim::fault::{FaultPlan, FaultRates};
        use rtm_core::resilient::{plan_survey, RetryPolicy};
        use rtm_core::RtmError;
        let rates = FaultRates {
            device_lost_mtti_s: mtti,
            transient_oom_prob: 0.05,
            ..FaultRates::none()
        };
        let plan = FaultPlan::generate(seed, ranks, 600.0, rates);
        match plan_survey(n_shots, ranks, 9.0, &plan, &RetryPolicy::default()) {
            Ok(s) => {
                prop_assert_eq!(s.placement.len(), n_shots);
                prop_assert!(s.placement.iter().all(|&r| r < ranks));
                prop_assert!(!s.survivors.is_empty());
                // Rescheduled shots were counted, never duplicated: the
                // placement vector *is* the exactly-once witness (one slot
                // per shot, every slot filled).
                prop_assert!(s.stats.rescheduled_shots <= n_shots + s.stats.retries as usize);
            }
            Err(e) => prop_assert_eq!(e, RtmError::NoHealthyRanks),
        }
    }
}
