//! Property tests of the vectorization-legality verifier.
//!
//! Two families of properties over randomized workloads:
//!
//! * **Verdict stability** — the legality verdict, stride class, and tier
//!   agreement of every kernel are intrinsic to the directive program, not
//!   to the grid it happens to run on: re-certifying any of the twelve
//!   cases at a random workload must reproduce the reference verdicts
//!   kernel for kernel, keep at least one loop certified legal, and keep
//!   both tiers in agreement.
//! * **Mutation catching** — each legality-breaking mutation class
//!   (distance-1 carried dependence, misaligned store base, reduction
//!   rewritten into a running recurrence), seeded into a *random* eligible
//!   launch of a *random* case, must flip the verdict in both the static
//!   certificate and the dynamic lane replay.

use acc_verify::vectorize::{certify_launch, certify_program, lane_crosscheck};
use acc_verify::{LaneCrossCheck, Op, VerifyContext};
use openacc_sim::{Compiler, PgiVersion};
use proptest::prelude::*;
use rtm_core::case::{Cluster, OptimizationConfig, SeismicCase, Workload};
use rtm_core::verify::{
    break_reduction_recurrence, break_vector_distance1, case_programs, misalign_base,
    reduction_launches, vector_breakable_launches,
};

const PGI: Compiler = Compiler::Pgi(PgiVersion::V14_6);

fn ctx() -> VerifyContext {
    VerifyContext {
        compiler: PGI,
        device: Cluster::CrayXc30.device(),
    }
}

/// A randomized-but-valid workload: grids big enough that every innermost
/// trip count covers the widest probe width, small enough to stay instant.
fn workload(nx: usize, nz: usize, steps: usize, n_receivers: usize) -> Workload {
    Workload {
        nx,
        ny: 1,
        nz,
        steps,
        snap_period: steps.div_ceil(2).max(1),
        n_receivers,
    }
}

/// The per-kernel verdict fingerprint stability compares across workloads.
fn fingerprint(
    prog_certs: &[acc_verify::VectorCertificate],
) -> Vec<(String, &'static str, &'static str)> {
    let mut fp: Vec<_> = prog_certs
        .iter()
        .map(|c| (c.kernel.clone(), c.legality.label(), c.stride_class.label()))
        .collect();
    fp.sort();
    fp.dedup();
    fp
}

fn lane_safe(cc: &LaneCrossCheck) -> bool {
    cc.per_width.iter().all(|w| w.dynamic_safe)
}

proptest! {
    /// Certificates are workload-invariant: for a random case and a random
    /// grid, the (kernel, legality, stride) fingerprint matches the one at
    /// the reference grid; every program keeps at least one certified-legal
    /// loop and the tiers keep agreeing.
    #[test]
    fn verdicts_stable_across_seeds(
        case_idx in 0usize..6,
        nx in 64usize..512,
        nz in 64usize..512,
        steps in 2usize..8,
        n_receivers in 1usize..6,
    ) {
        let case = SeismicCase::all()[case_idx];
        let cfg = OptimizationConfig::default();
        let reference = workload(128, 128, 4, 2);
        let random = workload(nx, nz, steps, n_receivers);
        let ref_progs = case_programs(&case, &cfg, PGI, &reference);
        let rnd_progs = case_programs(&case, &cfg, PGI, &random);
        for (rp, np) in ref_progs.iter().zip(rnd_progs.iter()) {
            let ref_certs = certify_program(rp, &ctx());
            let rnd_certs = certify_program(np, &ctx());
            prop_assert_eq!(
                fingerprint(&ref_certs),
                fingerprint(&rnd_certs),
                "{}: verdicts moved with the workload",
                np.name
            );
            prop_assert!(
                rnd_certs.iter().any(|c| c.certified_legal()),
                "{}: no certified loop at nx={nx} nz={nz}",
                np.name
            );
            for (i, l) in np.launches() {
                let cc = lane_crosscheck(l);
                prop_assert!(cc.agree(), "{} op {i}: tiers disagree: {cc:?}", np.name);
            }
        }
    }

    /// A distance-1 carried dependence seeded into any eligible launch of
    /// any case flips both tiers: the certificate goes `Illegal` at scalar
    /// width with the distance witnessed, and the lane replay observes
    /// intra-chunk conflicts at every probed width.
    #[test]
    fn distance1_caught_everywhere(
        case_idx in 0usize..6,
        prog_idx in 0usize..2,
        pick in any::<u32>(),
        nx in 64usize..256,
    ) {
        let case = SeismicCase::all()[case_idx];
        let cfg = OptimizationConfig::default();
        let w = workload(nx, 96, 3, 2);
        let clean = case_programs(&case, &cfg, PGI, &w).swap_remove(prog_idx);
        let mut broken = case_programs(&case, &cfg, PGI, &w).swap_remove(prog_idx);
        let eligible = vector_breakable_launches(&clean);
        prop_assert!(eligible > 0, "{}: no eligible launch", clean.name);
        let nth = pick as usize % eligible;
        let op = break_vector_distance1(&mut broken, nth).expect("counted eligible");
        let (Op::Launch(before), Op::Launch(after)) = (&clean.ops[op], &broken.ops[op])
        else { panic!("mutated op must be a launch") };
        let c1 = certify_launch(op, after, &ctx());
        prop_assert!(!c1.legality.is_legal(), "{}: {c1:?}", broken.name);
        prop_assert_eq!(c1.width, 1);
        prop_assert_eq!(c1.min_distance, Some(1));
        prop_assert!(lane_safe(&lane_crosscheck(before)));
        let l1 = lane_crosscheck(after);
        prop_assert!(l1.per_width.iter().all(|wc| !wc.dynamic_safe), "{l1:?}");
        prop_assert!(l1.agree(), "tiers must agree on the broken loop: {l1:?}");
    }

    /// A one-element base shift seeded into any eligible launch flips the
    /// alignment residue from 0 to 1 in the certificate while the replayed
    /// lane-0 addresses keep agreeing — alignment is observable, not
    /// legality-breaking.
    #[test]
    fn misalignment_caught_everywhere(
        case_idx in 0usize..6,
        prog_idx in 0usize..2,
        pick in any::<u32>(),
    ) {
        let case = SeismicCase::all()[case_idx];
        let cfg = OptimizationConfig::default();
        let w = workload(96, 96, 3, 2);
        let clean = case_programs(&case, &cfg, PGI, &w).swap_remove(prog_idx);
        let mut broken = case_programs(&case, &cfg, PGI, &w).swap_remove(prog_idx);
        let eligible = vector_breakable_launches(&clean);
        prop_assert!(eligible > 0);
        let nth = pick as usize % eligible;
        let op = misalign_base(&mut broken, nth).expect("counted eligible");
        let (Op::Launch(before), Op::Launch(after)) = (&clean.ops[op], &broken.ops[op])
        else { panic!("mutated op must be a launch") };
        let c0 = certify_launch(op, before, &ctx());
        let c1 = certify_launch(op, after, &ctx());
        prop_assert_eq!(c0.align_residue, 0, "bases start aligned");
        prop_assert_eq!(c1.align_residue, 1, "shift must be visible");
        prop_assert_eq!(c0.legality.is_legal(), c1.legality.is_legal());
        let l1 = lane_crosscheck(after);
        prop_assert!(l1.residue_agrees, "replay must see the same residue: {l1:?}");
    }

    /// Rewriting any declared reduction into a running recurrence flips
    /// both tiers from the ULP-bounded verdict to an illegal distance-1
    /// dependence.
    #[test]
    fn reduction_recurrence_caught_everywhere(
        case_idx in 0usize..6,
        prog_idx in 0usize..2,
        pick in any::<u32>(),
    ) {
        let case = SeismicCase::all()[case_idx];
        let cfg = OptimizationConfig::default();
        let w = workload(96, 96, 3, 2);
        let clean = case_programs(&case, &cfg, PGI, &w).swap_remove(prog_idx);
        let mut broken = case_programs(&case, &cfg, PGI, &w).swap_remove(prog_idx);
        let eligible = reduction_launches(&clean);
        prop_assert!(eligible > 0, "{}: QC kernels guarantee reductions", clean.name);
        let nth = pick as usize % eligible;
        let op = break_reduction_recurrence(&mut broken, nth).expect("counted eligible");
        let (Op::Launch(before), Op::Launch(after)) = (&clean.ops[op], &broken.ops[op])
        else { panic!("mutated op must be a launch") };
        let c0 = certify_launch(op, before, &ctx());
        let c1 = certify_launch(op, after, &ctx());
        prop_assert!(c0.ulp_bound > 0, "clean verdict is ULP-bounded: {c0:?}");
        prop_assert!(!c1.legality.is_legal(), "{c1:?}");
        prop_assert_eq!(c1.min_distance, Some(1));
        prop_assert!(lane_safe(&lane_crosscheck(before)));
        prop_assert!(!lane_safe(&lane_crosscheck(after)));
    }
}
