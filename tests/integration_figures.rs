//! Integration tests over the figure reproductions: cross-figure
//! consistency properties that the per-figure unit tests don't cover.

use openacc_sim::PgiVersion;
use repro::figures;

/// Figures 6 and 7 describe the *same* code under two compiler versions:
/// the best variant under 14.3 must not beat the best under 14.6 by much
/// (the paper's tables use the best configuration per compiler), and the
/// original kernel must be the variant where the versions differ most.
#[test]
fn fig6_vs_fig7_version_consistency() {
    let f6 = figures::fig6_7(PgiVersion::V14_6);
    let f7 = figures::fig6_7(PgiVersion::V14_3);
    let best6 = f6.iter().map(|s| s.1).fold(f64::INFINITY, f64::min);
    let best7 = f7.iter().map(|s| s.1).fold(f64::INFINITY, f64::min);
    assert!(
        (best7 / best6) < 1.25,
        "restructuring recovers most of the 14.3 regression: {best7} vs {best6}"
    );
    // Per-variant regression of 14.3 relative to 14.6.
    let reg: Vec<f64> = f7.iter().zip(f6.iter()).map(|(a, b)| a.1 / b.1).collect();
    assert!(
        reg[0] > reg[1] && reg[0] > reg[2],
        "the branchy original suffers most under CUDA 5.0: {reg:?}"
    );
}

/// Figure 8 vs 9: the kernels-vs-parallel gap exists in both 2D and 3D,
/// and 3D (where the compiler must also pick the vector loop out of three)
/// is at least as penalised as 2D.
#[test]
fn fig8_vs_fig9_gap_grows_with_dims() {
    use seismic_model::footprint::Dims;
    let avg = |series: Vec<(usize, f64, f64)>| {
        let r: f64 = series.iter().map(|(_, k, p)| k / p).sum::<f64>() / series.len() as f64;
        r
    };
    let r2 = avg(figures::fig8_9(Dims::Two));
    let r3 = avg(figures::fig8_9(Dims::Three));
    assert!(r2 > 1.1 && r3 > 1.1, "gap exists: 2D {r2}, 3D {r3}");
    assert!(r3 >= r2 * 0.95, "3D at least comparable: {r3} vs {r2}");
}

/// Figure 10's register sweep and Figure 12's fission result are two views
/// of the same register-pressure model: the 16-register cap must hurt the
/// K40 at least as much as fusing hurts the M2090 is explained by spills.
#[test]
fn fig10_and_fig12_are_consistent() {
    let f10 = figures::fig10();
    let t16 = f10[0].1;
    let t64 = f10[2].1;
    let spill_penalty = t16 / t64;
    assert!(
        spill_penalty > 2.0,
        "16-reg spills are severe: {spill_penalty}"
    );
    let ((f_fused, f_fiss), _) = figures::fig12();
    let fermi_fission_gain = f_fused / f_fiss;
    // Both numbers come from spill traffic; both must land in the 2-6x band.
    assert!((2.0..6.0).contains(&fermi_fission_gain));
    assert!((2.0..8.0).contains(&spill_penalty));
}

/// The figure-11 async gain must also show up as the best-config default:
/// the table pipeline runs elastic with async on, and turning it off can
/// only slow the elastic 2D case down.
#[test]
fn fig11_gain_consistent_with_config_default() {
    let (sync_s, async_s, _) = figures::fig11();
    assert!(async_s < sync_s);
    let cfg = rtm_core::case::OptimizationConfig::default();
    assert!(cfg.async_streams, "best config keeps async on");
}

/// Figure 13's win comes from coalescing, not from arithmetic changes: the
/// transposed pipeline executes *more* kernels yet finishes faster.
#[test]
fn fig13_wins_despite_extra_kernels() {
    use seismic_prop::TransposeVariant;
    let direct = seismic_prop::desc::acoustic2d(TransposeVariant::Direct);
    let transposed = seismic_prop::desc::acoustic2d(TransposeVariant::Transposed);
    assert!(transposed.len() > direct.len());
    let ((f_dir, f_tr), (k_dir, k_tr)) = figures::fig13();
    assert!(f_tr < f_dir && k_tr < k_dir);
}

/// Figures 14/15 profiler renderings carry the layout of the paper's
/// screenshots: memcpy rows, compute section, percentage-tagged kernels.
#[test]
fn fig14_15_profiler_layout() {
    let (cpu_prof, _, gpu_prof, _) = figures::fig14_15();
    for prof in [&cpu_prof, &gpu_prof] {
        assert!(prof.contains("MemCpy (HtoD)"));
        assert!(prof.contains("MemCpy (DtoH)"));
        assert!(prof.contains("Compute"));
        assert!(prof.contains('%'));
    }
    // The GPU-imaging run adds the imaging kernel; the CPU-imaging run
    // instead pays extra DtoH traffic. Both list the injection kernels.
    assert!(gpu_prof.contains("imaging_condition"));
    assert!(cpu_prof.contains("source_injection"));
}
