//! Service-level acceptance: deterministic overload at 2× fleet capacity
//! and drain/resume bitwise image identity on a real survey.

use acc_serve::{
    JobCost, JobOutcome, JobSpec, Payload, QueueSnapshot, Rejected, RtmJob, Scenario, Server,
    ServerConfig, Submission, Tenant,
};
use accel_sim::fault::{FaultPlan, FaultRates, FleetFaultPlan};
use rtm_core::case::OptimizationConfig;
use rtm_core::modeling::Medium2;
use seismic_grid::cfl::stable_dt;
use seismic_model::builder::{acoustic2_layered, Layer};
use seismic_model::{extent2, Geometry};
use seismic_pml::CpmlAxis;
use seismic_source::{Acquisition2, Wavelet};
use std::sync::Arc;

fn clean_fleet(n: usize) -> FleetFaultPlan {
    FleetFaultPlan::single(FaultPlan::generate(0, n, 1e7, FaultRates::none()))
}

/// A 2× overload burst with an unambiguous shed class: priority-0 filler
/// floods the queue, while the priority-2 paying tenant offers less than
/// its weighted fair share — its backlog stays below the low watermark,
/// so the shedder's pressure always lands on filler.
fn overload_scenario() -> Scenario {
    let tenants = vec![Tenant::new("filler", 1), Tenant::new("paying", 3)];
    let shot_cost = 2.0;
    let mut jobs = Vec::new();
    // 2 devices × 40 s horizon = 160 gp·s capacity; offer 320 gp·s.
    // Filler: 32 × 4-shot jobs = 256 gp·s at priority 0.
    for i in 0..32 {
        jobs.push(Submission {
            arrival_s: (i as f64 * 1.21) % 40.0,
            spec: JobSpec::synthetic(0, 0, 4, shot_cost),
        });
    }
    // Paying: 8 × 4-shot jobs = 64 gp·s at priority 2, with deadlines.
    for i in 0..8 {
        let arrival = i as f64 * 5.0;
        jobs.push(Submission {
            arrival_s: arrival,
            spec: JobSpec::synthetic(1, 2, 4, shot_cost).with_deadline(arrival + 30.0),
        });
    }
    Scenario { tenants, jobs }
}

fn overload_server() -> Server {
    Server::new(
        ServerConfig {
            n_devices: 2,
            queue_capacity_cost_s: 40.0,
            tenant_quota_cost_s: 1e6,
            ..ServerConfig::default()
        },
        clean_fleet(2),
    )
}

/// At 2× capacity the server degrades, never collapses: brown-out sheds
/// hit only the lowest-priority class, every admitted deadline job either
/// beats its deadline or gets a typed cancellation, and every submission
/// ends in a typed terminal outcome.
#[test]
fn overload_at_2x_degrades_gracefully() {
    let scenario = overload_scenario();
    let report = overload_server().run(&scenario, None).unwrap();

    let mut completed = 0usize;
    let mut shed = 0usize;
    for (i, o) in report.outcomes.iter().enumerate() {
        let spec = &scenario.jobs[i].spec;
        match o {
            JobOutcome::Completed { finish_s, .. } => {
                completed += 1;
                if let Some(d) = spec.deadline_s {
                    assert!(
                        *finish_s <= d,
                        "job {i} completed at {finish_s} past deadline {d}"
                    );
                }
            }
            JobOutcome::Shed { .. } => {
                shed += 1;
                assert_eq!(
                    spec.priority, 0,
                    "job {i} shed at priority {} — only the lowest class may shed",
                    spec.priority
                );
            }
            JobOutcome::Rejected(r) => {
                assert!(
                    !matches!(r, Rejected::Draining),
                    "job {i} rejected as draining in a non-drain run"
                );
            }
            JobOutcome::CancelledDeadline { at_s } => {
                let d = spec.deadline_s.expect("only deadline jobs are cancelled");
                assert!(*at_s <= d + 1e-9, "job {i} cancelled after its deadline");
            }
            JobOutcome::Drained | JobOutcome::Failed { .. } => {
                panic!("job {i}: untyped terminal outcome {o:?}")
            }
        }
    }
    assert!(completed > 0, "overload must not starve everyone");
    assert!(shed > 0, "2x load against a tight queue must shed");
    assert!(
        report.outcomes.len() == scenario.jobs.len(),
        "every submission gets a terminal outcome"
    );
}

/// The whole overload report — outcomes, metrics, per-tenant ledger — is
/// a pure function of (config, scenario, fleet plan).
#[test]
fn overload_report_is_deterministic() {
    let scenario = overload_scenario();
    let a = overload_server().run(&scenario, None).unwrap();
    let b = overload_server().run(&scenario, None).unwrap();
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.makespan_s, b.makespan_s);
    assert_eq!(a.served_cost_by_tenant, b.served_cost_by_tenant);
    assert_eq!(a.breaker_log, b.breaker_log);
}

fn medium(n: usize) -> Medium2 {
    let e = extent2(n, n);
    let h = 10.0;
    let dt = stable_dt(8, 2, 3000.0, h, 0.6);
    let layers = [
        Layer {
            z_top: 0,
            vp: 1500.0,
            vs: 0.0,
            rho: 1000.0,
        },
        Layer {
            z_top: n / 2,
            vp: 3000.0,
            vs: 0.0,
            rho: 2400.0,
        },
    ];
    let model = acoustic2_layered(e, &layers, Geometry::uniform(h, dt));
    let c = CpmlAxis::new(n, e.halo, 10, dt, 3000.0, h, 1e-4);
    Medium2::Acoustic {
        model,
        cpml: [c.clone(), c],
    }
}

fn survey_scenario(n: usize, n_shots: usize) -> Scenario {
    let job = RtmJob {
        medium: medium(n),
        shots: (0..n_shots)
            .map(|s| Acquisition2::surface_line(n, n / (n_shots + 1) * (s + 1), 5, 5, 3))
            .collect(),
        wavelet: Wavelet::ricker(20.0),
        config: OptimizationConfig::default(),
        steps: 120,
        snap_period: 4,
        gangs: 2,
    };
    Scenario {
        tenants: vec![Tenant::new("survey", 1)],
        jobs: vec![Submission {
            arrival_s: 0.0,
            spec: JobSpec {
                tenant: 0,
                priority: 1,
                deadline_s: None,
                n_shots,
                cost: JobCost::FixedShotCost(2.0),
                payload: Payload::Rtm2(Arc::new(job)),
            },
        }],
    }
}

/// Graceful drain mid-survey, snapshot through JSON (as a restart would),
/// resume: the stacked image is bitwise identical to an uninterrupted
/// run's.
#[test]
fn drain_resume_stacked_image_is_bitwise_identical() {
    let scenario = survey_scenario(48, 4);
    let server = Server::new(
        ServerConfig {
            n_devices: 1,
            queue_capacity_cost_s: 1e6,
            tenant_quota_cost_s: 1e6,
            ..ServerConfig::default()
        },
        clean_fleet(1),
    );

    // Uninterrupted reference.
    let full = server.run(&scenario, None).unwrap();
    assert!(full.outcomes[0].is_completed(), "{:?}", full.outcomes[0]);
    let reference = full.images[0]
        .as_ref()
        .expect("real payload stacks an image");

    // Drain after ~half the shots (shot cost 2.0 × 4 shots on 1 device).
    let (partial, snap) = server.run_with_drain(&scenario, 5.0, None).unwrap();
    assert!(matches!(partial.outcomes[0], JobOutcome::Drained));
    let snap = snap.expect("drain mid-survey leaves work");
    assert!(
        !snap.jobs[0].completed.is_empty() && !snap.jobs[0].remaining.is_empty(),
        "drain must catch the survey part-done: {snap:?}"
    );

    // Restart-shaped round trip.
    let text = serde_json::to_string(&snap.to_json());
    let snap = QueueSnapshot::from_json(&serde_json::from_str(&text).unwrap()).unwrap();

    let resumed = server.resume(&snap, &scenario, None).unwrap();
    assert!(
        resumed.outcomes[0].is_completed(),
        "{:?}",
        resumed.outcomes[0]
    );
    let image = resumed.images[0]
        .as_ref()
        .expect("resumed job stacks an image");
    assert_eq!(
        image.as_slice(),
        reference.as_slice(),
        "stacked image must be bitwise identical across drain/resume"
    );
}
