//! Cross-crate integration tests for forward seismic modeling: real
//! propagation through drivers, MPI decomposition, and the device-time
//! bookkeeping, exercised together.

use rtm_core::case::OptimizationConfig;
use rtm_core::modeling::{run_modeling, Medium2};
use rtm_core::mpi_run::modeling_iso2_mpi;
use seismic_grid::cfl::stable_dt;
use seismic_model::builder::{acoustic2_layered, elastic2_layered, iso2_layered, standard_layers};
use seismic_model::{extent2, Geometry};
use seismic_pml::{CpmlAxis, DampProfile};
use seismic_prop::iso2d::Iso2State;
use seismic_prop::IsoPmlVariant;
use seismic_source::{Acquisition2, Wavelet};

fn media(n: usize) -> Vec<(&'static str, Medium2)> {
    let e = extent2(n, n);
    let h = 10.0;
    let vmax = 3200.0;
    let geom = |safety| Geometry::uniform(h, stable_dt(8, 2, vmax, h, safety));
    let layers = standard_layers(n);
    let damp = DampProfile::new(n, e.halo, 12, vmax, h, 1e-4);
    let cpml = CpmlAxis::new(n, e.halo, 12, stable_dt(8, 2, vmax, h, 0.55), vmax, h, 1e-4);
    vec![
        (
            "iso",
            Medium2::Iso {
                model: iso2_layered(e, &layers, geom(0.7)),
                damp_x: damp.clone(),
                damp_z: damp,
            },
        ),
        (
            "acoustic",
            Medium2::Acoustic {
                model: acoustic2_layered(e, &layers, geom(0.55)),
                cpml: [cpml.clone(), cpml.clone()],
            },
        ),
        (
            "elastic",
            Medium2::Elastic {
                model: elastic2_layered(e, &layers, geom(0.5)),
                cpml: [cpml.clone(), cpml],
            },
        ),
    ]
}

/// Every formulation propagates stably through the same driver and records
/// energy at the receivers.
#[test]
fn all_formulations_model_stably() {
    let n = 96;
    for (name, medium) in media(n) {
        let acq = Acquisition2::surface_line(n, n / 2, 8, 4, 4);
        let r = run_modeling(
            &medium,
            &acq,
            &Wavelet::ricker(18.0),
            &OptimizationConfig::default(),
            250,
            25,
            4,
        );
        assert_eq!(r.snapshots.len(), 10, "{name}");
        let rms = r.seismogram.rms();
        assert!(rms.is_finite() && rms > 0.0, "{name}: rms {rms}");
        let peak = r
            .snapshots
            .iter()
            .map(|s| s.max_abs())
            .fold(0.0f32, f32::max);
        assert!(peak.is_finite() && peak > 0.0, "{name}");
    }
}

/// The optimization knobs change performance modeling, never physics:
/// naive and best configurations produce identical seismograms.
#[test]
fn optimization_config_does_not_change_physics() {
    let n = 72;
    for (name, medium) in media(n) {
        let acq = Acquisition2::surface_line(n, n / 2, 6, 4, 6);
        let w = Wavelet::ricker(20.0);
        let a = run_modeling(
            &medium,
            &acq,
            &w,
            &OptimizationConfig::default(),
            120,
            20,
            3,
        );
        let b = run_modeling(&medium, &acq, &w, &OptimizationConfig::naive(), 120, 20, 3);
        assert_eq!(a.seismogram, b.seismogram, "{name}");
    }
}

/// Full pipeline determinism: same inputs, same bits, across repeated runs
/// and gang counts.
#[test]
fn modeling_is_deterministic() {
    let n = 64;
    let (_, medium) = media(n).swap_remove(1);
    let acq = Acquisition2::surface_line(n, n / 3, 5, 3, 4);
    let w = Wavelet::ricker(22.0);
    let cfg = OptimizationConfig::default();
    let r1 = run_modeling(&medium, &acq, &w, &cfg, 150, 30, 1);
    let r2 = run_modeling(&medium, &acq, &w, &cfg, 150, 30, 7);
    let r3 = run_modeling(&medium, &acq, &w, &cfg, 150, 30, 7);
    assert_eq!(r1.seismogram, r2.seismogram);
    assert_eq!(r2.seismogram, r3.seismogram);
    assert_eq!(r1.snapshots, r2.snapshots);
}

/// Algorithm 1's decomposed reference equals the sequential propagator for
/// a rank count that does not divide the grid evenly.
#[test]
fn mpi_decomposition_matches_sequential_uneven_split() {
    let n = 70;
    let e = extent2(n, n);
    let h = 10.0;
    let dt = stable_dt(8, 2, 3200.0, h, 0.7);
    let m = iso2_layered(e, &standard_layers(n), Geometry::uniform(h, dt));
    let damp = DampProfile::new(n, e.halo, 12, 3200.0, h, 1e-4);
    let w = Wavelet::ricker(20.0);
    let steps = 80;
    let mut seq = Iso2State::new(e);
    for t in 0..steps {
        seq.step(&m, &damp, &damp, IsoPmlVariant::OriginalIfs);
        seq.inject(&m, 20, 30, w.sample(t as f32 * dt));
    }
    let got = modeling_iso2_mpi(&m, &damp, &damp, (20, 30), &w, steps, 6);
    assert_eq!(got, seq.u_cur);
}

/// A wave recorded at two receivers equidistant from the source in a
/// laterally homogeneous model arrives identically (lateral symmetry
/// through the full driver stack).
#[test]
fn lateral_symmetry_of_recordings() {
    let n = 96;
    let (_, medium) = media(n).swap_remove(0);
    let acq = Acquisition2::surface_line(n, n / 2, 10, 6, 1);
    let r = run_modeling(
        &medium,
        &acq,
        &Wavelet::ricker(18.0),
        &OptimizationConfig::default(),
        220,
        50,
        4,
    );
    for off in [4usize, 12, 20] {
        let left = n / 2 - off;
        let right = n / 2 + off;
        let tl = r.seismogram.trace(left);
        let tr = r.seismogram.trace(right);
        let scale = tl.iter().fold(0.0f32, |a, &b| a.max(b.abs())).max(1e-12);
        for (a, b) in tl.iter().zip(tr.iter()) {
            assert!((a - b).abs() <= 2e-3 * scale, "offset {off}: {a} vs {b}");
        }
    }
}

/// Extension: the VTI (anisotropic) formulation runs through the same 2D
/// driver and shows the elliptical kinematics end-to-end.
#[test]
fn vti_medium_through_driver() {
    use seismic_model::VtiModel2;
    let n = 140;
    let e = extent2(n, n);
    let h = 10.0;
    let vp = 2000.0f32;
    let eps = 0.2f32;
    let vmax = vp * (1.0 + 2.0 * eps).sqrt();
    let dt = stable_dt(8, 2, vmax, h, 0.6);
    let model = VtiModel2::constant(e, vp, eps, 0.08, Geometry::uniform(h, dt));
    let damp = DampProfile::new(n, e.halo, 12, vmax, h, 1e-4);
    let medium = Medium2::Vti {
        model,
        damp_x: damp.clone(),
        damp_z: damp,
    };
    let acq = Acquisition2::surface_line(n, n / 2, n / 2, n / 2, 10);
    let cfg = OptimizationConfig::default();
    let w = Wavelet::ricker(22.0);
    let a = run_modeling(&medium, &acq, &w, &cfg, 220, 110, 1);
    let b = run_modeling(&medium, &acq, &w, &cfg, 220, 110, 6);
    assert_eq!(a.seismogram, b.seismogram, "gang invariance holds for VTI");
    // Elliptical front in the last snapshot.
    let snap = a.snapshots.last().unwrap();
    let c = n / 2;
    let peak_along = |dx: usize, dz: usize| {
        let mut best = (0usize, 0.0f32);
        for r in 6..c - 4 {
            let v = snap.get(c + r * dx, c + r * dz).abs();
            if v > best.1 {
                best = (r, v);
            }
        }
        best.0 as f32
    };
    let ratio = peak_along(1, 0) / peak_along(0, 1);
    let want = (1.0 + 2.0 * eps).sqrt();
    assert!((ratio - want).abs() < 0.15, "ratio {ratio} vs {want}");
}

/// Extension: a 3D run decomposed over message-passing ranks matches the
/// sequential 3D propagator bitwise (ghost planes are lossless).
#[test]
fn mpi3_decomposition_matches_sequential() {
    use rtm_core::mpi_run::modeling_iso3_mpi;
    use seismic_model::builder::iso3_layered;
    use seismic_prop::iso3d::Iso3State;
    let n = 30;
    let e = seismic_model::extent3(n, n, n);
    let h = 10.0;
    let dt = stable_dt(8, 3, 3200.0, h, 0.7);
    let m = iso3_layered(e, &standard_layers(n), Geometry::uniform(h, dt));
    let d = DampProfile::new(n, e.halo, 6, 3200.0, h, 1e-4);
    let damp = [d.clone(), d.clone(), d];
    let w = Wavelet::ricker(25.0);
    let steps = 30;
    let mut seq = Iso3State::new(e);
    for t in 0..steps {
        seq.step(&m, &damp, IsoPmlVariant::OriginalIfs);
        seq.inject(&m, n / 2, n / 2, 8, w.sample(t as f32 * dt));
    }
    let got = modeling_iso3_mpi(&m, &damp, (n / 2, n / 2, 8), &w, steps, 4);
    assert_eq!(got, seq.u_cur);
}
