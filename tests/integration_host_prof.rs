//! Integration tests for the wall-clock host-engine profiler and the
//! model-vs-measured calibration layer.
//!
//! Three guarantees pinned end-to-end:
//!
//! 1. **Determinism** — turning the profiler on must not change a single
//!    bit of the numerics, at any gang count, 2D or 3D.
//! 2. **Two clock domains, one timeline** — `accprof --host` merges real
//!    wall-clock worker tracks into the same Chrome trace as the
//!    simulated-time tracks, and the merged trace still validates.
//! 3. **Calibration** — the smoke-scale calibration covers all 12
//!    (case × device) rows with ratios and per-device rank correlations.
//!
//! The profiler enable is process-global; every test that toggles it
//! holds [`repro::calibrate::PROF_GATE`].

use repro::accprof::{parse_case, profile, DeviceChoice, ProfileRequest, RunMode};
use repro::calibrate::{run_calibration, PROF_GATE};
use rtm_core::modeling::Medium2;
use rtm_core::modeling3::Medium3;
use rtm_core::rtm::run_rtm;
use rtm_core::rtm3::run_rtm3;
use rtm_core::OptimizationConfig;
use seismic_grid::cfl::stable_dt;
use seismic_model::builder::{acoustic3_layered, iso2_constant, standard_layers};
use seismic_model::{extent2, extent3, Geometry};
use seismic_pml::{CpmlAxis, DampProfile};
use seismic_source::{Acquisition2, Acquisition3, Wavelet};

fn iso2d_medium(n: usize) -> Medium2 {
    let e = extent2(n, n);
    let h = 10.0;
    let dt = stable_dt(8, 2, 2000.0, h, 0.8);
    let d = DampProfile::new(n, e.halo, 10, 2000.0, h, 1e-4);
    Medium2::Iso {
        model: iso2_constant(e, 2000.0, Geometry::uniform(h, dt)),
        damp_x: d.clone(),
        damp_z: d,
    }
}

fn ac3d_medium(n: usize) -> Medium3 {
    let e = extent3(n, n, n);
    let h = 10.0;
    let dt = stable_dt(8, 3, 3200.0, h, 0.55);
    let cp = CpmlAxis::new(n, e.halo, 6, dt, 3200.0, h, 1e-4);
    Medium3::Acoustic {
        model: acoustic3_layered(e, &standard_layers(n), Geometry::uniform(h, dt)),
        cpml: [cp.clone(), cp.clone(), cp],
    }
}

/// Profiler on vs off: bitwise-identical 2D RTM images and seismograms
/// across gang counts.
#[test]
fn profiler_does_not_change_2d_numerics() {
    let _gate = PROF_GATE.lock().unwrap_or_else(|e| e.into_inner());
    let n = 48;
    let medium = iso2d_medium(n);
    let acq = Acquisition2::surface_line(n, n / 2, 2, 1, 4);
    let w = Wavelet::ricker(18.0);
    let cfg = OptimizationConfig::default();
    for gangs in [1usize, 2, 4] {
        exec_host::prof::set_enabled(false);
        let off = run_rtm(&medium, &acq, &w, &cfg, 40, 4, gangs);

        exec_host::prof::set_enabled(true);
        let _ = exec_host::prof::drain();
        let on = run_rtm(&medium, &acq, &w, &cfg, 40, 4, gangs);
        let profile = exec_host::prof::drain();
        exec_host::prof::set_enabled(false);

        assert_eq!(
            off.image.as_slice(),
            on.image.as_slice(),
            "gangs={gangs}: image must be bitwise identical"
        );
        assert_eq!(
            off.seismogram, on.seismogram,
            "gangs={gangs}: seismogram must be bitwise identical"
        );
        // The profiled run must actually have recorded something.
        let events: usize = profile.slots.iter().map(|s| s.events.len()).sum();
        assert!(events > 0, "gangs={gangs}: no events recorded");
    }
}

/// Profiler on vs off: bitwise-identical 3D RTM images across gang
/// counts.
#[test]
fn profiler_does_not_change_3d_numerics() {
    let _gate = PROF_GATE.lock().unwrap_or_else(|e| e.into_inner());
    let n = 14;
    let medium = ac3d_medium(n);
    let acq = Acquisition3::surface_patch(n, n, (n / 2, n / 2, 2), 1, 4);
    let w = Wavelet::ricker(18.0);
    let cfg = OptimizationConfig::default();
    for gangs in [1usize, 4] {
        exec_host::prof::set_enabled(false);
        let off = run_rtm3(&medium, &acq, &w, &cfg, 12, 3, gangs);

        exec_host::prof::set_enabled(true);
        let _ = exec_host::prof::drain();
        let on = run_rtm3(&medium, &acq, &w, &cfg, 12, 3, gangs);
        let _ = exec_host::prof::drain();
        exec_host::prof::set_enabled(false);

        assert_eq!(
            off.image.as_slice(),
            on.image.as_slice(),
            "gangs={gangs}: 3D image must be bitwise identical"
        );
        assert_eq!(off.seismogram, on.seismogram, "gangs={gangs}");
    }
}

/// `accprof --host`: the merged trace holds both clock domains — the
/// simulated-time tracks of the priced run AND the wall-clock worker
/// tracks of the real host run — and every wall span is labeled with its
/// clock.
#[test]
fn merged_trace_has_both_clock_domains() {
    let req = ProfileRequest {
        case: parse_case("ac2d").unwrap(),
        mode: RunMode::Rtm,
        device: DeviceChoice::M2090,
        steps: Some(12),
        serve: false,
        host: true,
    };
    let out = profile(&req).expect("host-profiled run succeeds");

    let labels: Vec<String> = out
        .session
        .tracer
        .tracks()
        .iter()
        .map(|t| t.label())
        .collect();
    assert!(labels.iter().any(|l| l == "host"), "{labels:?}");
    assert!(labels.iter().any(|l| l.starts_with("stream")), "{labels:?}");
    assert!(
        labels.iter().any(|l| l.starts_with("wall worker")),
        "{labels:?}"
    );

    // The merged timeline still validates (profile() already ran
    // validate_tracks before returning; re-check explicitly).
    out.session
        .tracer
        .validate_tracks()
        .expect("merged trace valid");

    // Wall spans carry the clock label into the exported Chrome trace.
    assert!(out.trace_json.contains("wall worker"));
    assert!(out.trace_json.contains("\"clock\""));

    // And the standalone artifact exists and is internally consistent.
    let hp = out.host_profile_json.expect("host_profile.json emitted");
    let doc = serde_json::from_str(&hp).expect("valid JSON");
    assert_eq!(doc.get("clock").unwrap().as_str(), Some("wall"));
    let report = doc.get("report").unwrap();
    assert!(report.get("wall_s").unwrap().as_f64().unwrap() > 0.0);
    assert!(!report
        .get("workers")
        .unwrap()
        .as_array()
        .unwrap()
        .is_empty());
}

/// Smoke-scale calibration: 12 rows, every row priced (no OOM at laptop
/// scale), ratios finite, and a rank correlation per device over all six
/// cases.
#[test]
fn calibration_covers_all_twelve_rows() {
    let report = run_calibration(true);
    assert_eq!(report.rows.len(), 12);
    for row in &report.rows {
        assert!(row.measured_s > 0.0);
        assert!(row.measured_gp_s > 0.0);
        let ratio = row.ratio().expect("laptop-scale rows all priced");
        assert!(ratio.is_finite() && ratio > 0.0);
        // Phase coverage: forward and backward both observed.
        assert!(row.phases_s[0] > 0.0 && row.phases_s[1] > 0.0);
    }
    assert_eq!(report.spearman.len(), 2);
    for (_, rho, n) in &report.spearman {
        assert_eq!(*n, 6);
        assert!((-1.0..=1.0).contains(rho), "rho out of range: {rho}");
    }
    let md = report.to_markdown();
    assert!(md.contains("Spearman rank correlation"));
    assert_eq!(md.matches("| m2090 |").count(), 6);
    assert_eq!(md.matches("| k40 |").count(), 6);
    let json = serde_json::from_str(&report.to_json()).expect("valid calibration JSON");
    assert_eq!(json.get("rows").unwrap().as_array().unwrap().len(), 12);
    assert_eq!(json.get("clock_measured").unwrap().as_str(), Some("wall"));
}
