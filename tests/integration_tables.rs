//! Integration tests over the Table 3 / Table 4 reproductions: every
//! qualitative claim the paper's evaluation makes must hold in the model,
//! and the modeled magnitudes must stay within a defensible band of the
//! published numbers.

use repro::paper;
use repro::table::{
    model_table, render_comparison, table3_shape_checks, table4_shape_checks, TableKind,
};

#[test]
fn table3_shape_checks_all_pass() {
    for (name, pass) in table3_shape_checks() {
        assert!(pass, "Table 3 shape violated: {name}");
    }
}

#[test]
fn table4_shape_checks_all_pass() {
    for (name, pass) in table4_shape_checks() {
        assert!(pass, "Table 4 shape violated: {name}");
    }
}

/// Absolute sanity: every modeled non-X time sits within 4x of the paper's
/// number — our substrate is a simulator, not the authors' testbed, but
/// the magnitudes must stay in the same regime.
#[test]
fn modeled_magnitudes_within_band() {
    for (kind, reference) in [
        (TableKind::Modeling, paper::table3()),
        (TableKind::Rtm, paper::table4()),
    ] {
        let modeled = model_table(kind);
        for (m, p) in modeled.iter().zip(reference.iter()) {
            for (label, mv, pv) in [
                ("cray total (PGI)", m.cray_total_pgi, p.cray_total_pgi),
                ("cray kernel (PGI)", m.cray_kernel_pgi, p.cray_kernel_pgi),
                ("ibm total", m.ibm_total, p.ibm_total),
                ("ibm kernel", m.ibm_kernel, p.ibm_kernel),
            ] {
                if let (Some(mv), Some(pv)) = (mv, pv) {
                    let ratio = mv / pv;
                    assert!(
                        (0.25..=4.0).contains(&ratio),
                        "{kind:?} {} {}: modeled {mv:.1}s vs paper {pv:.1}s (x{ratio:.2})",
                        m.formulation.label(),
                        label
                    );
                }
            }
        }
    }
}

/// X-cell agreement: the model is unavailable exactly where the paper
/// printed X.
#[test]
fn x_cells_agree_with_paper() {
    for (kind, reference) in [
        (TableKind::Modeling, paper::table3()),
        (TableKind::Rtm, paper::table4()),
    ] {
        let modeled = model_table(kind);
        for (m, p) in modeled.iter().zip(reference.iter()) {
            assert_eq!(
                m.ibm_total.is_none(),
                p.ibm_total.is_none(),
                "{kind:?} {}: IBM availability",
                m.formulation.label()
            );
            assert_eq!(
                m.cray_total_cray.is_none(),
                p.cray_total_cray.is_none(),
                "{kind:?} {}: CRAY-compiler availability",
                m.formulation.label()
            );
        }
    }
}

/// Speedup *directions* agree with the paper cell-by-cell where both are
/// available: whoever wins in the paper (GPU above/below the CPU baseline)
/// wins in the model. A band around 1.0 is treated as a tie.
#[test]
fn speedup_directions_agree() {
    let mut checked = 0;
    let mut agreements = 0;
    for (kind, reference) in [
        (TableKind::Modeling, paper::table3()),
        (TableKind::Rtm, paper::table4()),
    ] {
        let modeled = model_table(kind);
        for (m, p) in modeled.iter().zip(reference.iter()) {
            for (mv, pv) in [
                (m.cray_speedup_pgi, p.cray_speedup_pgi),
                (m.ibm_speedup, p.ibm_speedup),
            ] {
                if let (Some(mv), Some(pv)) = (mv, pv) {
                    // Tie band: published speedups of 0.8–1.25 are noise.
                    if !(0.8..=1.25).contains(&pv) {
                        checked += 1;
                        if (mv > 1.0) == (pv > 1.0) {
                            agreements += 1;
                        }
                    }
                }
            }
        }
    }
    assert!(checked >= 8, "enough decisive cells: {checked}");
    let frac = agreements as f64 / checked as f64;
    assert!(
        frac >= 0.8,
        "win/lose direction agreement {agreements}/{checked}"
    );
}

/// The rendered comparison includes every row and both value kinds.
#[test]
fn renderings_are_complete() {
    for kind in [TableKind::Modeling, TableKind::Rtm] {
        let s = render_comparison(kind);
        for label in [
            "ISOTROPIC 2D",
            "ACOUSTIC 2D",
            "ELASTIC 2D",
            "ISOTROPIC 3D",
            "ACOUSTIC 3D",
            "ELASTIC 3D",
        ] {
            assert!(s.contains(label), "{kind:?} missing {label}");
        }
        assert!(s.contains('X'), "{kind:?} must show X cells");
    }
}
