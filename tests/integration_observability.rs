//! Integration tests over the observability stack: the `accprof` pipeline
//! across all twelve paper cases on both evaluation platforms.
//!
//! These check the properties the unit tests cannot: that the per-kernel
//! counter table produced by the [`acc_obs::ObsSession`] agrees with the
//! profiler ledger the timing model filled in (same launches, same
//! seconds), that the counters satisfy the analytic roofline identities on
//! real driver workloads, and that attaching observability does not perturb
//! a single modeled number.

use acc_obs::ObsSession;
use accel_sim::EventKind;
use repro::accprof::{case_name, parse_case, profile, DeviceChoice, ProfileRequest, RunMode};
use repro::cases::table_workload;
use rtm_core::case::OptimizationConfig;
use rtm_core::gpu_time::{modeling_time_obs, rtm_time, rtm_time_obs};
use std::sync::Arc;

const CASES: [&str; 6] = ["iso2d", "ac2d", "el2d", "iso3d", "ac3d", "el3d"];
const REL_TOL: f64 = 1e-9;

fn rel_close(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs());
    scale == 0.0 || (a - b).abs() <= REL_TOL * scale
}

/// All twelve case/mode combinations on both platforms: every kernel row in
/// the metrics table must agree with the profiler ledger (same invocation
/// count, same total seconds to 1e-9 relative) and satisfy the analytic
/// cross-counter identities — throughput-derived arithmetic intensity and
/// DRAM utilization against the device's peak bandwidth.
#[test]
fn metrics_agree_with_analytic_model_across_all_cases() {
    let mut profiled = 0usize;
    for device in [DeviceChoice::M2090, DeviceChoice::K40] {
        let dev = device.cluster().device();
        for case in CASES {
            for mode in [RunMode::Modeling, RunMode::Rtm] {
                let req = ProfileRequest {
                    case: parse_case(case).unwrap(),
                    mode,
                    device,
                    steps: Some(10),
                    serve: false,
                    host: false,
                };
                let out = match profile(&req) {
                    Ok(o) => o,
                    Err(e) => {
                        // The only legitimate failure is a case that does
                        // not fit the smaller card (elastic 3D on M2090).
                        assert_eq!(device, DeviceChoice::M2090, "{case}/{e}");
                        assert!(
                            matches!(e, rtm_core::error::RtmError::Data(_)),
                            "{case}: unexpected {e}"
                        );
                        continue;
                    }
                };
                profiled += 1;

                let metrics = out.session.metrics();
                assert!(!metrics.is_empty(), "{case}: no kernels recorded");
                let ledger = out.run.runtime.profiler().summary();
                for row in metrics.rows() {
                    let m = &row.metrics;
                    let name = m.name.as_str();
                    let (_, stats) = ledger
                        .iter()
                        .find(|(n, s)| n == name && s.kind == EventKind::Kernel)
                        .unwrap_or_else(|| panic!("{case}: {name} missing from ledger"));
                    assert_eq!(
                        row.invocations, stats.invocations,
                        "{case}/{name}: launch counts disagree"
                    );
                    assert!(
                        rel_close(row.total_exec_s, stats.total_s),
                        "{case}/{name}: metrics {} s vs ledger {} s",
                        row.total_exec_s,
                        stats.total_s
                    );

                    // Analytic identities from the roofline derivation.
                    let dram = m.dram_read_throughput + m.dram_write_throughput;
                    assert!(dram > 0.0, "{case}/{name}: zero DRAM throughput");
                    assert!(
                        rel_close(m.arithmetic_intensity, m.flop_throughput / dram),
                        "{case}/{name}: intensity {} vs flop/byte {}",
                        m.arithmetic_intensity,
                        m.flop_throughput / dram
                    );
                    assert!(
                        rel_close(m.dram_utilization_pct, dram / dev.bandwidth() * 100.0),
                        "{case}/{name}: utilization disagrees with {} peak",
                        dev.name
                    );
                    assert!(
                        m.achieved_occupancy > 0.0 && m.achieved_occupancy <= 1.0,
                        "{case}/{name}: occupancy {}",
                        m.achieved_occupancy
                    );
                    for eff in [
                        m.warp_execution_efficiency_pct,
                        m.gld_efficiency_pct,
                        m.gst_efficiency_pct,
                    ] {
                        assert!((0.0..=100.0).contains(&eff), "{case}/{name}: {eff} %");
                    }
                }
            }
        }
    }
    // 24 combinations minus the M2090 OOM casualties; at least 22 ran.
    assert!(profiled >= 22, "only {profiled} combinations profiled");
}

/// Seeded coalescing mutation: running the acoustic 2D case with the
/// Figure 13 transposition reverted (the direct, strided sweep) must drop
/// the load/store efficiency counters of the stencil kernels — the exact
/// `nvprof --metrics` signal the paper used to justify the optimization.
#[test]
fn coalescing_mutation_drops_load_efficiency() {
    let case = parse_case("ac2d").unwrap();
    let mut w = table_workload(&case);
    w.steps = 10;
    let device = DeviceChoice::K40;

    let run_with = |cfg: &OptimizationConfig| {
        let obs = Arc::new(ObsSession::new());
        modeling_time_obs(
            &case,
            cfg,
            device.compiler(),
            device.cluster(),
            &w,
            Some(obs.clone()),
        )
        .expect("ac2d fits the K40");
        obs.metrics()
    };

    let good = run_with(&OptimizationConfig::default());
    let mutated_cfg = OptimizationConfig {
        transpose: seismic_prop::TransposeVariant::Direct,
        ..Default::default()
    };
    let bad = run_with(&mutated_cfg);

    for kernel in ["ac2d_velocity", "ac2d_pressure"] {
        let g = &good.get(kernel).unwrap().metrics;
        let b = &bad.get(kernel).unwrap().metrics;
        assert_eq!(g.gld_efficiency_pct, 100.0, "{kernel} baseline");
        assert!(
            b.gld_efficiency_pct < 50.0 && b.gld_efficiency_pct > 0.0,
            "{kernel}: mutation left gld_efficiency at {} %",
            b.gld_efficiency_pct
        );
        assert!(b.gst_efficiency_pct < g.gst_efficiency_pct, "{kernel}");
    }
    // The transposition itself disappears from the mutated run.
    assert!(good.get("ac2d_transpose_in").is_some());
    assert!(bad.get("ac2d_transpose_in").is_none());
}

/// Attaching the observability session must not change a single profiler
/// number: the rendered nvprof table (and with it every kernel percentage
/// share) is byte-identical with and without the session.
#[test]
fn observation_leaves_nvprof_shares_unchanged() {
    for case in ["iso2d", "ac3d"] {
        let case = parse_case(case).unwrap();
        let mut w = table_workload(&case);
        w.steps = 12;
        let cfg = OptimizationConfig::default();
        let device = DeviceChoice::K40;

        let plain = rtm_time(&case, &cfg, device.compiler(), device.cluster(), &w).unwrap();
        let obs = Arc::new(ObsSession::new());
        let observed = rtm_time_obs(
            &case,
            &cfg,
            device.compiler(),
            device.cluster(),
            &w,
            Some(obs),
        )
        .unwrap();

        assert_eq!(plain.breakdown, observed.breakdown, "{}", case_name(&case));
        assert_eq!(
            plain.runtime.profiler().render("Tesla K40"),
            observed.runtime.profiler().render("Tesla K40"),
            "{}: nvprof table changed under observation",
            case_name(&case)
        );
    }
}

/// The acceptance-criteria trace shape on the headline case: at least
/// three distinct tracks (host, a device stream, an MPI rank), and on every
/// track the spans are monotone and non-overlapping at the same depth.
#[test]
fn iso3d_trace_has_three_monotone_tracks() {
    let req = ProfileRequest {
        case: parse_case("iso3d").unwrap(),
        mode: RunMode::Rtm,
        device: DeviceChoice::K40,
        steps: Some(25),
        serve: false,
        host: false,
    };
    let out = profile(&req).expect("iso3d fits the K40");

    let labels: Vec<String> = out
        .session
        .tracer
        .tracks()
        .iter()
        .map(|t| t.label())
        .collect();
    assert!(labels.len() >= 3, "{labels:?}");
    assert!(labels.iter().any(|l| l == "host"));
    assert!(labels.iter().any(|l| l.starts_with("stream")));
    assert!(labels.iter().any(|l| l.starts_with("rank")));
    out.session
        .tracer
        .validate_tracks()
        .expect("monotone, flame-nested tracks");

    // The emitted JSON is what a Perfetto/Chrome load sees: complete
    // events with the required keys on every record.
    let trace = serde_json::from_str(&out.trace_json).expect("valid trace JSON");
    let events = trace.get("traceEvents").unwrap().as_array().unwrap();
    assert_eq!(events.len(), out.session.tracer.len());
    for ev in events {
        assert_eq!(ev.get("ph").unwrap().as_str(), Some("X"));
        for key in ["name", "cat", "ts", "dur", "pid", "tid"] {
            assert!(ev.get(key).is_some(), "event missing {key}");
        }
        assert!(ev.get("ts").unwrap().as_f64().unwrap() >= 0.0);
        assert!(ev.get("dur").unwrap().as_f64().unwrap() >= 0.0);
    }
}
