//! Offline build shim for `crossbeam`: an MPMC unbounded channel with the
//! `crossbeam::channel` call shape (`Sender`/`Receiver` both `Clone`),
//! built on `Mutex<VecDeque>` + `Condvar`. Throughput is not the point —
//! the `mpi-sim` rank runtime needs correct blocking semantics and
//! disconnect detection, both provided here.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    /// (This shim never reports it — receivers outlive senders in the
    /// workspace's usage — but the type keeps call sites source-compatible.)
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] once the channel is empty and
    /// every sender has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Sending half; cloning adds another producer.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// Receiving half; cloning adds another (work-stealing) consumer.
    pub struct Receiver<T>(Arc<Chan<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::SeqCst);
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake blocked receivers so they can
                // observe the disconnect.
                let _guard = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Sender<T> {
        /// Enqueue a message; never blocks (unbounded).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives; errors once the channel is empty
        /// and all senders have disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.0.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Option<T> {
            self.0
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
        });
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_within_one_producer() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn disconnect_unblocks_receiver() {
            let (tx, rx) = unbounded::<u8>();
            let h = std::thread::spawn(move || rx.recv());
            drop(tx);
            assert_eq!(h.join().unwrap(), Err(RecvError));
        }

        #[test]
        fn cloned_receivers_steal() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            tx.send(7).unwrap();
            assert_eq!(rx2.recv(), Ok(7));
            assert_eq!(rx.try_recv(), None);
        }
    }
}
