//! Offline build shim for `bytes`: the subset the workspace uses.
//!
//! [`Bytes`] is a cheaply cloneable, sliceable view over shared immutable
//! storage (`Arc<[u8]>` + range); [`BytesMut`] is a growable builder that
//! freezes into one. The [`Buf`]/[`BufMut`] traits carry the little-endian
//! cursor accessors the wire formats rely on.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffer borrowing nothing: copies the static slice once.
    pub fn from_static(s: &'static [u8]) -> Self {
        Self::from(s.to_vec())
    }

    /// Copy a slice into a fresh buffer.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Self::from(s.to_vec())
    }

    /// Sub-view sharing the same storage.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        assert!(range.start <= range.end && self.start + range.end <= self.end);
        Self {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Length of the (remaining) view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

/// Cursor-style read access (advances past consumed bytes).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Consume and return `N` raw bytes.
    fn take_array<const N: usize>(&mut self) -> [u8; N];

    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    /// Consume a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take_array())
    }

    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(self.len() >= N, "buffer underrun");
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[self.start..self.start + N]);
        self.start += N;
        out
    }
}

/// Growable byte builder.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

/// Cursor-style write access.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, s: &[u8]);

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_accessors() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u64_le(77);
        b.put_f32_le(1.5);
        let mut frozen = b.freeze();
        assert_eq!(frozen.remaining(), 12);
        assert_eq!(frozen.get_u64_le(), 77);
        assert_eq!(frozen.get_f32_le(), 1.5);
        assert_eq!(frozen.remaining(), 0);
    }

    #[test]
    fn cheap_clone_shares_storage() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.as_ref(), &[1, 2, 3]);
        assert_eq!(a.chunks_exact(1).count(), 3);
    }

    #[test]
    #[should_panic(expected = "buffer underrun")]
    fn underrun_panics() {
        let mut b = Bytes::from(vec![1u8, 2]);
        b.get_u64_le();
    }
}
