//! Offline build shim for `rand`: a deterministic splitmix64 generator
//! behind the `StdRng`/`SeedableRng`/`Rng` names the workspace uses.
//!
//! Determinism note: unlike the real `StdRng` there is no OS entropy
//! anywhere — every stream is fully determined by its `seed_from_u64`
//! seed, which is exactly what the model builders and tests want.

/// Uniform sampling target for [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample using the generator's next raw word.
    fn sample(&self, raw: u64) -> Self::Output;
}

fn unit_f64(raw: u64) -> f64 {
    // 53 mantissa bits → uniform in [0, 1).
    (raw >> 11) as f64 / (1u64 << 53) as f64
}

impl SampleRange for std::ops::Range<f32> {
    type Output = f32;
    fn sample(&self, raw: u64) -> f32 {
        self.start + (unit_f64(raw) as f32) * (self.end - self.start)
    }
}

impl SampleRange for std::ops::RangeInclusive<f32> {
    type Output = f32;
    fn sample(&self, raw: u64) -> f32 {
        let (a, b) = (*self.start(), *self.end());
        a + (unit_f64(raw) as f32) * (b - a)
    }
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample(&self, raw: u64) -> f64 {
        self.start + unit_f64(raw) * (self.end - self.start)
    }
}

impl SampleRange for std::ops::Range<usize> {
    type Output = usize;
    fn sample(&self, raw: u64) -> usize {
        assert!(self.end > self.start, "empty range");
        self.start + (raw % (self.end - self.start) as u64) as usize
    }
}

impl SampleRange for std::ops::Range<u64> {
    type Output = u64;
    fn sample(&self, raw: u64) -> u64 {
        assert!(self.end > self.start, "empty range");
        self.start + raw % (self.end - self.start)
    }
}

/// Seedable generator constructor (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform-sampling surface (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self.next_u64())
    }
}

pub mod rngs {
    //! Named generators (subset of `rand::rngs`).

    /// Deterministic splitmix64 generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f32 = r.gen_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&x));
            let n = r.gen_range(5usize..9);
            assert!((5..9).contains(&n));
        }
    }
}
