//! Offline build shim for `proptest`: a small deterministic
//! property-testing harness exposing the subset of the `proptest` surface
//! this workspace uses (`proptest!` item and closure forms, range and
//! collection strategies, `any`, `prop_assert*`, `prop_assume`).
//!
//! Each test runs a fixed number of cases; the case stream is a pure
//! function of the test name, so failures reproduce without a persisted
//! regression file.

/// Deterministic generator driving each test case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator seeded from a test name and case index.
    pub fn for_case(name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        Self {
            state: h ^ case.wrapping_mul(0x9E3779B97F4A7C15),
        }
    }

    /// Next raw word (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Number of cases each property runs.
pub const CASES: u64 = 64;

/// Drive `f` over [`CASES`] deterministic cases, panicking on the first
/// failure with enough context to replay it.
pub fn run_cases(name: &str, f: &mut dyn FnMut(&mut TestRng) -> Result<(), String>) {
    for case in 0..CASES {
        let mut rng = TestRng::for_case(name, case);
        if let Err(msg) = f(&mut rng) {
            panic!("property '{name}' failed on case {case}: {msg}");
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::TestRng;

    /// A recipe for producing values of one type.
    pub trait Strategy {
        /// Generated value type.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl Strategy for std::ops::Range<usize> {
        type Value = usize;
        fn sample(&self, rng: &mut TestRng) -> usize {
            assert!(self.end > self.start, "empty usize range");
            self.start + (rng.next_u64() % (self.end - self.start) as u64) as usize
        }
    }

    impl Strategy for std::ops::Range<u64> {
        type Value = u64;
        fn sample(&self, rng: &mut TestRng) -> u64 {
            assert!(self.end > self.start, "empty u64 range");
            self.start + rng.next_u64() % (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<u32> {
        type Value = u32;
        fn sample(&self, rng: &mut TestRng) -> u32 {
            assert!(self.end > self.start, "empty u32 range");
            self.start + (rng.next_u64() % (self.end - self.start) as u64) as u32
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// Full-domain strategy returned by [`crate::any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(std::marker::PhantomData)
        }
    }

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy for `Vec<T>` with a sampled length.
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::sample(&self.len, rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Full-domain strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::default()
}

pub mod prop {
    //! Namespaced strategy constructors (mirrors `proptest::prop`).

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::{Strategy, VecStrategy};

        /// `Vec` strategy with element strategy `s` and length in `len`.
        pub fn vec<S: Strategy>(s: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element: s, len }
        }
    }
}

/// Assert inside a property body; failures abort only the current case
/// with a replayable message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), format!($($fmt)+)
            ));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (l, r) = (&$a, &$b);
        if !(*l == *r) {
            return Err(format!(
                "equality failed at {}:{}: {} == {}",
                file!(), line!(), stringify!($a), stringify!($b)
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$a, &$b);
        if !(*l == *r) {
            return Err(format!(
                "equality failed at {}:{}: {}",
                file!(), line!(), format!($($fmt)+)
            ));
        }
    }};
}

/// Discard the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

/// The `proptest!` macro: item form (a block of `#[test]` functions whose
/// arguments are strategies) and closure form (one inline property).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), &mut |__rng: &mut $crate::TestRng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)*
                    $body
                    Ok(())
                });
            }
        )+
    };
    (|($($arg:ident in $strat:expr),* $(,)?)| $body:block) => {
        $crate::run_cases("inline", &mut |__rng: &mut $crate::TestRng| {
            $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)*
            $body
            Ok(())
        });
    };
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate::strategy::Strategy;
    pub use crate::{any, prop, prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(n in 3usize..10, x in -2.0f32..2.0) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn vec_strategy_respects_len(v in prop::collection::vec(0.0f32..1.0, 1..50)) {
            prop_assert!(!v.is_empty() && v.len() < 50);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn assume_discards(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn closure_form_runs() {
        proptest!(|(a in 1usize..5, b in 1usize..5)| {
            prop_assert!(a * b >= 1);
        });
    }

    #[test]
    fn determinism_across_runs() {
        let mut first = Vec::new();
        let mut second = Vec::new();
        for out in [&mut first, &mut second] {
            let mut rng = crate::TestRng::for_case("d", 0);
            for _ in 0..16 {
                out.push(rng.next_u64());
            }
        }
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "failed on case")]
    fn failures_carry_case_number() {
        crate::run_cases("always_fails", &mut |_| Err("boom".into()));
    }
}
