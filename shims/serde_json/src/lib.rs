//! Offline build shim for `serde_json`.
//!
//! The workspace builds hermetically with no registry access (see
//! `shims/serde_derive`), and the sibling `serde` shim reduces `Serialize`
//! to a marker trait — so the generic `to_string<T: Serialize>` entry point
//! of the real crate cannot exist here. Instead this shim implements the
//! *value half* of `serde_json` for real: the [`Value`] tree, a serializer
//! with correct JSON string escaping, and a strict parser. That is exactly
//! the subset the observability stack needs — building trace/report
//! documents programmatically and re-parsing them for validation — and it
//! round-trips: `from_str(&to_string(&v))? == v` for every finite value.

use std::fmt::Write as _;

/// A JSON value.
///
/// Objects preserve insertion order (like `serde_json`'s `preserve_order`
/// feature) so emitted documents are deterministic and diff-friendly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64; integers up to 2^53 are exact).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Map),
}

/// Insertion-ordered string→value map.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert, replacing an existing key in place.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        let key = key.into();
        let value = value.into();
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v = value,
            None => self.entries.push((key, value)),
        }
    }

    /// Value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}
impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Number(n as f64)
    }
}
impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::Number(f64::from(n))
    }
}
impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Number(n as f64)
    }
}
impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Number(n as f64)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Array(v)
    }
}
impl From<Map> for Value {
    fn from(m: Map) -> Self {
        Value::Object(m)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Self {
        o.map_or(Value::Null, Into::into)
    }
}

impl Value {
    /// The value at `key` when this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements when this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The integer when this is a number with an exact u64 value.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The bool when this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Escape `s` into `out` as a JSON string literal (quotes included).
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; the real crate errors — we emit null, which
        // keeps the document parseable (callers should not produce these).
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (level + 1)));
                }
                write_value(out, item, indent, level + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * level));
            }
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (level + 1)));
                }
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * level));
            }
            out.push('}');
        }
    }
}

/// Serialize a [`Value`] to its compact JSON text.
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

/// Serialize a [`Value`] to pretty-printed (2-space indented) JSON text.
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    out
}

/// A parse error with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for Error {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, Error> {
        Err(Error {
            message: msg.into(),
            offset: self.pos,
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            self.err(format!("expected '{lit}'"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        if self.depth >= MAX_DEPTH {
            return self.err("nesting too deep");
        }
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                self.depth += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            self.depth -= 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return self.err("expected ',' or ']'"),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                self.depth += 1;
                let mut map = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    map.insert(key, val);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            self.depth -= 1;
                            return Ok(Value::Object(map));
                        }
                        _ => return self.err("expected ',' or '}'"),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => self.err(format!("unexpected character '{}'", c as char)),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(cp) = hex else {
                                return self.err("bad \\u escape");
                            };
                            self.pos += 4;
                            // Surrogate pair?
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos + 1..self.pos + 3) != Some(b"\\u") {
                                    return self.err("lone high surrogate");
                                }
                                let lo = self
                                    .bytes
                                    .get(self.pos + 3..self.pos + 7)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok());
                                let Some(lo) = lo.filter(|l| (0xDC00..0xE000).contains(l)) else {
                                    return self.err("bad low surrogate");
                                };
                                self.pos += 6;
                                0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                cp
                            };
                            match char::from_u32(c) {
                                Some(c) => out.push(c),
                                None => return self.err("invalid code point"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return self.err("control character in string"),
                Some(c) if c < 0x80 => {
                    // ASCII fast path — no UTF-8 validation needed.
                    out.push(c as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one multi-byte UTF-8 scalar. Validate at most
                    // 4 bytes, never the whole remaining input (that would
                    // make string parsing quadratic in document size).
                    let end = (self.pos + 4).min(self.bytes.len());
                    let chunk = &self.bytes[self.pos..end];
                    let c = match std::str::from_utf8(chunk) {
                        Ok(s) => s.chars().next(),
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&chunk[..e.valid_up_to()])
                                .expect("validated prefix")
                                .chars()
                                .next()
                        }
                        Err(_) => None,
                    };
                    let Some(c) = c else {
                        return self.err("invalid UTF-8");
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits0 = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits0 {
            return self.err("expected digits");
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac0 = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac0 {
                return self.err("expected fraction digits");
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp0 = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp0 {
                return self.err("expected exponent digits");
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
        match text.parse::<f64>() {
            Ok(n) => Ok(Value::Number(n)),
            Err(_) => self.err("bad number"),
        }
    }
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(pairs: &[(&str, Value)]) -> Value {
        let mut m = Map::new();
        for (k, v) in pairs {
            m.insert(*k, v.clone());
        }
        Value::Object(m)
    }

    #[test]
    fn escaping_round_trips() {
        let nasty = "quote\" backslash\\ newline\n tab\t ctrl\u{01} unicode\u{2603}";
        let v = obj(&[("name", Value::from(nasty))]);
        let s = to_string(&v);
        let back = from_str(&s).expect("round trip parses");
        assert_eq!(back.get("name").and_then(Value::as_str), Some(nasty));
    }

    #[test]
    fn numbers_integers_and_floats() {
        let v = Value::Array(vec![
            Value::from(0u64),
            Value::from(-5i64),
            Value::from(1.5),
            Value::from(1e-9),
            Value::from(9007199254740992.0), // 2^53
        ]);
        let s = to_string(&v);
        let back = from_str(&s).unwrap();
        assert_eq!(back, v);
        assert!(s.contains("-5"));
        assert!(!s.contains("-5.0"), "integers render without fraction");
    }

    #[test]
    fn parses_standard_documents() {
        let v = from_str(r#"{"a": [1, 2.5, null, true], "b": {"c": "d"}, "e": []}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 4);
        assert_eq!(
            v.get("b").unwrap().get("c").and_then(Value::as_str),
            Some("d")
        );
        assert_eq!(v.get("e").unwrap().as_array().unwrap().len(), 0);
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{'a':1}",
            "[1 2]",
            "01x",
            "\"\\q\"",
            "[1] extra",
            "nul",
            "+1",
        ] {
            assert!(from_str(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        let v = from_str(r#""\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé😀"));
        assert!(from_str(r#""\ud800""#).is_err(), "lone surrogate rejected");
    }

    #[test]
    fn object_insertion_order_preserved_and_replaced() {
        let mut m = Map::new();
        m.insert("z", Value::from(1u64));
        m.insert("a", Value::from(2u64));
        m.insert("z", Value::from(3u64));
        let s = to_string(&Value::Object(m));
        assert_eq!(s, r#"{"z":3,"a":2}"#);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = obj(&[
            ("k", Value::Array(vec![Value::from(1u64), Value::Null])),
            ("s", Value::from("x")),
        ]);
        let pretty = to_string_pretty(&v);
        assert!(pretty.contains('\n'));
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn as_u64_bounds() {
        assert_eq!(Value::from(5u64).as_u64(), Some(5));
        assert_eq!(Value::from(5.5).as_u64(), None);
        assert_eq!(Value::from(-1i64).as_u64(), None);
    }

    /// String parsing must be linear in document size: a megabyte-scale
    /// document (the size class of `accprof` traces) parses in well under
    /// a second. The pre-fix parser revalidated the whole remaining input
    /// per character, which turned this into minutes.
    #[test]
    fn large_documents_parse_in_linear_time() {
        let long_ascii = "x".repeat(1 << 20);
        let long_unicode = "é☃".repeat(1 << 17);
        let v = obj(&[
            ("a", Value::from(long_ascii.as_str())),
            ("u", Value::from(long_unicode.as_str())),
        ]);
        let s = to_string(&v);
        let t0 = std::time::Instant::now();
        let back = from_str(&s).expect("parses");
        assert!(
            t0.elapsed().as_secs() < 5,
            "megabyte-scale parse took {:?}",
            t0.elapsed()
        );
        assert_eq!(back, v);
    }

    #[test]
    fn deep_nesting_bounded() {
        let s = "[".repeat(1000) + &"]".repeat(1000);
        assert!(from_str(&s).is_err(), "depth limit enforced");
    }
}
