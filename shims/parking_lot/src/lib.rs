//! Offline build shim for `parking_lot`: thin wrappers over `std::sync`
//! primitives exposing the poison-free `parking_lot` API surface the
//! workspace uses (`lock()` returning the guard directly).

use std::sync;

/// Poison-free mutex matching `parking_lot::Mutex`'s call shape.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (a panicked holder's data is
    /// still returned, as `parking_lot` does).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Poison-free reader-writer lock matching `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
