//! Offline build shim for `criterion`: a minimal wall-clock harness with
//! the call shape the workspace's benches use (`benchmark_group`,
//! `bench_function`, `Throughput`, `criterion_group!`/`criterion_main!`).
//! It reports median-of-samples timings to stdout; no plots, no stats.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value sink.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units a benchmark processes per iteration, for derived rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes per iteration.
    Bytes(u64),
    /// Logical elements per iteration.
    Elements(u64),
}

/// Top-level harness configuration + registry.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_millis(1000),
            warm_up_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Run one benchmark.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            budget: self.criterion.measurement_time,
            warm_up: self.criterion.warm_up_time,
            sample_size: self.criterion.sample_size,
        };
        f(&mut b);
        let mut per_iter: Vec<f64> = b.samples;
        if per_iter.is_empty() {
            println!("  {}/{id}: no samples", self.name);
            return;
        }
        per_iter.sort_by(f64::total_cmp);
        let median = per_iter[per_iter.len() / 2];
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!(" ({:.2} GiB/s)", n as f64 / median / (1u64 << 30) as f64)
            }
            Some(Throughput::Elements(n)) => format!(" ({:.2e} elem/s)", n as f64 / median),
            None => String::new(),
        };
        println!("  {}/{id}: {:.3e} s/iter{rate}", self.name, median);
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    samples: Vec<f64>,
    budget: Duration,
    warm_up: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, collecting per-iteration samples until the sample count
    /// or the measurement budget is exhausted.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            black_box(f());
        }
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed().as_secs_f64());
            if started.elapsed() > self.budget {
                break;
            }
        }
    }
}

/// Group registration: both the plain list form and the
/// `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running each registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4));
        g.bench_function("sum", |b| b.iter(|| (0..4u64).sum::<u64>()));
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10));
        targets = tiny
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
