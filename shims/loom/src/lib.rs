//! Offline build shim for `loom`: a bounded model checker for concurrent
//! code exposing the `loom` API surface the workspace uses
//! (`loom::model`, `loom::sync::{Mutex, Condvar}`,
//! `loom::sync::atomic::*`, `loom::thread::{Builder, spawn, JoinHandle}`).
//!
//! ## How the checker works
//!
//! Real loom explores interleavings with DPOR over a user-space scheduler.
//! This shim keeps the *checking model* but bounds the search differently:
//! the body under test runs many times, each run under a **serialized
//! scheduler** — exactly one modeled thread holds an execution token at
//! any instant, and every synchronization operation (mutex lock/unlock,
//! condvar wait/notify, atomic access, spawn/join, `yield_now`) is a
//! *yield point* where the token may move to any runnable thread. The
//! schedule at each yield point is driven by:
//!
//! 1. iteration 0 — **cooperative**: a thread runs until it blocks
//!    (the "no preemption" schedule);
//! 2. iteration 1 — **round-robin**: the token moves at every yield
//!    point (maximal preemption);
//! 3. iterations 2.. — **seeded pseudo-random** choices (SplitMix64),
//!    deterministic per seed, so failures replay.
//!
//! Because modeled threads only interleave at yield points and at most
//! one runs at a time, every data access is sequentially consistent and
//! each run is a *real* interleaving of the declared synchronization
//! events. The checker flags:
//!
//! * **deadlock / lost wakeup** — every live thread blocked (a condvar
//!   waiter nobody will notify, a join cycle, a mutex cycle);
//! * **assertion failures / panics** in any modeled thread, with the
//!   schedule seed that produced them.
//!
//! The iteration count defaults to [`DEFAULT_ITERS`] and can be raised
//! with the `LOOM_ITERS` env var. This is a bounded search, not a proof
//! over all interleavings — the same caveat applies to real loom once
//! its preemption bound kicks in.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

/// Schedules explored per `model()` call when `LOOM_ITERS` is unset.
pub const DEFAULT_ITERS: usize = 300;

/// Process-global id source for mutexes/condvars (ids only need to be
/// unique, not dense; HashMaps in the scheduler key off them).
static SYNC_IDS: StdAtomicUsize = StdAtomicUsize::new(0);

fn fresh_sync_id() -> usize {
    SYNC_IDS.fetch_add(1, StdOrdering::Relaxed)
}

/// Sentinel panic payload used to unwind modeled threads once a schedule
/// has already failed; never reported as a failure itself.
struct Abort;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Mode {
    Cooperative,
    RoundRobin,
    Random,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ThreadState {
    Runnable,
    /// Blocked acquiring the mutex with this id.
    BlockedMutex(usize),
    /// Parked in `Condvar::wait`.
    BlockedCv,
    /// Blocked in `JoinHandle::join` on this thread index.
    BlockedJoin(usize),
    Finished,
}

struct Inner {
    states: Vec<ThreadState>,
    /// Thread index currently holding the execution token.
    current: usize,
    /// Modeled threads not yet finished.
    live: usize,
    mode: Mode,
    rng: u64,
    /// Mutex ids currently held.
    locked: std::collections::HashSet<usize>,
    /// Threads parked on a condvar: cv id → (thread, mutex to reacquire).
    cv_waiters: HashMap<usize, Vec<(usize, usize)>>,
    /// First failure observed this schedule (assertion, panic, deadlock).
    failure: Option<String>,
}

struct Scheduler {
    inner: StdMutex<Inner>,
    /// Real condvar modeled threads park on while not holding the token.
    cv: StdCondvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

fn with_sched<R>(f: impl FnOnce(&Arc<Scheduler>, usize) -> R) -> R {
    let ctx = CURRENT.with(|c| c.borrow().clone());
    let (sched, me) = ctx.expect("loom primitive used outside loom::model");
    f(&sched, me)
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Scheduler {
    fn new(mode: Mode, seed: u64) -> Self {
        Scheduler {
            inner: StdMutex::new(Inner {
                states: vec![ThreadState::Runnable],
                current: 0,
                live: 1,
                mode,
                rng: seed,
                locked: Default::default(),
                cv_waiters: HashMap::new(),
                failure: None,
            }),
            cv: StdCondvar::new(),
        }
    }

    /// Pick the next token holder among runnable threads. `None` when no
    /// thread can run.
    fn pick(inner: &mut Inner, from: usize, force_switch: bool) -> Option<usize> {
        let runnable: Vec<usize> = (0..inner.states.len())
            .filter(|&t| inner.states[t] == ThreadState::Runnable)
            .collect();
        if runnable.is_empty() {
            return None;
        }
        let choice = match inner.mode {
            Mode::Cooperative if !force_switch && runnable.contains(&from) => from,
            Mode::Random => runnable[(splitmix(&mut inner.rng) as usize) % runnable.len()],
            // Round-robin (and a cooperative thread that just blocked):
            // first runnable index strictly after `from`, cyclically.
            _ => *runnable.iter().find(|&&t| t > from).unwrap_or(&runnable[0]),
        };
        Some(choice)
    }

    /// A schedule already failed: unwind without reporting a second error.
    fn abort_if_failed(&self, inner: &std::sync::MutexGuard<'_, Inner>) {
        if inner.failure.is_some() {
            panic::panic_any(Abort);
        }
    }

    /// Yield point: optionally hand the token to another runnable thread,
    /// then wait until it comes back.
    fn yield_point(&self, me: usize) {
        let mut inner = self.inner.lock().unwrap();
        self.abort_if_failed(&inner);
        let next = Self::pick(&mut inner, me, false).expect("current thread is runnable");
        if next != me {
            inner.current = next;
            self.cv.notify_all();
            self.wait_for_token(inner, me);
        }
    }

    /// Block the calling thread in `state` and hand the token elsewhere;
    /// returns when the thread is runnable and scheduled again. Declaring
    /// no runnable successor is the deadlock / lost-wakeup verdict.
    fn block(&self, mut inner: std::sync::MutexGuard<'_, Inner>, me: usize, state: ThreadState) {
        self.abort_if_failed(&inner);
        inner.states[me] = state;
        match Self::pick(&mut inner, me, true) {
            Some(next) => {
                inner.current = next;
                self.cv.notify_all();
                self.wait_for_token(inner, me);
            }
            None => {
                let blocked: Vec<String> = inner
                    .states
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| !matches!(s, ThreadState::Finished))
                    .map(|(t, s)| format!("thread {t}: {s:?}"))
                    .collect();
                inner.failure = Some(format!(
                    "deadlock: every live thread is blocked (lost wakeup?) — {}",
                    blocked.join(", ")
                ));
                self.cv.notify_all();
                drop(inner);
                panic::panic_any(Abort);
            }
        }
    }

    fn wait_for_token(&self, mut inner: std::sync::MutexGuard<'_, Inner>, me: usize) {
        loop {
            if inner.failure.is_some() {
                drop(inner);
                panic::panic_any(Abort);
            }
            if inner.current == me && inner.states[me] == ThreadState::Runnable {
                return;
            }
            inner = self.cv.wait(inner).unwrap();
        }
    }

    /// Acquire mutex `id`, blocking (in the modeled sense) while held.
    fn lock_mutex(&self, me: usize, id: usize) {
        self.yield_point(me);
        loop {
            let inner = self.inner.lock().unwrap();
            self.abort_if_failed(&inner);
            if !inner.locked.contains(&id) {
                let mut inner = inner;
                inner.locked.insert(id);
                return;
            }
            self.block(inner, me, ThreadState::BlockedMutex(id));
        }
    }

    fn try_lock_mutex(&self, me: usize, id: usize) -> bool {
        self.yield_point(me);
        let mut inner = self.inner.lock().unwrap();
        self.abort_if_failed(&inner);
        if inner.locked.contains(&id) {
            false
        } else {
            inner.locked.insert(id);
            true
        }
    }

    /// Release mutex `id` and make its waiters runnable (they re-contend).
    fn unlock_mutex(&self, me: usize, id: usize) {
        let mut inner = self.inner.lock().unwrap();
        // During abort-unwinding, guards still drop: update state without
        // scheduling (nobody is making progress anymore).
        inner.locked.remove(&id);
        for t in 0..inner.states.len() {
            if inner.states[t] == ThreadState::BlockedMutex(id) {
                inner.states[t] = ThreadState::Runnable;
            }
        }
        if inner.failure.is_some() {
            return;
        }
        drop(inner);
        self.yield_point(me);
    }

    /// `Condvar::wait`: atomically release the mutex and park, then
    /// reacquire after a notification.
    fn cv_wait(&self, me: usize, cv_id: usize, mutex_id: usize) {
        let mut inner = self.inner.lock().unwrap();
        self.abort_if_failed(&inner);
        inner.locked.remove(&mutex_id);
        for t in 0..inner.states.len() {
            if inner.states[t] == ThreadState::BlockedMutex(mutex_id) {
                inner.states[t] = ThreadState::Runnable;
            }
        }
        inner
            .cv_waiters
            .entry(cv_id)
            .or_default()
            .push((me, mutex_id));
        self.block(inner, me, ThreadState::BlockedCv);
        // Notified and scheduled: reacquire the mutex.
        loop {
            let inner = self.inner.lock().unwrap();
            self.abort_if_failed(&inner);
            if !inner.locked.contains(&mutex_id) {
                let mut inner = inner;
                inner.locked.insert(mutex_id);
                return;
            }
            self.block(inner, me, ThreadState::BlockedMutex(mutex_id));
        }
    }

    fn notify(&self, me: usize, cv_id: usize, all: bool) {
        let mut inner = self.inner.lock().unwrap();
        if inner.failure.is_some() {
            return;
        }
        if let Some(waiters) = inner.cv_waiters.get_mut(&cv_id) {
            let woken: Vec<(usize, usize)> = if all {
                std::mem::take(waiters)
            } else if waiters.is_empty() {
                Vec::new()
            } else {
                vec![waiters.remove(0)]
            };
            for (t, _mutex) in woken {
                // The waiter re-contends for its mutex in `cv_wait`; making
                // it runnable is enough (it blocks again if the mutex is
                // still held when it gets the token).
                inner.states[t] = ThreadState::Runnable;
            }
        }
        drop(inner);
        self.yield_point(me);
    }

    /// Register a new modeled thread; returns its index.
    fn register(&self) -> usize {
        let mut inner = self.inner.lock().unwrap();
        inner.states.push(ThreadState::Runnable);
        inner.live += 1;
        inner.states.len() - 1
    }

    /// A modeled thread finished (normally or by panic).
    fn finish(&self, me: usize, failure: Option<String>) {
        let mut inner = self.inner.lock().unwrap();
        inner.states[me] = ThreadState::Finished;
        inner.live -= 1;
        if inner.failure.is_none() {
            inner.failure = failure;
        }
        // Wake joiners.
        for t in 0..inner.states.len() {
            if inner.states[t] == ThreadState::BlockedJoin(me) {
                inner.states[t] = ThreadState::Runnable;
            }
        }
        if inner.failure.is_none() && inner.live > 0 {
            match Self::pick(&mut inner, me, true) {
                Some(next) => inner.current = next,
                None => {
                    inner.failure = Some(
                        "deadlock: finishing thread leaves only blocked threads (lost wakeup?)"
                            .to_string(),
                    );
                }
            }
        }
        self.cv.notify_all();
    }

    fn join_wait(&self, me: usize, target: usize) {
        loop {
            let inner = self.inner.lock().unwrap();
            self.abort_if_failed(&inner);
            if inner.states[target] == ThreadState::Finished {
                return;
            }
            self.block(inner, me, ThreadState::BlockedJoin(target));
        }
    }
}

fn payload_msg(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Run a modeled thread body with the scheduler installed in TLS; reports
/// the outcome to the scheduler and returns the body's result.
fn run_modeled<T>(
    sched: Arc<Scheduler>,
    me: usize,
    body: impl FnOnce() -> T,
) -> std::thread::Result<T> {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&sched), me)));
    // Wait to be scheduled before executing a single user instruction.
    if me != 0 {
        let inner = sched.inner.lock().unwrap();
        sched.wait_for_token(inner, me);
    }
    let result = panic::catch_unwind(AssertUnwindSafe(body));
    let failure = match &result {
        Ok(_) => None,
        Err(p) if p.is::<Abort>() => None,
        Err(p) => Some(format!("thread {me} panicked: {}", payload_msg(&**p))),
    };
    sched.finish(me, failure);
    CURRENT.with(|c| *c.borrow_mut() = None);
    result
}

fn iterations() -> usize {
    std::env::var("LOOM_ITERS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_ITERS)
}

/// Check `body` under bounded schedule exploration: one cooperative
/// schedule, one round-robin schedule, and `LOOM_ITERS − 2` seeded random
/// schedules. Panics with the failing seed on the first schedule that
/// deadlocks or panics.
pub fn model<F>(body: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let body = Arc::new(body);
    let iters = iterations().max(3);
    for iter in 0..iters {
        let (mode, seed) = match iter {
            0 => (Mode::Cooperative, 0),
            1 => (Mode::RoundRobin, 0),
            n => (Mode::Random, n as u64),
        };
        let sched = Arc::new(Scheduler::new(mode, seed));
        let b = Arc::clone(&body);
        let s = Arc::clone(&sched);
        let main = std::thread::Builder::new()
            .name(format!("loom-main-{iter}"))
            .spawn(move || {
                let _ = run_modeled(s, 0, move || b());
            })
            .expect("spawn loom main thread");
        // Wait for every modeled thread (including detached spawns) to
        // retire before judging the schedule.
        {
            let mut inner = sched.inner.lock().unwrap();
            while inner.live > 0 {
                inner = sched.cv.wait(inner).unwrap();
            }
        }
        main.join().expect("loom main thread runner");
        let failure = sched.inner.lock().unwrap().failure.take();
        if let Some(msg) = failure {
            panic!("loom: schedule {iter} ({mode:?}, seed {seed}) failed: {msg}");
        }
    }
}

/// Model-checked synchronization primitives (`loom::sync`).
pub mod sync {
    pub use std::sync::Arc;

    use super::{fresh_sync_id, with_sched};
    use std::cell::UnsafeCell;
    use std::fmt;
    use std::ops::{Deref, DerefMut};

    /// Error type for the poison-aware `lock()` signature (`std` parity);
    /// this checker never poisons, so it is never constructed.
    #[derive(Debug)]
    pub struct PoisonError;

    /// `try_lock` failure: the lock is held by another modeled thread.
    #[derive(Debug)]
    pub struct WouldBlock;

    /// Result alias matching `std::sync::LockResult`'s call shape.
    pub type LockResult<G> = Result<G, PoisonError>;

    /// Model-checked mutex: mutual exclusion is enforced through the
    /// serialized scheduler, and lock/unlock are yield points.
    pub struct Mutex<T: ?Sized> {
        id: usize,
        data: UnsafeCell<T>,
    }

    // SAFETY: access to `data` is serialized by the scheduler token plus
    // the modeled lock state — at most one modeled thread holds the lock,
    // and at most one modeled thread executes at any instant.
    unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
    unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

    impl<T> Mutex<T> {
        /// Wrap a value.
        pub fn new(value: T) -> Self {
            Mutex {
                id: fresh_sync_id(),
                data: UnsafeCell::new(value),
            }
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquire the lock, blocking (in the modeled schedule) while held.
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            with_sched(|s, me| s.lock_mutex(me, self.id));
            Ok(MutexGuard { mutex: self })
        }

        /// Acquire the lock only if it is free right now.
        pub fn try_lock(&self) -> Result<MutexGuard<'_, T>, WouldBlock> {
            if with_sched(|s, me| s.try_lock_mutex(me, self.id)) {
                Ok(MutexGuard { mutex: self })
            } else {
                Err(WouldBlock)
            }
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Mutex").finish_non_exhaustive()
        }
    }

    /// Guard returned by [`Mutex::lock`]; releasing it is a yield point.
    pub struct MutexGuard<'a, T: ?Sized> {
        mutex: &'a Mutex<T>,
    }

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // SAFETY: guard existence proves this modeled thread holds the
            // lock; execution is serialized.
            unsafe { &*self.mutex.data.get() }
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            // SAFETY: as above.
            unsafe { &mut *self.mutex.data.get() }
        }
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            with_sched(|s, me| s.unlock_mutex(me, self.mutex.id));
        }
    }

    /// Model-checked condition variable; `wait` parks the modeled thread
    /// until a notify, and a waiter nobody notifies is a detected lost
    /// wakeup (deadlock) rather than a hang.
    pub struct Condvar {
        id: usize,
    }

    impl Condvar {
        /// New condvar.
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            Condvar {
                id: fresh_sync_id(),
            }
        }

        /// Release the guard's mutex, park until notified, reacquire.
        pub fn wait<'a, T: ?Sized>(
            &self,
            guard: MutexGuard<'a, T>,
        ) -> LockResult<MutexGuard<'a, T>> {
            let mutex = guard.mutex;
            std::mem::forget(guard); // the scheduler releases the lock state
            with_sched(|s, me| s.cv_wait(me, self.id, mutex.id));
            Ok(MutexGuard { mutex })
        }

        /// Wake one parked waiter.
        pub fn notify_one(&self) {
            with_sched(|s, me| s.notify(me, self.id, false));
        }

        /// Wake every parked waiter.
        pub fn notify_all(&self) {
            with_sched(|s, me| s.notify(me, self.id, true));
        }
    }

    impl fmt::Debug for Condvar {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Condvar").finish_non_exhaustive()
        }
    }

    /// Model-checked atomics: plain sequential data under the serialized
    /// scheduler, with a yield point before every operation so schedules
    /// interleave at each access.
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        use super::super::with_sched;

        /// Model-checked `AtomicUsize`.
        #[derive(Debug, Default)]
        pub struct AtomicUsize(std::sync::atomic::AtomicUsize);

        impl AtomicUsize {
            /// Wrap a value.
            pub fn new(v: usize) -> Self {
                Self(std::sync::atomic::AtomicUsize::new(v))
            }

            /// Atomic load (yield point).
            pub fn load(&self, order: Ordering) -> usize {
                with_sched(|s, me| s.yield_point(me));
                self.0.load(order)
            }

            /// Atomic store (yield point).
            pub fn store(&self, v: usize, order: Ordering) {
                with_sched(|s, me| s.yield_point(me));
                self.0.store(v, order)
            }

            /// Atomic add returning the previous value (yield point).
            pub fn fetch_add(&self, v: usize, order: Ordering) -> usize {
                with_sched(|s, me| s.yield_point(me));
                self.0.fetch_add(v, order)
            }

            /// Atomic subtract returning the previous value (yield point).
            pub fn fetch_sub(&self, v: usize, order: Ordering) -> usize {
                with_sched(|s, me| s.yield_point(me));
                self.0.fetch_sub(v, order)
            }

            /// Compare-exchange (yield point).
            pub fn compare_exchange(
                &self,
                cur: usize,
                new: usize,
                ok: Ordering,
                err: Ordering,
            ) -> Result<usize, usize> {
                with_sched(|s, me| s.yield_point(me));
                self.0.compare_exchange(cur, new, ok, err)
            }
        }

        /// Model-checked `AtomicU64`.
        #[derive(Debug, Default)]
        pub struct AtomicU64(std::sync::atomic::AtomicU64);

        impl AtomicU64 {
            /// Wrap a value.
            pub fn new(v: u64) -> Self {
                Self(std::sync::atomic::AtomicU64::new(v))
            }

            /// Atomic load (yield point).
            pub fn load(&self, order: Ordering) -> u64 {
                with_sched(|s, me| s.yield_point(me));
                self.0.load(order)
            }

            /// Atomic store (yield point).
            pub fn store(&self, v: u64, order: Ordering) {
                with_sched(|s, me| s.yield_point(me));
                self.0.store(v, order)
            }

            /// Atomic add returning the previous value (yield point).
            pub fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
                with_sched(|s, me| s.yield_point(me));
                self.0.fetch_add(v, order)
            }
        }

        /// Model-checked `AtomicBool`.
        #[derive(Debug, Default)]
        pub struct AtomicBool(std::sync::atomic::AtomicBool);

        impl AtomicBool {
            /// Wrap a value.
            pub fn new(v: bool) -> Self {
                Self(std::sync::atomic::AtomicBool::new(v))
            }

            /// Atomic load (yield point).
            pub fn load(&self, order: Ordering) -> bool {
                with_sched(|s, me| s.yield_point(me));
                self.0.load(order)
            }

            /// Atomic store (yield point).
            pub fn store(&self, v: bool, order: Ordering) {
                with_sched(|s, me| s.yield_point(me));
                self.0.store(v, order)
            }
        }
    }
}

/// Model-checked threading (`loom::thread`).
pub mod thread {
    use super::{run_modeled, with_sched};
    use std::sync::Arc;

    /// Handle to a modeled thread; joining is a modeled blocking op.
    pub struct JoinHandle<T> {
        index: usize,
        real: std::thread::JoinHandle<std::thread::Result<T>>,
    }

    impl<T> JoinHandle<T> {
        /// Wait (in the modeled schedule) for the thread to finish and
        /// return its result; `Err` carries a panic payload, as in `std`.
        pub fn join(self) -> std::thread::Result<T> {
            with_sched(|s, me| s.join_wait(me, self.index));
            // The modeled thread has retired; the OS join is immediate.
            self.real.join().expect("loom thread runner")
        }
    }

    /// Spawn a modeled thread (a yield point for the parent).
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        Builder::new().spawn(f).expect("loom spawn")
    }

    /// Builder mirroring `std::thread::Builder` (name is kept for
    /// diagnostics only).
    #[derive(Default)]
    pub struct Builder {
        name: Option<String>,
    }

    impl Builder {
        /// New builder.
        pub fn new() -> Self {
            Builder::default()
        }

        /// Name the thread.
        pub fn name(mut self, name: String) -> Self {
            self.name = Some(name);
            self
        }

        /// Spawn a modeled thread.
        pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            let (sched, index) = with_sched(|s, _| (Arc::clone(s), s.register()));
            let real = std::thread::Builder::new()
                .name(self.name.unwrap_or_else(|| format!("loom-{index}")))
                .spawn(move || run_modeled(sched, index, f))?;
            Ok(JoinHandle { index, real })
        }
    }

    /// Voluntary yield point.
    pub fn yield_now() {
        with_sched(|s, me| s.yield_point(me));
    }
}

/// `loom::hint` — spin hints are yield points under the model.
pub mod hint {
    /// Spin hint: under the serialized scheduler, spinning must hand the
    /// token over or no other thread can ever run.
    pub fn spin_loop() {
        super::with_sched(|s, me| s.yield_point(me));
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{Arc, Condvar, Mutex};
    use super::thread;

    #[test]
    fn counter_over_mutex_is_exact() {
        super::model(|| {
            let n = Arc::new(Mutex::new(0usize));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        for _ in 0..3 {
                            *n.lock().unwrap() += 1;
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*n.lock().unwrap(), 6);
        });
    }

    #[test]
    fn condvar_handoff_terminates() {
        super::model(|| {
            let state = Arc::new((Mutex::new(false), Condvar::new()));
            let s2 = Arc::clone(&state);
            let t = thread::spawn(move || {
                let (m, cv) = &*s2;
                let mut ready = m.lock().unwrap();
                while !*ready {
                    ready = cv.wait(ready).unwrap();
                }
            });
            let (m, cv) = &*state;
            *m.lock().unwrap() = true;
            cv.notify_all();
            t.join().unwrap();
        });
    }

    #[test]
    fn lost_wakeup_is_detected() {
        let result = std::panic::catch_unwind(|| {
            super::model(|| {
                let state = Arc::new((Mutex::new(false), Condvar::new()));
                let s2 = Arc::clone(&state);
                // Waiter with no one to notify: must be reported as a
                // deadlock, not a hang.
                let t = thread::spawn(move || {
                    let (m, cv) = &*s2;
                    let mut ready = m.lock().unwrap();
                    while !*ready {
                        ready = cv.wait(ready).unwrap();
                    }
                });
                t.join().unwrap();
            });
        });
        let err = result.expect_err("deadlock must be flagged");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
    }

    #[test]
    fn atomic_interleavings_race_free_sum() {
        super::model(|| {
            let n = Arc::new(AtomicUsize::new(0));
            let a = Arc::clone(&n);
            let t = thread::spawn(move || {
                a.fetch_add(1, Ordering::SeqCst);
            });
            n.fetch_add(1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(n.load(Ordering::SeqCst), 2);
        });
    }
}
