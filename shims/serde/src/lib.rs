//! Offline build shim for `serde`.
//!
//! See `shims/serde_derive` for why this exists. The traits are satisfied
//! by blanket impls so `T: Serialize` bounds keep compiling; the derive
//! macros (re-exported here under the same names, as the real crate does)
//! expand to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
