//! Offline build shim for `serde_derive`.
//!
//! This workspace builds in a hermetic environment with no crates.io
//! access, and nothing in-tree actually serializes (there is no
//! `serde_json` or similar consumer). The derives therefore expand to
//! nothing; the matching trait impls come from blanket impls in the
//! sibling `serde` shim. Swapping the real crates back in requires only
//! deleting the `shims/` entries from the workspace manifest.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
