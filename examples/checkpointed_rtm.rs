//! Bounded-memory RTM via store-vs-recompute checkpointing.
//!
//! Production 3D RTM cannot hold every forward snapshot (the pressure
//! behind the paper's phased `enter data`/`exit data` allocation and the
//! IBM cluster's snapshot I/O collapse). This example migrates the same
//! shot with dense snapshot storage and with 4 checkpoints, verifies the
//! images are bit-for-bit identical, and prints the memory trade.
//!
//! ```text
//! cargo run --release --example checkpointed_rtm
//! ```

use rtm_core::case::OptimizationConfig;
use rtm_core::checkpoint::{migrate_checkpointed, peak_states, plan_checkpoints};
use rtm_core::modeling::{run_modeling, Medium2};
use rtm_core::rtm::migrate_shot;
use seismic_grid::cfl::stable_dt;
use seismic_model::builder::{acoustic2_layered, Layer};
use seismic_model::{extent2, Geometry};
use seismic_pml::CpmlAxis;
use seismic_source::{Acquisition2, Wavelet};

fn main() {
    let n = 96;
    let e = extent2(n, n);
    let h = 10.0;
    let dt = stable_dt(8, 2, 3000.0, h, 0.6);
    let layers = [
        Layer {
            z_top: 0,
            vp: 1500.0,
            vs: 0.0,
            rho: 1000.0,
        },
        Layer {
            z_top: n / 2,
            vp: 3000.0,
            vs: 0.0,
            rho: 2400.0,
        },
    ];
    let model = acoustic2_layered(e, &layers, Geometry::uniform(h, dt));
    let c = CpmlAxis::new(n, e.halo, 12, dt, 3000.0, h, 1e-4);
    let medium = Medium2::Acoustic {
        model,
        cpml: [c.clone(), c],
    };
    let acq = Acquisition2::surface_line(n, n / 2, 5, 5, 2);
    let cfg = OptimizationConfig::default();
    let w = Wavelet::ricker(20.0);
    let steps = 700;
    let snap = 4;
    let slots = 4;

    println!(
        "RTM with dense snapshots vs {slots} checkpoints ({steps} steps, snap every {snap}):\n"
    );
    let t0 = std::time::Instant::now();
    let fwd = run_modeling(&medium, &acq, &w, &cfg, steps, snap, 4);
    let dense = migrate_shot(
        &medium,
        &acq,
        &fwd.seismogram,
        &fwd.snapshots,
        &cfg,
        steps,
        snap,
        4,
    );
    let t_dense = t0.elapsed();

    let t0 = std::time::Instant::now();
    let ckpt = migrate_checkpointed(
        &medium,
        &acq,
        &fwd.seismogram,
        &w,
        &cfg,
        steps,
        snap,
        slots,
        4,
    )
    .expect("valid checkpoint schedule");
    let t_ckpt = t0.elapsed();

    let identical = dense.image == ckpt;
    println!(
        "  dense storage : {:4} snapshots resident, migrate {:?}",
        fwd.snapshots.len(),
        t_dense
    );
    let peak = peak_states(steps, slots, snap).expect("valid schedule");
    println!(
        "  checkpointed  : {:4} states peak ({} checkpoints at {:?}), migrate {:?}",
        peak,
        slots,
        plan_checkpoints(steps, slots).expect("valid schedule"),
        t_ckpt
    );
    println!("  images bitwise identical: {identical}");
    assert!(identical, "deterministic replay must reproduce the image");
    println!(
        "\nTrade: ~{}x less resident state for one extra forward propagation.",
        (fwd.snapshots.len() / peak).max(1)
    );
}
