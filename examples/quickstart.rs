//! Quickstart: forward seismic modeling in ~40 lines.
//!
//! Builds a layered 2D acoustic earth model, runs the forward propagator on
//! host gangs (the OpenACC-gang analogue), and prints a wavefield snapshot
//! plus the recorded shot gather statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use repro::render::ascii_field;
use rtm_core::case::OptimizationConfig;
use rtm_core::modeling::{run_modeling, Medium2};
use seismic_grid::cfl::stable_dt;
use seismic_model::builder::{acoustic2_layered, standard_layers};
use seismic_model::{extent2, Geometry};
use seismic_pml::CpmlAxis;
use seismic_source::{Acquisition2, Wavelet};

fn main() {
    // 1. Grid: 200 x 200 interior points, 10 m spacing, CFL-stable dt.
    let n = 200;
    let extent = extent2(n, n);
    let h = 10.0;
    let v_max = 3200.0;
    let dt = stable_dt(seismic_grid::STENCIL_ORDER, 2, v_max, h, 0.6);

    // 2. Earth model: water over sediment over basement.
    let model = acoustic2_layered(extent, &standard_layers(n), Geometry::uniform(h, dt));

    // 3. Absorbing boundaries: C-PML on both axes.
    let cpml = CpmlAxis::new(n, extent.halo, 16, dt, v_max, h, 1e-4);
    let medium = Medium2::Acoustic {
        model,
        cpml: [cpml.clone(), cpml],
    };

    // 4. Acquisition: center shot, receiver cable near the surface.
    let acq = Acquisition2::surface_line(n, n / 2, 6, 4, 4);

    // 5. Run 600 steps of forward modeling on all available host gangs.
    let result = run_modeling(
        &medium,
        &acq,
        &Wavelet::ricker(15.0),
        &OptimizationConfig::default(),
        600,
        75,
        openacc_sim::exec::default_gangs(),
    );

    println!("acc-rtm quickstart — acoustic 2D forward modeling ({n}x{n}, dt = {dt:.2e} s)\n");
    // A mid-run snapshot: direct wave plus the first interface reflection.
    let snap = &result.snapshots[result.snapshots.len() / 2];
    print!("{}", ascii_field(snap, 76, 6.0));
    println!(
        "\n{} receivers recorded {} samples each; shot-gather rms = {:.3e}",
        result.seismogram.n_receivers(),
        result.seismogram.nt(),
        result.seismogram.rms()
    );
    println!("snapshots saved: {}", result.snapshots.len());
}
