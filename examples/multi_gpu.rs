//! Multi-GPU scaling — the paper's "path forward", priced.
//!
//! Decomposes the acoustic 3D table workload over 1–8 simulated K40s and
//! prints strong-scaling numbers for blocking vs overlapped communication
//! and strided vs device-packed ghost exchange.
//!
//! ```text
//! cargo run --release --example multi_gpu
//! ```

use openacc_sim::{Compiler, PgiVersion};
use rtm_core::case::{Cluster, OptimizationConfig, SeismicCase, Workload};
use rtm_core::multi_gpu::{modeling_time_multi, CommMode, GhostPacking};
use seismic_model::footprint::{Dims, Formulation};

fn main() {
    let case = SeismicCase {
        formulation: Formulation::Acoustic,
        dims: Dims::Three,
    };
    let w = Workload {
        nx: 400,
        ny: 400,
        nz: 400,
        steps: 2200,
        snap_period: 4,
        n_receivers: 2500,
    };
    let cfg = OptimizationConfig::default();
    let compiler = Compiler::Pgi(PgiVersion::V14_6);
    let cluster = Cluster::CrayXc30;

    println!(
        "Acoustic 3D modeling ({}^3, {} steps) across K40s:\n",
        w.nx, w.steps
    );
    println!(
        "{:>5} {:>14} {:>14} {:>10} {:>16} {:>14}",
        "GPUs", "blocking (s)", "overlapped (s)", "speedup", "efficiency", "comm hidden"
    );
    let base = modeling_time_multi(
        &case,
        &cfg,
        compiler,
        cluster,
        &w,
        1,
        GhostPacking::DevicePacked,
        CommMode::Blocking,
    )
    .expect("fits one K40");
    for n in [1usize, 2, 4, 8] {
        let blocking = modeling_time_multi(
            &case,
            &cfg,
            compiler,
            cluster,
            &w,
            n,
            GhostPacking::DevicePacked,
            CommMode::Blocking,
        )
        .expect("fits");
        let overlapped = modeling_time_multi(
            &case,
            &cfg,
            compiler,
            cluster,
            &w,
            n,
            GhostPacking::DevicePacked,
            CommMode::Overlapped,
        )
        .expect("fits");
        let hidden = if overlapped.step_comm_raw_s > 0.0 {
            100.0 * (1.0 - overlapped.step_comm_exposed_s / overlapped.step_comm_raw_s)
        } else {
            100.0
        };
        println!(
            "{:>5} {:>14.1} {:>14.1} {:>9.2}x {:>15.1}% {:>13.0}%",
            n,
            blocking.total_s,
            overlapped.total_s,
            base.total_s / overlapped.total_s,
            100.0 * overlapped.efficiency_vs(&base),
            hidden
        );
    }

    println!("\nGhost packing at 4 GPUs (the paper's transposition workaround):");
    for (name, packing) in [
        ("strided transfers", GhostPacking::Strided),
        ("device-packed", GhostPacking::DevicePacked),
    ] {
        let t = modeling_time_multi(
            &case,
            &cfg,
            compiler,
            cluster,
            &w,
            4,
            packing,
            CommMode::Blocking,
        )
        .expect("fits");
        println!(
            "  {:18} total {:8.1} s   per-step comm {:7.1} us",
            name,
            t.total_s,
            t.step_comm_raw_s * 1e6
        );
    }

    println!("\nMemory relief: elastic 3D (400^3) OOMs one M2090 but runs on four:");
    let el = SeismicCase {
        formulation: Formulation::Elastic,
        dims: Dims::Three,
    };
    let we = Workload { steps: 8000, ..w };
    for n in [1usize, 4] {
        let r = modeling_time_multi(
            &el,
            &cfg,
            Compiler::Pgi(PgiVersion::V14_3),
            Cluster::Ibm,
            &we,
            n,
            GhostPacking::DevicePacked,
            CommMode::Overlapped,
        );
        match r {
            Ok(t) => println!("  {n} x M2090: {:.0} s", t.total_s),
            Err(e) => println!("  {n} x M2090: {e}"),
        }
    }
}
