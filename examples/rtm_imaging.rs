//! Reverse Time Migration of a dipping (wedge) reflector.
//!
//! The motivating workload of the paper's introduction: image subsurface
//! structure from surface recordings. This example shoots three shots over
//! a wedge model, migrates each (forward modeling → direct-wave mute →
//! backward propagation → cross-correlation imaging), stacks the images,
//! and renders the result — the dipping interface should appear in the
//! stack.
//!
//! ```text
//! cargo run --release --example rtm_imaging
//! ```

use repro::render::{ascii_field, write_pgm};
use rtm_core::case::OptimizationConfig;
use rtm_core::modeling::Medium2;
use rtm_core::rtm::{laplacian_filter, run_rtm};
use seismic_grid::cfl::stable_dt;
use seismic_grid::Field2;
use seismic_model::builder::acoustic2_wedge;
use seismic_model::{extent2, Geometry};
use seismic_pml::CpmlAxis;
use seismic_source::{Acquisition2, Wavelet};

fn main() {
    let n = 128;
    let extent = extent2(n, n);
    let h = 10.0;
    let v_max = 3000.0;
    let dt = stable_dt(seismic_grid::STENCIL_ORDER, 2, v_max, h, 0.6);
    // Wedge: interface dips from z = 56 on the left to z = 72 on the right.
    let model = acoustic2_wedge(extent, 1500.0, 3000.0, 56, 72, Geometry::uniform(h, dt));
    let cpml = CpmlAxis::new(n, extent.halo, 14, dt, v_max, h, 1e-4);
    let medium = Medium2::Acoustic {
        model,
        cpml: [cpml.clone(), cpml],
    };

    let gangs = openacc_sim::exec::default_gangs();
    let config = OptimizationConfig::default();
    let wavelet = Wavelet::ricker(18.0);
    let steps = 1100;
    let snap_period = 3;

    println!("RTM of a dipping wedge — {n}x{n} grid, 3 shots, {steps} steps each\n");
    let mut stack = Field2::zeros(extent);
    for (i, src_x) in [n / 4, n / 2, 3 * n / 4].into_iter().enumerate() {
        let acq = Acquisition2::surface_line(n, src_x, 6, 6, 2);
        let r = run_rtm(&medium, &acq, &wavelet, &config, steps, snap_period, gangs);
        // Stack: migrated shots add coherently at true reflectors.
        stack.axpy(1.0, &r.image);
        println!(
            "shot {} at x = {src_x} migrated ({} snapshots)",
            i + 1,
            r.snapshots_saved
        );
    }

    let img = laplacian_filter(&stack, h, h);
    println!("\nstacked image (wedge dips left 56 -> right 72):");
    print!("{}", ascii_field(&img, 76, 2.5));
    std::fs::create_dir_all("out").ok();
    write_pgm(&img, std::path::Path::new("out/rtm_wedge_stack.pgm")).expect("write PGM");
    println!("\n(full-resolution image written to out/rtm_wedge_stack.pgm)");

    // Report where the image peaks along two columns — should follow the dip.
    for ix in [n / 4, 3 * n / 4] {
        let mut best = (0, 0.0f32);
        for iz in 25..n - 25 {
            let v = img.get(ix, iz).abs();
            if v > best.1 {
                best = (iz, v);
            }
        }
        println!("column x = {ix:3}: image peak at z = {}", best.0);
    }
}
