//! Anisotropic (VTI) modeling — the paper's future work, implemented.
//!
//! "We will consider the anisotropic case in the future" (Section 3.3.1).
//! This example propagates the coupled VTI pseudo-acoustic system and
//! renders the elliptical wavefront: the horizontal front runs √(1+2ε)
//! faster than the vertical one.
//!
//! ```text
//! cargo run --release --example anisotropic
//! ```

use repro::render::ascii_field;
use rtm_core::case::OptimizationConfig;
use rtm_core::modeling::{run_modeling, Medium2};
use seismic_grid::cfl::stable_dt;
use seismic_model::{extent2, Geometry, VtiModel2};
use seismic_pml::DampProfile;
use seismic_source::{Acquisition2, Wavelet};

fn main() {
    let n = 220;
    let extent = extent2(n, n);
    let h = 10.0;
    let vp = 2000.0f32;
    let epsilon = 0.24f32;
    let delta = 0.10f32;
    let v_max = vp * (1.0 + 2.0 * epsilon).sqrt();
    let dt = stable_dt(seismic_grid::STENCIL_ORDER, 2, v_max, h, 0.6);
    let model = VtiModel2::constant(extent, vp, epsilon, delta, Geometry::uniform(h, dt));
    let damp = DampProfile::new(n, extent.halo, 16, v_max, h, 1e-4);
    let medium = Medium2::Vti {
        model,
        damp_x: damp.clone(),
        damp_z: damp,
    };
    // Source in the middle; a sparse ring of "receivers" for arrival QC.
    let acq = Acquisition2::surface_line(n, n / 2, n / 2, n / 2, 16);
    let steps = 360;
    let r = run_modeling(
        &medium,
        &acq,
        &Wavelet::ricker(20.0),
        &OptimizationConfig::default(),
        steps,
        120,
        openacc_sim::exec::default_gangs(),
    );

    println!("VTI pseudo-acoustic wavefront (vp = {vp} m/s, ε = {epsilon}, δ = {delta}):\n");
    let snap = r.snapshots.last().expect("snapshots saved");
    print!("{}", ascii_field(snap, 76, 5.0));

    // Measure the front along both axes.
    let c = n / 2;
    let peak_along = |dx: usize, dz: usize| {
        let mut best = (0usize, 0.0f32);
        for rr in 6..c - 4 {
            let v = snap.get(c + rr * dx, c + rr * dz).abs();
            if v > best.1 {
                best = (rr, v);
            }
        }
        best.0
    };
    let rx = peak_along(1, 0);
    let rz = peak_along(0, 1);
    println!(
        "\nfront radius: horizontal {rx} cells, vertical {rz} cells — ratio {:.3}",
        rx as f32 / rz as f32
    );
    println!(
        "theory: vx/vz = sqrt(1+2*eps) = {:.3}",
        (1.0 + 2.0 * epsilon).sqrt()
    );
}
