//! Elastic wave physics: P and S fronts from a shear-generating source.
//!
//! The paper's most expensive formulation exists because solids carry two
//! body-wave types. This example drives the elastic propagator with a
//! directional (vertical-force-like) source that radiates both waves,
//! renders the particle-velocity magnitude, and verifies both fronts travel
//! at their theoretical speeds.
//!
//! ```text
//! cargo run --release --example elastic_waves
//! ```

use repro::render::ascii_field;
use rtm_core::case::OptimizationConfig;
use rtm_core::modeling::{Medium2, State2};
use seismic_grid::cfl::stable_dt;
use seismic_grid::Field2;
use seismic_model::builder::{elastic2_layered, Layer};
use seismic_model::{extent2, Geometry};
use seismic_pml::CpmlAxis;
use seismic_source::Wavelet;

fn main() {
    let n = 240;
    let extent = extent2(n, n);
    let h = 10.0;
    let vp = 3000.0f32;
    let vs = 1600.0f32;
    let dt = stable_dt(seismic_grid::STENCIL_ORDER, 2, vp, h, 0.5);
    let layers = [Layer {
        z_top: 0,
        vp,
        vs,
        rho: 2200.0,
    }];
    let model = elastic2_layered(extent, &layers, Geometry::uniform(h, dt));
    let cpml = CpmlAxis::new(n, extent.halo, 16, dt, vp, h, 1e-4);
    let medium = Medium2::Elastic {
        model,
        cpml: [cpml.clone(), cpml],
    };

    let mut state = State2::new(&medium);
    let cfg = OptimizationConfig::default();
    let w = Wavelet::ricker(16.0);
    let c = n / 2;
    let steps = 260;
    let gangs = openacc_sim::exec::default_gangs();
    for t in 0..steps {
        state.step(&medium, &cfg, gangs);
        // Vertical shear couple: opposite-signed σxz increments straddling
        // the source point radiate a strong S wave alongside the P wave.
        if let State2::Elastic(s) = &mut state {
            let amp = w.sample(t as f32 * dt) * 1e6 * dt;
            let v = s.sxz.get(c, c - 1) + amp;
            s.sxz.set(c, c - 1, v);
            let v = s.sxz.get(c, c + 1) - amp;
            s.sxz.set(c, c + 1, v);
        }
    }

    // Particle-velocity magnitude field for display.
    let speed = match &state {
        State2::Elastic(s) => Field2::from_fn(extent, |ix, iz| {
            (s.vx.get(ix, iz).powi(2) + s.vz.get(ix, iz).powi(2)).sqrt()
        }),
        _ => unreachable!(),
    };
    println!("elastic wavefield after {steps} steps (vp = {vp} m/s, vs = {vs} m/s):\n");
    print!("{}", ascii_field(&speed, 76, 8.0));

    // Measure both fronts along +x: the P front leads, the S front is the
    // stronger inner ring for a shear couple.
    let elapsed = steps as f32 * dt - 1.2 / 16.0;
    let expect_p = vp * elapsed / h;
    let expect_s = vs * elapsed / h;
    // P front = furthest point with significant motion; S peak = global max.
    let peak = (0..c - 4)
        .map(|r| speed.get(c + r, c))
        .fold(0.0f32, f32::max);
    let mut r_p = 0;
    for r in (4..c - 4).rev() {
        if speed.get(c + r, c) > 0.05 * peak {
            r_p = r;
            break;
        }
    }
    let mut r_s = (0, 0.0f32);
    for r in 4..c - 4 {
        let v = speed.get(c + r, c);
        if v > r_s.1 {
            r_s = (r, v);
        }
    }
    println!("\nP front at r = {r_p} cells (theory {expect_p:.0});");
    println!("S peak  at r = {} cells (theory {expect_s:.0}).", r_s.0);
    println!(
        "vp/vs from the grid: {:.2} (theory {:.2})",
        r_p as f32 / r_s.0 as f32,
        vp / vs
    );
}
