//! The CPU reference path: domain-decomposed modeling over real
//! message-passing ranks, validated against the sequential propagator,
//! plus the modeled full-socket baseline for both clusters.
//!
//! ```text
//! cargo run --release --example mpi_scaling
//! ```

use rtm_core::case::{Cluster, SeismicCase, Workload};
use rtm_core::cpu_time::modeling_cpu_time;
use rtm_core::mpi_run::modeling_iso2_mpi;
use seismic_grid::cfl::stable_dt;
use seismic_model::builder::{iso2_layered, standard_layers};
use seismic_model::footprint::{Dims, Formulation};
use seismic_model::{extent2, Geometry};
use seismic_pml::DampProfile;
use seismic_prop::iso2d::Iso2State;
use seismic_prop::IsoPmlVariant;
use seismic_source::Wavelet;

fn main() {
    let n = 240;
    let extent = extent2(n, n);
    let h = 10.0;
    let v_max = 3200.0;
    let dt = stable_dt(seismic_grid::STENCIL_ORDER, 2, v_max, h, 0.7);
    let model = iso2_layered(extent, &standard_layers(n), Geometry::uniform(h, dt));
    let damp = DampProfile::new(n, extent.halo, 16, v_max, h, 1e-4);
    let wavelet = Wavelet::ricker(20.0);
    let steps = 300;
    let src = (n / 2, 10);

    // Sequential reference.
    let t0 = std::time::Instant::now();
    let mut seq = Iso2State::new(extent);
    for t in 0..steps {
        seq.step(&model, &damp, &damp, IsoPmlVariant::OriginalIfs);
        seq.inject(&model, src.0, src.1, wavelet.sample(t as f32 * dt));
    }
    let t_seq = t0.elapsed();
    println!("isotropic 2D modeling, {n}x{n}, {steps} steps (real execution)\n");
    println!(
        "{:>7} {:>12} {:>10} {:>10}",
        "ranks", "wall time", "speedup", "bitwise"
    );

    for ranks in [1usize, 2, 4, 8] {
        let t0 = std::time::Instant::now();
        let dist = modeling_iso2_mpi(&model, &damp, &damp, src, &wavelet, steps, ranks);
        let wall = t0.elapsed();
        // The decomposed run must agree with the sequential one exactly:
        // ghost exchange is lossless.
        let exact = dist
            .as_slice()
            .iter()
            .zip(seq.u_cur.as_slice())
            .all(|(a, b)| a == b);
        println!(
            "{ranks:>7} {:>10.1?} {:>9.2}x {:>10}",
            wall,
            t_seq.as_secs_f64() / wall.as_secs_f64(),
            if exact { "yes" } else { "NO" }
        );
        assert!(
            exact,
            "decomposed run diverged from the sequential reference"
        );
    }

    // The modeled full-socket baselines of the paper's evaluation platform.
    println!("\nmodeled full-socket MPI baselines (table workload, isotropic 2D):");
    let case = SeismicCase {
        formulation: Formulation::Isotropic,
        dims: Dims::Two,
    };
    let w = Workload {
        nx: 2000,
        ny: 1,
        nz: 2000,
        steps: 5000,
        snap_period: 10,
        n_receivers: 500,
    };
    for cluster in [Cluster::CrayXc30, Cluster::Ibm] {
        let b = modeling_cpu_time(&case, cluster, &w);
        println!(
            "  {:10} ({} ranks): kernels {:6.2} s + comm {:5.2} s = {:6.2} s",
            cluster.label(),
            cluster.baseline_ranks(),
            b.kernel_s,
            b.comm_s,
            b.total_s()
        );
    }
}
