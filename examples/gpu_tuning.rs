//! The paper's Figure-1 tuning workflow, end to end on the simulated cards.
//!
//! Each seismic case responds to different Section-5 optimizations, so each
//! is tuned with its own ladder — exactly the accelerate-measure-repeat
//! loop of the paper:
//!
//! * isotropic 3D: PML loop restructuring (Figures 6/7),
//! * acoustic 3D: loop fission + register capping (Figures 10/12),
//! * acoustic 2D RTM: transposition, receiver inlining, image placement
//!   (Figures 13/14/15),
//! * elastic 2D: async streams (Figure 11).
//!
//! ```text
//! cargo run --release --example gpu_tuning
//! ```

use openacc_sim::{Compiler, PgiVersion};
use rtm_core::case::{Cluster, ImagePlacement, OptimizationConfig, SeismicCase, Workload};
use rtm_core::gpu_time::{modeling_time, rtm_time};
use seismic_model::footprint::{Dims, Formulation};
use seismic_prop::{FissionVariant, IsoPmlVariant, TransposeVariant};

fn workload(dims: Dims) -> Workload {
    Workload {
        nx: 300,
        ny: if dims == Dims::Two { 1 } else { 300 },
        nz: 300,
        steps: 400,
        snap_period: 8,
        n_receivers: 300,
    }
}

fn print_ladder(
    title: &str,
    case: SeismicCase,
    compiler: Compiler,
    cluster: Cluster,
    rtm: bool,
    stages: &[(&str, OptimizationConfig)],
) {
    println!("{title}  [{} / {}]", cluster.label(), compiler.label());
    let w = workload(case.dims);
    let mut first = None;
    let mut last = 0.0;
    for (label, cfg) in stages {
        let t = if rtm {
            rtm_time(&case, cfg, compiler, cluster, &w)
        } else {
            modeling_time(&case, cfg, compiler, cluster, &w)
        }
        .expect("tuning workload fits both cards")
        .breakdown
        .total_s;
        first.get_or_insert(t);
        last = t;
        println!("  {label:44} {t:9.2} s");
    }
    println!(
        "  {:44} {:8.2}x\n",
        "=> cumulative gain",
        first.unwrap() / last
    );
}

fn main() {
    println!("Incremental OpenACC tuning, per seismic case (simulated):\n");

    let base = OptimizationConfig::naive();

    // Isotropic 3D under PGI 14.3, where restructuring matters most.
    print_ladder(
        "isotropic 3D modeling — PML loop restructuring",
        SeismicCase {
            formulation: Formulation::Isotropic,
            dims: Dims::Three,
        },
        Compiler::Pgi(PgiVersion::V14_3),
        Cluster::CrayXc30,
        false,
        &[
            ("original kernel (boundary ifs)", base),
            (
                "restructured loop indices",
                OptimizationConfig {
                    iso_pml: IsoPmlVariant::RestructuredIndices,
                    ..base
                },
            ),
            (
                "PML everywhere",
                OptimizationConfig {
                    iso_pml: IsoPmlVariant::PmlEverywhere,
                    ..base
                },
            ),
        ],
    );

    // Acoustic 3D on the register-starved Fermi card.
    let fissioned = OptimizationConfig {
        fission: FissionVariant::Fissioned,
        ..base
    };
    print_ladder(
        "acoustic 3D modeling — register pressure",
        SeismicCase {
            formulation: Formulation::Acoustic,
            dims: Dims::Three,
        },
        Compiler::Pgi(PgiVersion::V14_3),
        Cluster::Ibm,
        false,
        &[
            ("fused pressure kernel", base),
            ("+ loop fission", fissioned),
            (
                "+ maxregcount:64",
                OptimizationConfig {
                    maxregcount: Some(64),
                    ..fissioned
                },
            ),
        ],
    );

    // Acoustic 2D RTM: the backward-phase optimizations.
    let transposed = OptimizationConfig {
        transpose: TransposeVariant::Transposed,
        ..base
    };
    let inlined = OptimizationConfig {
        inline_receiver_injection: true,
        ..transposed
    };
    print_ladder(
        "acoustic 2D RTM — backward phase",
        SeismicCase {
            formulation: Formulation::Acoustic,
            dims: Dims::Two,
        },
        Compiler::Cray,
        Cluster::CrayXc30,
        true,
        &[
            ("direct (strided) backward kernel", base),
            ("+ transposition (coalesced)", transposed),
            ("+ inlined receiver injection", inlined),
            (
                "+ imaging condition on GPU",
                OptimizationConfig {
                    image_placement: ImagePlacement::Gpu,
                    ..inlined
                },
            ),
        ],
    );

    // Elastic 2D: stream packing under CRAY.
    print_ladder(
        "elastic 2D modeling — async streams",
        SeismicCase {
            formulation: Formulation::Elastic,
            dims: Dims::Two,
        },
        Compiler::Cray,
        Cluster::CrayXc30,
        false,
        &[
            ("synchronous launches", base),
            (
                "+ async streams",
                OptimizationConfig {
                    async_streams: true,
                    ..base
                },
            ),
        ],
    );

    println!("\"Repeat the previous steps as needed to achieve the desired performance.\"");
}
