//! A survey that survives losing GPUs mid-run.
//!
//! Generates a seeded fault plan harsh enough to kill some (not all) of
//! the ranks, runs the resilient executor, and checks the stacked image
//! against the fault-free run — bit for bit.

use accel_sim::fault::{FaultPlan, FaultRates};
use rtm_core::case::OptimizationConfig;
use rtm_core::modeling::Medium2;
use rtm_core::resilient::{rtm_survey_resilient, RetryPolicy};
use rtm_core::shot_parallel::{rtm_shot_parallel, Shot};
use seismic_grid::cfl::stable_dt;
use seismic_model::builder::{acoustic2_layered, Layer};
use seismic_model::{extent2, Geometry};
use seismic_pml::CpmlAxis;
use seismic_source::{Acquisition2, Wavelet};

fn main() {
    let n = 64;
    let e = extent2(n, n);
    let h = 10.0;
    let dt = stable_dt(8, 2, 3000.0, h, 0.6);
    let layers = [
        Layer {
            z_top: 0,
            vp: 1500.0,
            vs: 0.0,
            rho: 1000.0,
        },
        Layer {
            z_top: n / 2,
            vp: 3000.0,
            vs: 0.0,
            rho: 2400.0,
        },
    ];
    let model = acoustic2_layered(e, &layers, Geometry::uniform(h, dt));
    let c = CpmlAxis::new(n, e.halo, 10, dt, 3000.0, h, 1e-4);
    let medium = Medium2::Acoustic {
        model,
        cpml: [c.clone(), c],
    };
    let wavelet = Wavelet::ricker(20.0);
    let shots: Vec<Shot> = (1..=6)
        .map(|i| Acquisition2::surface_line(n, i * n / 7, 5, 5, 3))
        .collect();
    let cfg = OptimizationConfig::default();
    let (steps, snap, gangs, ranks) = (150, 4, 2, 3);

    let reference =
        rtm_shot_parallel(&medium, &shots, &wavelet, &cfg, steps, snap, gangs, ranks).unwrap();

    // Find a seed whose plan kills a rank early but spares at least one.
    let rates = FaultRates {
        device_lost_mtti_s: 30.0,
        transient_oom_prob: 0.05,
        straggler_mtti_s: 40.0,
        straggler_duration_s: 15.0,
        straggler_slowdown: 2.0,
        ..FaultRates::none()
    };
    let plan = (0..10_000)
        .map(|seed| FaultPlan::generate(seed, ranks, 200.0, rates))
        .find(|p| {
            let s = p.surviving_devices().len();
            s >= 1 && s < ranks && (0..ranks).any(|d| p.device_lost_at(d).is_some_and(|t| t < 60.0))
        })
        .expect("a partial-loss seed");

    println!(
        "Fault plan seed {}: {} of {ranks} ranks survive, {} events scheduled",
        plan.seed(),
        plan.surviving_devices().len(),
        plan.events().len()
    );
    for ev in plan.events() {
        println!("  t={:7.1}s device {} {:?}", ev.t_s, ev.device, ev.kind);
    }

    let (image, stats) = rtm_survey_resilient(
        &medium,
        &shots,
        &wavelet,
        &cfg,
        steps,
        snap,
        gangs,
        ranks,
        20.0,
        &plan,
        &RetryPolicy::default(),
    )
    .expect("at least one rank survives");

    println!("\nSurvey completed on the survivors:");
    println!("  ranks lost        : {:?}", stats.dead_ranks);
    println!("  shots rescheduled : {}", stats.rescheduled_shots);
    println!("  retries           : {}", stats.retries);
    println!(
        "  useful {:.0}s, wasted {:.0}s, backoff {:.1}s (overhead {:.1}%)",
        stats.useful_s,
        stats.wasted_s,
        stats.backoff_s,
        100.0 * stats.overhead_frac()
    );
    println!(
        "  image bitwise-identical to fault-free run: {}",
        image == reference
    );
}
